"""X3 -- ablations over the design choices DESIGN.md calls out.

Four knobs, each isolated:

1. NWRTM on/off (March CW-NW vs March CW): DRF coverage vs zero cost;
2. delay-based DRF testing vs NWRTM: same DRF coverage, 200 ms vs 0 pause;
3. reduced vs full CW extension backgrounds: the intra-word CFid polarity
   gap vs ~2x extension cost;
4. MSB- vs LSB-first delivery: heterogeneous correctness (see also F4).
"""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.core.timing import proposed_cycles
from repro.faults.coupling import IdempotentCouplingFault
from repro.faults.injector import FaultInjector
from repro.faults.retention_fault import DataRetentionFault
from repro.march.library import (
    march_cw,
    march_cw_full,
    march_cw_nw,
    march_with_retention_pauses,
)
from repro.march.simulator import MarchSimulator
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import format_table
from repro.util.units import format_duration_ns

from conftest import emit

GEOMETRY = MemoryGeometry(16, 4, "x3")


def _drf_ablation():
    """Rows for knobs 1 and 2: who sees a DRF, and at what pause cost."""
    rows = []
    for factory, label in (
        (march_cw, "March CW (no NWRTM)"),
        (march_cw_nw, "March CW-NW (NWRTM)"),
        (march_with_retention_pauses, "March C- + 2x100ms pauses"),
    ):
        memory = SRAM(GEOMETRY)
        DataRetentionFault(CellRef(5, 2), 1).attach(memory)
        result = MarchSimulator().run(memory, factory(GEOMETRY.bits))
        rows.append(
            {
                "algorithm": label,
                "DRF detected": not result.passed,
                "pause time": format_duration_ns(
                    factory(GEOMETRY.bits).total_pause_ns
                ),
                "ops/word": factory(GEOMETRY.bits).operations_per_word(),
            }
        )
    return rows


def _background_ablation():
    """Rows for knob 3: reduced vs full extension sets."""
    rows = []
    for factory, label in (
        (march_cw, "reduced extension (Eq. 2 budget)"),
        (march_cw_full, "full March C- per background"),
    ):
        memory = SRAM(GEOMETRY)
        # The escape parity: victim on an odd bit, aggressor even.
        IdempotentCouplingFault(
            CellRef(4, 2), CellRef(4, 3), trigger_rising=False, forced_value=0
        ).attach(memory)
        result = MarchSimulator().run(memory, factory(GEOMETRY.bits))
        rows.append(
            {
                "extension": label,
                "escape CFid caught": not result.passed,
                "cycles (512x100)": proposed_cycles(factory(100), 512, 100),
            }
        )
    return rows


@pytest.mark.benchmark(group="X3-ablations")
def test_x3_drf_ablation(benchmark):
    rows = benchmark(_drf_ablation)
    emit("X3a  NWRTM vs no-NWRTM vs delay testing", format_table(rows))
    by_label = {r["algorithm"]: r for r in rows}
    assert not by_label["March CW (no NWRTM)"]["DRF detected"]
    assert by_label["March CW-NW (NWRTM)"]["DRF detected"]
    assert by_label["March C- + 2x100ms pauses"]["DRF detected"]
    assert by_label["March CW-NW (NWRTM)"]["pause time"] == "0.000 ns"
    # NWRTM merge is free: same op count as plain March CW.
    assert (
        by_label["March CW-NW (NWRTM)"]["ops/word"]
        == by_label["March CW (no NWRTM)"]["ops/word"]
    )


@pytest.mark.benchmark(group="X3-ablations")
def test_x3_background_ablation(benchmark):
    rows = benchmark(_background_ablation)
    emit("X3b  Reduced vs full CW extension backgrounds", format_table(rows))
    reduced, full = rows
    assert not reduced["escape CFid caught"]
    assert full["escape CFid caught"]
    assert full["cycles (512x100)"] > reduced["cycles (512x100)"]


@pytest.mark.benchmark(group="X3-ablations")
def test_x3_delivery_ablation(benchmark):
    def run(msb_first):
        bank = MemoryBank(
            [SRAM(MemoryGeometry(16, 8, "wide")), SRAM(MemoryGeometry(8, 5, "narrow"))]
        )
        injector = FaultInjector()
        from repro.faults.stuck_at import StuckAtFault

        injector.inject(bank.by_name("narrow"), StuckAtFault(CellRef(3, 2), 1))
        report = FastDiagnosisScheme(bank, msb_first=msb_first).diagnose()
        true_hits = report.detected_cells("narrow") & {CellRef(3, 2)}
        false_cells = report.detected_cells("narrow") - {CellRef(3, 2)}
        return bool(true_hits), len(false_cells)

    results = benchmark(lambda: {m: run(m) for m in (True, False)})
    rows = [
        {
            "delivery": "MSB-first" if m else "LSB-first",
            "real fault localized": results[m][0],
            "false cells flagged": results[m][1],
        }
        for m in (True, False)
    ]
    emit("X3c  Delivery order with a real fault present", format_table(rows))
    assert results[True] == (True, 0)
    assert results[False][1] > 0  # LSB-first floods the narrow memory
