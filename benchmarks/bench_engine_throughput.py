"""Engine throughput: numpy backend speedup and fleet campaigns/sec.

Thin wrapper over :mod:`repro.analysis.bench` (the measurement library
behind ``repro bench``).  Emits one JSON document so future PRs can track
the performance trajectory::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--quick]

The headline measurements:

* **backend speedup** -- one full diagnosis campaign (inject -> diagnose ->
  repair -> verify, baseline included) on a 64-SRAM case-study SoC, run
  with the reference backend and with the numpy backend on identical
  seeds.  Results are asserted equal before the ratio is reported, so the
  speedup is for *bit-identical* work.
* **fleet throughput** -- campaigns/sec of the fleet scheduler with the
  numpy backend over the local worker pool (including the session
  plan-cache hit rate across campaigns).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.bench import engine_gate_failures, measure_engine_throughput


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs (8 SRAMs, 4 campaigns)",
    )
    parser.add_argument("--out", help="also write the JSON to this path")
    args = parser.parse_args(argv)

    if args.quick:
        results = measure_engine_throughput(memories=8, fleet_campaigns=4)
    else:
        results = measure_engine_throughput()
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")

    if not args.quick:
        failures = engine_gate_failures(results)
        for failure in failures:
            print(f"WARNING: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
