"""Engine throughput: numpy backend speedup and fleet campaigns/sec.

Emits one JSON document so future PRs can track the performance
trajectory::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--quick]

The headline measurements:

* **backend speedup** -- one full diagnosis campaign (inject -> diagnose ->
  repair -> verify, baseline included) on a 64-SRAM case-study SoC, run
  with the reference backend and with the numpy backend on identical
  seeds.  Results are asserted equal before the ratio is reported, so the
  speedup is for *bit-identical* work.
* **fleet throughput** -- campaigns/sec of the fleet scheduler with the
  numpy backend over the local worker pool.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.campaign import DiagnosisCampaign
from repro.engine.fleet import FleetSpec, run_fleet
from repro.soc.case_study import case_study_soc


def time_campaign(soc, defect_rate: float, seed: int, backend: str):
    """Run one campaign and return (elapsed_s, report)."""
    campaign = DiagnosisCampaign(
        soc, defect_rate=defect_rate, seed=seed, backend=backend
    )
    started = time.perf_counter()
    report = campaign.run(include_baseline=True, repair=True)
    return time.perf_counter() - started, report


def measure(memories: int, defect_rate: float, fleet_campaigns: int, workers: int):
    """Collect every metric of the benchmark."""
    soc = case_study_soc(memories=memories)
    seed = 2005

    reference_s, reference_report = time_campaign(soc, defect_rate, seed, "reference")
    numpy_s, numpy_report = time_campaign(soc, defect_rate, seed, "numpy")

    assert (
        reference_report.proposed.failures == numpy_report.proposed.failures
    ), "backends diverged: failure maps differ"
    assert reference_report.localization_rate == numpy_report.localization_rate
    assert reference_report.reduction_factor == numpy_report.reduction_factor

    spec = FleetSpec(
        soc="case-study",
        memories=memories,
        campaigns=fleet_campaigns,
        defect_rate=defect_rate,
        master_seed=seed,
        backend="numpy",
    )
    fleet_report = run_fleet(spec, workers=workers)

    return {
        "config": {
            "soc": "case-study",
            "memories": memories,
            "defect_rate": defect_rate,
            "seed": seed,
            "fleet_campaigns": fleet_campaigns,
            "fleet_workers": workers,
        },
        "single_campaign": {
            "reference_s": reference_s,
            "numpy_s": numpy_s,
            "speedup": reference_s / numpy_s,
            "bit_identical": True,
            "injected_faults": reference_report.injected_faults,
            "localization_rate": reference_report.localization_rate,
        },
        "fleet": {
            "backend": "numpy",
            "campaigns": fleet_report.campaigns,
            "elapsed_s": fleet_report.elapsed_s,
            "campaigns_per_sec": fleet_report.campaigns_per_sec,
            "mean_reduction_factor": fleet_report.reduction.mean,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs (8 SRAMs, 4 campaigns)",
    )
    parser.add_argument("--out", help="also write the JSON to this path")
    args = parser.parse_args(argv)

    if args.quick:
        memories, fleet_campaigns = 8, 4
    else:
        memories, fleet_campaigns = 64, 16
    workers = max(1, (os.cpu_count() or 2) - 1)

    results = measure(
        memories=memories,
        defect_rate=0.005,
        fleet_campaigns=fleet_campaigns,
        workers=workers,
    )
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")

    speedup = results["single_campaign"]["speedup"]
    if not args.quick and speedup < 5.0:
        print(f"WARNING: numpy backend speedup {speedup:.1f}x below 5x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
