"""F2 -- Fig. 2: serial fault masking, uni- vs bi-directional interfaces.

Quantifies, over random multi-fault words, how many cells receive clean
test data under each interface, and verifies the bidirectional
localization limit (at most the two extremal faults per element pair).
"""

import pytest

from repro.faults.stuck_at import StuckAtFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.serial.masking import (
    clean_write_cells_bidirectional,
    clean_write_cells_unidirectional,
    localizable_bits_bidirectional,
)
from repro.serial.unidirectional import UnidirectionalSerialInterface
from repro.util.bitops import mask
from repro.util.records import format_table
from repro.util.rng import make_rng

from conftest import emit

BITS = 32


def _masking_stats(fault_counts, trials=50):
    rng = make_rng(7)
    rows = []
    for count in fault_counts:
        uni_total = 0
        bi_total = 0
        localizable_total = 0
        for _ in range(trials):
            faulty = sorted(
                int(b) for b in rng.choice(BITS, size=count, replace=False)
            )
            uni_total += len(clean_write_cells_unidirectional(faulty, BITS))
            bi_total += len(clean_write_cells_bidirectional(faulty, BITS))
            localizable_total += len(localizable_bits_bidirectional(faulty, BITS))
        rows.append(
            {
                "faults/word": count,
                "clean cells (uni)": f"{uni_total / trials:.1f}",
                "clean cells (bi)": f"{bi_total / trials:.1f}",
                "localizable/element (bi)": f"{localizable_total / trials:.1f}",
            }
        )
    return rows


@pytest.mark.benchmark(group="F2-masking")
def test_f2_serial_masking(benchmark):
    rows = benchmark(_masking_stats, [1, 2, 4, 8])
    emit(
        f"F2  Serial fault masking over {BITS}-bit words "
        "(mean over 50 random fault sets)",
        format_table(rows),
    )

    # Bidirectional always reaches at least as many cells...
    for row in rows:
        assert float(row["clean cells (bi)"]) >= float(row["clean cells (uni)"])
    # ...but never localizes more than 2 faults per element pair.
    assert all(float(r["localizable/element (bi)"]) <= 2.0 for r in rows)

    # Bit-accurate spot check: a stuck cell starves everything behind it.
    memory = SRAM(MemoryGeometry(1, BITS, "f2"))
    StuckAtFault(CellRef(0, 10), 0).attach(memory)
    interface = UnidirectionalSerialInterface(memory)
    interface.fill_word(0, mask(BITS))
    word = memory.read(0)
    assert word & mask(10) == mask(10)  # below the fault
    assert word >> 10 == 0  # at and above the fault
