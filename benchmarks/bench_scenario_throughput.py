"""Scenario-engine throughput and backend-parity measurements.

Emits one JSON document so future PRs can track the trajectory::

    PYTHONPATH=src python benchmarks/bench_scenario_throughput.py [--quick]

The headline measurements:

* **flow parity speedup** -- one full clustered-defect production flow
  (test -> repair -> retest -> burn-in with intermittent faults) run on
  the reference and numpy backends with identical seeds; the reports are
  asserted equal (failures, stages, escape accounting) before the ratio
  is reported.
* **scenario fleet throughput** -- flow campaigns/sec through the fleet
  scheduler, plus the scenario aggregates of the run (escape rate,
  retest convergence, intermittent detection).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import time

from repro.scenarios import ScenarioSpec, run_scenario_campaign, run_scenario_fleet


def base_spec(quick: bool) -> ScenarioSpec:
    """The measured scenario configuration."""
    return ScenarioSpec(
        soc="buffer-cluster",
        campaigns=2 if quick else 16,
        base_defect_rate=0.003,
        cluster_count=2,
        cluster_radius=30.0,
        cluster_peak_rate=0.015,
        intermittent_rate=0.002,
        upset_probability=0.3,
        spares_per_memory=64,
        master_seed=2005,
    )


def measure_flow_parity(spec: ScenarioSpec):
    """Time one identical flow campaign on both backends, assert parity."""
    reference_spec = dataclasses.replace(spec, backend="reference")
    numpy_spec = dataclasses.replace(spec, backend="numpy")

    started = time.perf_counter()
    reference = run_scenario_campaign(reference_spec, 0)
    reference_s = time.perf_counter() - started

    started = time.perf_counter()
    fast = run_scenario_campaign(numpy_spec, 0)
    fast_s = time.perf_counter() - started

    assert reference.proposed.failures == fast.proposed.failures, (
        "scenario flows diverged: proposed failures"
    )
    assert reference.stages == fast.stages, "scenario flows diverged: stages"
    assert reference.escaped_faults == fast.escaped_faults, (
        "scenario flows diverged: escapes"
    )
    assert reference.intermittent_detected == fast.intermittent_detected, (
        "scenario flows diverged: intermittent detection"
    )
    return {
        "injected_faults": reference.injected_faults,
        "retest_rounds": reference.retest_rounds,
        "retest_converged": reference.retest_converged,
        "reference_s": reference_s,
        "numpy_s": fast_s,
        "speedup": reference_s / fast_s,
        "bit_identical": True,
    }


def measure_fleet_throughput(spec: ScenarioSpec, workers: int):
    """Flow campaigns/sec through the scenario fleet scheduler."""
    started = time.perf_counter()
    report = run_scenario_fleet(spec, workers=workers)
    elapsed = time.perf_counter() - started
    return {
        "campaigns": report.campaigns,
        "workers": workers,
        "elapsed_s": elapsed,
        "campaigns_per_sec": report.campaigns / elapsed if elapsed else 0.0,
        "mean_assigned_rate": (
            report.assigned_rate.mean if report.assigned_rate.count else None
        ),
        "mean_escape_rate": (
            report.escape_rate.mean if report.escape_rate.count else None
        ),
        "retest_convergence": report.retest_convergence,
        "intermittent_detection_rate": report.intermittent_detection_rate,
        "measured_r_mean": report.reduction.mean if report.reduction.count else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs",
    )
    parser.add_argument("--out", help="also write the JSON to this path")
    args = parser.parse_args(argv)

    spec = base_spec(args.quick)
    workers = max(1, (os.cpu_count() or 2) - 1)
    results = {
        "spec": spec.to_dict(),
        "flow_parity": measure_flow_parity(spec),
        "fleet_throughput": measure_fleet_throughput(spec, workers),
    }
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
