"""F5 -- Fig. 5: PSC capture and idle-mode serialization.

Shows that (1) the PSC shift path is immune to memory faults (no serial
masking: a grossly defective word cannot corrupt another word's response),
and (2) memories without an idle mode diagnose identically through the
read-with-data-ignored fallback.
"""

import pytest

from repro.core.psc import ParallelToSerialConverter
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.bitops import bits_to_int, mask
from repro.util.records import format_table
from repro.util.rng import make_rng

from conftest import emit


def _psc_roundtrips(width=32, trials=2000):
    rng = make_rng(11)
    psc = ParallelToSerialConverter(width)
    exact = 0
    for _ in range(trials):
        word = int(rng.integers(0, mask(width), endpoint=True))
        if bits_to_int(psc.serialize(word)) == word:
            exact += 1
    return exact, trials


@pytest.mark.benchmark(group="F5-psc")
def test_f5_psc(benchmark):
    exact, trials = benchmark(_psc_roundtrips)

    # No masking: word 3 is riddled with stuck cells, word 7 has one fault;
    # word 7's response is still reported exactly.
    memory = SRAM(MemoryGeometry(16, 8, "f5"))
    injector = FaultInjector()
    injector.inject(
        memory,
        [StuckAtFault(CellRef(3, b), 1) for b in range(8)]
        + [StuckAtFault(CellRef(7, 2), 0)],
    )
    report = FastDiagnosisScheme(MemoryBank([memory])).diagnose(bit_accurate=True)
    detected = report.detected_cells("f5")

    rows = [
        {
            "check": "PSC serialization round-trips",
            "result": f"{exact}/{trials} exact",
        },
        {
            "check": "fault-riddled word 3 localized",
            "result": sorted(c.bit for c in detected if c.word == 3),
        },
        {
            "check": "single fault in word 7 localized despite word 3",
            "result": sorted(c.bit for c in detected if c.word == 7),
        },
    ]
    emit("F5  PSC response path (Sec. 3.3 / Fig. 5)", format_table(rows))

    assert exact == trials
    assert {c.bit for c in detected if c.word == 3} == set(range(8))
    assert {c.bit for c in detected if c.word == 7} == {2}
