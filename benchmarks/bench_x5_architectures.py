"""X5 -- the four diagnosis architectures, head to head.

Executable versions of every architecture Sec. 1 discusses, run on the
same workload: per-memory BISD [5,6], same-size shared-parallel [4], the
bi-directional serial baseline [7,8], and the proposed SPC/PSC scheme.
The trade-off surface -- time vs replicated area vs wires vs deployability
vs DRF coverage -- is the paper's whole motivation in one table.
"""

import pytest

from repro.baseline.alternatives import (
    PerMemoryBisdScheme,
    SameSizeParallelScheme,
    per_memory_area_penalty,
)
from repro.baseline.scheme import HuangJoneScheme
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import format_table
from repro.util.units import format_duration_ns

from conftest import emit

SHAPE = MemoryGeometry(128, 32, "arch")
MEMORIES = 4
DEFECT_RATE = 0.01


def _fresh_bank():
    bank = MemoryBank(
        [SRAM(MemoryGeometry(SHAPE.words, SHAPE.bits, f"m{i}")) for i in range(MEMORIES)]
    )
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        population = sample_population(memory.geometry, DEFECT_RATE, rng=900 + index)
        injector.inject(memory, population.faults)
    return bank, injector


def _run_all():
    rows = []

    bank, injector = _fresh_bank()
    per_memory = PerMemoryBisdScheme(bank).diagnose()
    rows.append(
        {
            "architecture": per_memory.architecture,
            "time": format_duration_ns(per_memory.time_ns),
            "extra area": f"{per_memory_area_penalty(bank):.1%} (controllers)",
            "wires/mem": per_memory.wires_per_memory,
            "heterogeneous": "yes",
            "DRF coverage": "no",
        }
    )

    bank, injector = _fresh_bank()
    same_size = SameSizeParallelScheme(bank).diagnose()
    rows.append(
        {
            "architecture": same_size.architecture,
            "time": format_duration_ns(same_size.time_ns),
            "extra area": "~0%",
            "wires/mem": same_size.wires_per_memory,
            "heterogeneous": "NO (same-size only)",
            "DRF coverage": "no",
        }
    )

    bank, injector = _fresh_bank()
    baseline = HuangJoneScheme(bank).diagnose(injector)
    rows.append(
        {
            "architecture": "bi-dir serial [7,8]",
            "time": format_duration_ns(baseline.time_ns)
            + f" (k={baseline.iterations})",
            "extra area": "interface latches/muxes",
            "wires/mem": 7.0,
            "heterogeneous": "yes",
            "DRF coverage": "no",
        }
    )

    bank, injector = _fresh_bank()
    proposed = FastDiagnosisScheme(bank).diagnose()
    rows.append(
        {
            "architecture": "proposed (SPC/PSC+NWRTM)",
            "time": format_duration_ns(proposed.time_ns),
            "extra area": "+3 cells/bit vs [7,8]",
            "wires/mem": 9.0,
            "heterogeneous": "yes",
            "DRF coverage": "YES (zero pause)",
        }
    )
    return rows, baseline, proposed


@pytest.mark.benchmark(group="X5-architectures")
def test_x5_architecture_comparison(benchmark):
    rows, baseline, proposed = benchmark(_run_all)
    emit(
        f"X5  Four architectures, {MEMORIES} x {SHAPE.words}x{SHAPE.bits} "
        f"@ {DEFECT_RATE:.0%} defects",
        format_table(rows),
    )

    # The proposed scheme is the only one that is simultaneously
    # heterogeneous-capable, single-controller and DRF-covering...
    assert rows[-1]["DRF coverage"].startswith("YES")
    # ...and it beats the serial baseline on time by a wide margin even at
    # this small scale (k = 8; the margin grows linearly with defect count).
    assert proposed.time_ns < baseline.time_ns / 5
