"""E6 -- Sec. 4.1: diagnosis-coverage comparison across the fault taxonomy.

Both complete schemes run end to end against single-fault memories for
every class in the standard suite.  Expected shape: equal logical coverage;
DRFs and weak cells only on the proposed side.
"""

import pytest

from repro.analysis.coverage import compare_scheme_coverage
from repro.memory.geometry import MemoryGeometry
from repro.util.records import format_table

from conftest import emit


def _coverage():
    return compare_scheme_coverage(MemoryGeometry(8, 4, "e6"))


@pytest.mark.benchmark(group="E6-coverage")
def test_e6_scheme_coverage(benchmark):
    rows = benchmark(_coverage)
    emit(
        "E6  Coverage (Sec. 4.1): proposed vs baseline, end-to-end",
        format_table([row.as_percentages() for row in rows]),
    )

    by_label = {row.label: row for row in rows}
    # The proposed scheme detects every class, including DRFs + weak cells.
    for label, row in by_label.items():
        assert row.proposed_detected == row.instances, label
    # The baseline cannot see the time-dependent classes.
    assert by_label["DRF0 (cannot hold 0)"].baseline_detected == 0
    assert by_label["DRF1 (cannot hold 1)"].baseline_detected == 0
    assert by_label["Weak cell (reliability-only)"].baseline_detected == 0
    # Equal logical coverage on the bread-and-butter classes.
    for label in ("SAF0", "SAF1", "TF-up", "TF-down"):
        row = by_label[label]
        assert row.baseline_localized == row.instances, label
