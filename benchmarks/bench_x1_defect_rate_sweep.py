"""X1 -- extension: reduction factor vs defect rate.

The paper's qualitative claim ("the memory diagnosis capability is
dependent on the defect rate ... long diagnosis time even under a
reasonable defect rate") quantified: the baseline's k grows linearly with
the fault count while the proposed scheme's time is constant.
"""

import pytest

from repro.analysis.sweeps import sweep_defect_rate
from repro.util.records import format_table

from conftest import emit

RATES = [0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05]


@pytest.mark.benchmark(group="X1-defect-rate")
def test_x1_defect_rate_sweep(benchmark):
    rows = benchmark(sweep_defect_rate, RATES)
    emit("X1  R vs defect rate (512 x 100, t = 10 ns)", format_table(rows))

    reductions = [float(r["R"]) for r in rows]
    iterations = [r["k"] for r in rows]
    proposed_times = {r["T_proposed"] for r in rows}
    assert reductions == sorted(reductions)  # R grows with defect rate
    assert iterations == sorted(iterations)  # because k does
    assert len(proposed_times) == 1  # proposed time is rate-independent
    # The paper's case-study point sits on this curve.
    case_study = [r for r in rows if r["k"] == 96]
    assert case_study and float(case_study[0]["R"]) >= 84.0
