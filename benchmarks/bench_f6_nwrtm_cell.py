"""F6 -- Fig. 6: the switch-level NWRC experiment.

A column mixing good, open-pull-up (DRF) and resistive-pull-up (weak)
cells goes through a normal write, an NWRC, and a retention pause; the
outcome table is the paper's Sec. 3.4 argument, executed.
"""

import pytest

from repro.electrical.column import CellColumn
from repro.electrical.write_cycle import WriteKind
from repro.util.records import format_table

from conftest import emit

ROWS = 64
OPEN_ROW = 10
WEAK_ROW = 40


def _column_experiment():
    results = {}

    # Normal write followed by immediate read: everything looks good.
    column = CellColumn.build(
        ROWS, open_pullup_rows={OPEN_ROW: "a"}, resistive_pullup_rows={WEAK_ROW: "a"},
        retention_ns=1_000.0,
    )
    column.write_all(0)
    column.write_all(1)
    results["normal write, immediate read"] = column.rows_not_storing(1)

    # Normal write + 100 ms pause: only the open pull-up decays.
    column.elapse(100e6)
    results["normal write, 100 ms pause"] = column.rows_not_storing(1)

    # NWRC: both defect classes fail instantly, zero pause.
    column2 = CellColumn.build(
        ROWS, open_pullup_rows={OPEN_ROW: "a"}, resistive_pullup_rows={WEAK_ROW: "a"},
    )
    column2.write_all(0)
    column2.write_all(1, WriteKind.NWRC)
    results["NWRC, immediate read"] = column2.rows_not_storing(1)
    return results


@pytest.mark.benchmark(group="F6-nwrtm")
def test_f6_nwrtm_cell(benchmark):
    results = benchmark(_column_experiment)

    rows = [
        {
            "experiment": name,
            "failing rows": failing,
            "pause needed": "100 ms" if "pause" in name else "none",
        }
        for name, failing in results.items()
    ]
    emit(
        f"F6  NWRC at switch level (Fig. 6): open pull-up @ row {OPEN_ROW}, "
        f"resistive @ row {WEAK_ROW}",
        format_table(rows),
    )

    assert results["normal write, immediate read"] == []
    assert results["normal write, 100 ms pause"] == [OPEN_ROW]
    assert results["NWRC, immediate read"] == [OPEN_ROW, WEAK_ROW]
