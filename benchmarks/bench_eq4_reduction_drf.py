"""E4 -- Eq. (4): reduction factor with DRF diagnosis included.

Baseline: +8k serial sweeps +200 ms retention pauses.  Proposed: the NWRTM
increment (2n + 2c) t with zero pause.  Paper claims "at least 145" for the
case study; the literal equations give 143.4 and the read-cost rounding
variant 144.8 -- both reported.
"""

import pytest

from repro.analysis.timing_model import case_study_comparison, paper_read_cost_variant
from repro.util.records import format_table
from repro.util.units import format_duration_ns

from conftest import emit


def _compare():
    return case_study_comparison(), paper_read_cost_variant(512, 100, 10.0, 96)


@pytest.mark.benchmark(group="E4-eq4")
def test_eq4_reduction_with_drf(benchmark):
    literal, variant = benchmark(_compare)

    rows = [
        {
            "quantity": "T[7,8] + DRF",
            "paper": "(17k+9)nct + 8knct + 200 ms",
            "value": format_duration_ns(literal.baseline_drf_ns),
        },
        {
            "quantity": "T_proposed + NWRTM",
            "paper": "eq(2) + (2n+2c)t, zero pause",
            "value": format_duration_ns(literal.proposed_drf_ns),
        },
        {
            "quantity": "R with DRF (literal eqs)",
            "paper": ">= 145",
            "value": f"{literal.reduction_with_drf:.1f}",
        },
        {
            "quantity": "R with DRF (reads @ c cycles)",
            "paper": ">= 145",
            "value": f"{variant.reduction_with_drf:.1f}",
        },
    ]
    emit("E4  Eq. (4): reduction factor with DRF diagnosis", format_table(rows))

    assert literal.reduction_with_drf == pytest.approx(143.4, abs=0.1)
    assert variant.reduction_with_drf == pytest.approx(144.8, abs=0.1)
    # Within 1.2% of the paper's claim either way; and hugely above the
    # no-DRF factor, which is the paper's actual point.
    assert literal.reduction_with_drf > literal.reduction
