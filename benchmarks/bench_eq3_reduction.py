"""E3 -- Eq. (3): reduction factor R without DRF diagnosis.

R = T[7,8] / T_proposed.  The paper argues R always exceeds one in practice
because k >> 1; the case study gives "at least 84".  We sweep k to show the
linear growth and pin the case-study value.
"""

import pytest

from repro.analysis.sweeps import sweep_iterations
from repro.core.timing import reduction_factor
from repro.util.records import format_table

from conftest import emit


def _sweep():
    return sweep_iterations([1, 2, 4, 8, 16, 32, 64, 96, 128], 512, 100, 10.0)


@pytest.mark.benchmark(group="E3-eq3")
def test_eq3_reduction_sweep(benchmark):
    rows = benchmark(_sweep)
    emit("E3  Eq. (3): R = T[7,8] / T_proposed vs k (n=512, c=100, t=10ns)",
         format_table(rows))

    case_study = reduction_factor(512, 100, 10.0, 96)
    assert case_study >= 84.0  # the paper's "at least 84"
    assert case_study == pytest.approx(84.15, abs=0.01)
    # R grows monotonically with k and exceeds 1 for any k >= 1.
    reductions = [float(r["R"]) for r in rows]
    assert reductions == sorted(reductions)
    assert all(r > 1.0 for r in reductions)
