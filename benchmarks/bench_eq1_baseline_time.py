"""E1 -- Eq. (1): baseline diagnosis time T[7,8] = (17k + 9) n c t.

Checks that the *simulated* baseline session (iterate-repair loop over a
seeded fault population) lands on the closed form, and benchmarks the
effective-mode session.
"""

import pytest

from repro.baseline.scheme import HuangJoneScheme
from repro.baseline.timing import baseline_diagnosis_time_ns
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import format_table
from repro.util.units import format_duration_ns

from conftest import emit


def _run_baseline(words: int, bits: int, defect_rate: float, seed: int):
    geometry = MemoryGeometry(words, bits, "e1")
    memory = SRAM(geometry)
    injector = FaultInjector()
    injector.inject(memory, sample_population(geometry, defect_rate, rng=seed).faults)
    scheme = HuangJoneScheme(MemoryBank([memory]))
    return scheme.diagnose(injector)


@pytest.mark.benchmark(group="E1-eq1")
def test_eq1_baseline_time(benchmark):
    report = benchmark(_run_baseline, 512, 100, 0.01, 42)

    closed_form = baseline_diagnosis_time_ns(512, 100, 10.0, report.iterations)
    rows = [
        {
            "quantity": "k (iterations)",
            "paper": "96 (min, 75% x 256 / 2)",
            "measured": report.iterations,
        },
        {
            "quantity": "T[7,8] (no DRF)",
            "paper": format_duration_ns(baseline_diagnosis_time_ns(512, 100, 10.0, 96)),
            "measured": format_duration_ns(report.time_ns),
        },
    ]
    emit("E1  Eq. (1): T[7,8] = (17k + 9) n c t", format_table(rows))

    # The simulated session time IS the closed form at the emergent k.
    assert report.time_ns == closed_form
    # The emergent k tracks the paper's arithmetic (class mix is sampled).
    assert abs(report.iterations - 96) <= 5
