"""F4 -- Fig. 4: SPC pattern delivery, MSB-first vs the flawed LSB-first.

Two measurable consequences of Sec. 3.2's design choice:

1. pattern fidelity: over all widths, MSB-first delivers DP[c'-1:0] while
   LSB-first delivers DP[c-1:c-c'];
2. diagnosis fidelity: a fault-free heterogeneous bank produces *false
   failures* on the narrow memories under LSB-first delivery.
"""

import pytest

from repro.core.background_gen import DataBackgroundGenerator
from repro.core.scheme import FastDiagnosisScheme
from repro.core.spc import SerialToParallelConverter
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.bitops import mask
from repro.util.records import format_table
from repro.util.rng import make_rng

from conftest import emit

CONTROLLER_BITS = 24


def _delivery_fidelity(trials=200):
    rng = make_rng(3)
    correct = {True: 0, False: 0}
    for _ in range(trials):
        word = int(rng.integers(0, mask(CONTROLLER_BITS), endpoint=True))
        width = int(rng.integers(1, CONTROLLER_BITS, endpoint=True))
        for msb_first in (True, False):
            generator = DataBackgroundGenerator(CONTROLLER_BITS, msb_first)
            spc = SerialToParallelConverter(width, msb_first)
            spc.load_stream(generator.stream(word))
            if spc.parallel_out == word & mask(width):
                correct[msb_first] += 1
    return correct, trials


@pytest.mark.benchmark(group="F4-spc")
def test_f4_spc_delivery(benchmark):
    correct, trials = benchmark(_delivery_fidelity)

    bank = MemoryBank(
        [SRAM(MemoryGeometry(16, 8, "wide")), SRAM(MemoryGeometry(8, 5, "narrow"))]
    )
    msb_report = FastDiagnosisScheme(bank, msb_first=True).diagnose()
    bank2 = MemoryBank(
        [SRAM(MemoryGeometry(16, 8, "wide")), SRAM(MemoryGeometry(8, 5, "narrow"))]
    )
    lsb_report = FastDiagnosisScheme(bank2, msb_first=False).diagnose()

    rows = [
        {
            "delivery": "MSB-first (paper)",
            "correct patterns": f"{correct[True]}/{trials}",
            "false failures (fault-free bank)": msb_report.total_failures,
        },
        {
            "delivery": "LSB-first (flawed)",
            "correct patterns": f"{correct[False]}/{trials}",
            "false failures (fault-free bank)": lsb_report.total_failures,
        },
    ]
    emit("F4  SPC delivery order (Sec. 3.2 / Fig. 4)", format_table(rows))

    assert correct[True] == trials  # MSB-first is always right
    assert correct[False] < trials  # LSB-first mangles narrower widths
    assert msb_report.passed
    assert lsb_report.failures["narrow"] and not lsb_report.failures["wide"]
