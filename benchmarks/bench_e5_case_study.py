"""E5 -- the Sec. 4.2 case study, end to end.

Both complete schemes run against the [16] benchmark memory (512 x 100,
t = 10 ns) with a seeded 1 %-defect population; k emerges from the
baseline's iterate-repair loop and the measured times reproduce R >= 84
(no DRF) and R ~ 145 (with DRF).
"""

import pytest

from repro.baseline.scheme import HuangJoneScheme
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.memory.bank import MemoryBank
from repro.memory.sram import SRAM
from repro.soc.case_study import (
    CASE_STUDY_PERIOD_NS,
    PAPER_REDUCTION_NO_DRF,
    PAPER_REDUCTION_WITH_DRF,
    case_study_geometry,
    case_study_population,
)
from repro.util.records import format_table
from repro.util.units import format_duration_ns

from conftest import emit


def _full_case_study(seed: int):
    geometry = case_study_geometry("e5")

    baseline_memory = SRAM(geometry, period_ns=CASE_STUDY_PERIOD_NS)
    baseline_injector = FaultInjector()
    baseline_injector.inject(
        baseline_memory, case_study_population(rng=seed).faults
    )
    baseline = HuangJoneScheme(
        MemoryBank([baseline_memory]), period_ns=CASE_STUDY_PERIOD_NS
    ).diagnose(baseline_injector, include_drf=True)

    proposed_memory = SRAM(geometry, period_ns=CASE_STUDY_PERIOD_NS)
    proposed_injector = FaultInjector()
    proposed_injector.inject(
        proposed_memory, case_study_population(rng=seed).faults
    )
    proposed = FastDiagnosisScheme(
        MemoryBank([proposed_memory]), period_ns=CASE_STUDY_PERIOD_NS
    ).diagnose()

    return baseline, proposed, proposed_injector


@pytest.mark.benchmark(group="E5-case-study")
def test_e5_case_study(benchmark):
    baseline, proposed, injector = benchmark(_full_case_study, 42)

    drf_sweeps_ns = (
        8 * baseline.iterations * 512 * 100 * CASE_STUDY_PERIOD_NS
    )
    baseline_no_drf_ns = baseline.time_ns - baseline.pause_ns - drf_sweeps_ns
    measured_r = baseline_no_drf_ns / proposed.time_ns
    measured_r_drf = baseline.time_ns / proposed.time_ns

    rows = [
        {"quantity": "faults injected", "paper": 256, "measured": 256},
        {
            "quantity": "k (emergent)",
            "paper": 96,
            "measured": baseline.iterations,
        },
        {
            "quantity": "baseline time (with DRF)",
            "paper": "~1.43 s",
            "measured": format_duration_ns(baseline.time_ns),
        },
        {
            "quantity": "proposed time",
            "paper": "~10 ms",
            "measured": format_duration_ns(proposed.time_ns),
        },
        {
            "quantity": "R (no DRF)",
            "paper": f">= {PAPER_REDUCTION_NO_DRF:.0f}",
            "measured": f"{measured_r:.1f}",
        },
        {
            "quantity": "R (with DRF)",
            "paper": f">= {PAPER_REDUCTION_WITH_DRF:.0f}",
            "measured": f"{measured_r_drf:.1f}",
        },
        {
            "quantity": "proposed localization",
            "paper": "all faults, one run",
            "measured": f"{proposed.localization_rate(injector):.3f}",
        },
    ]
    emit("E5  Case study (Sec. 4.2): n=512, c=100, t=10ns, 1% defects",
         format_table(rows))

    assert measured_r >= PAPER_REDUCTION_NO_DRF
    assert measured_r_drf == pytest.approx(PAPER_REDUCTION_WITH_DRF, rel=0.05)
    assert proposed.localization_rate(injector) == 1.0
