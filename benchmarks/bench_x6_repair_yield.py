"""X6 -- repair yield: diagnosis coverage translated into money.

Monte-Carlo yield-after-repair with 2-D redundancy.  Both schemes see the
same defects; the baseline cannot localize DRFs, so memories it declares
"repaired" may ship with latent retention failures -- its shippable yield
trails the proposed scheme's at every spare budget.
"""

import pytest

from repro.analysis.yield_model import yield_after_repair
from repro.core.redundancy import RedundancyBudget
from repro.memory.geometry import MemoryGeometry
from repro.util.records import format_table

from conftest import emit

GEOMETRY = MemoryGeometry(64, 16, "x6")
SEEDS = range(40)
RATE = 0.01


def _yield_table():
    rows = []
    for spares in (1, 2, 3, 4):
        budget = RedundancyBudget(spares, spares)
        proposed = yield_after_repair(GEOMETRY, RATE, budget, SEEDS, "proposed")
        baseline = yield_after_repair(GEOMETRY, RATE, budget, SEEDS, "baseline")
        rows.append(
            {
                "spares (rows=cols)": spares,
                "repairable (proposed)": f"{proposed.repair_yield:.0%}",
                "shippable (proposed)": f"{proposed.shippable_yield:.0%}",
                "repairable (baseline view)": f"{baseline.repair_yield:.0%}",
                "shippable (baseline truth)": f"{baseline.shippable_yield:.0%}",
            }
        )
    return rows


@pytest.mark.benchmark(group="X6-yield")
def test_x6_repair_yield(benchmark):
    rows = benchmark(_yield_table)
    emit(
        f"X6  Yield after repair ({GEOMETRY.words}x{GEOMETRY.bits} @ "
        f"{RATE:.0%}, {len(list(SEEDS))} samples)",
        format_table(rows),
    )

    for row in rows:
        proposed = float(row["shippable (proposed)"].rstrip("%"))
        baseline = float(row["shippable (baseline truth)"].rstrip("%"))
        assert proposed >= baseline
    # With enough spares the proposed scheme ships everything...
    assert rows[-1]["shippable (proposed)"] == "100%"
    # ...while the baseline's latent DRFs keep costing yield.
    assert float(rows[-1]["shippable (baseline truth)"].rstrip("%")) < 100.0
