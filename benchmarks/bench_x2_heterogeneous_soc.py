"""X2 -- extension: heterogeneous SoC diagnosis with wrap-around.

The [4] scheme requires same-size memories; the proposed scheme handles a
heterogeneous bank in one session: the controller is sized by the largest
memory, smaller ones wrap, and the comparator's stored size information
suppresses false failures while real faults in every memory are localized.
"""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.soc.chip import SoCConfig
from repro.util.records import format_table

from conftest import emit


def _heterogeneous_session(seed: int):
    soc = SoCConfig.buffer_cluster()
    bank = soc.build_bank()
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        population = sample_population(memory.geometry, 0.005, rng=seed + index)
        injector.inject(memory, population.faults)
    scheme = FastDiagnosisScheme(bank)
    report = scheme.diagnose()
    return soc, injector, report


@pytest.mark.benchmark(group="X2-heterogeneous")
def test_x2_heterogeneous_soc(benchmark):
    soc, injector, report = benchmark(_heterogeneous_session, 77)

    rows = []
    for geometry in soc.geometries:
        injected = len(injector.faults_for(geometry.name))
        detected = len(report.detected_cells(geometry.name))
        rows.append(
            {
                "memory": f"{geometry.name} ({geometry.words}x{geometry.bits})",
                "wraps": geometry.words < soc.geometries[0].words
                or geometry.bits < soc.geometries[0].bits,
                "faults injected": injected,
                "cells localized": detected,
            }
        )
    rows.append(
        {
            "memory": "-- whole bank --",
            "wraps": "",
            "faults injected": injector.total,
            "cells localized": f"localization rate "
            f"{report.localization_rate(injector):.3f}",
        }
    )
    emit("X2  Heterogeneous SoC, single shared controller", format_table(rows))

    assert report.localization_rate(injector) == 1.0
    # One session serves all sizes: cycles are set by the largest memory.
    single = FastDiagnosisScheme(
        SoCConfig.buffer_cluster().build_bank()
    ).diagnose()
    assert report.cycles == single.cycles
