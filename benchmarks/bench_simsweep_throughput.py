"""Baseline-runner speedup and simulation-backed sweep throughput.

Emits one JSON document so future PRs can track the performance
trajectory::

    PYTHONPATH=src python benchmarks/bench_simsweep_throughput.py [--quick]

The headline measurements:

* **baseline runner speedup** -- one bit-accurate iterate-repair session
  (the iterative DIAG-RSMARCH flow) on a faulty bank, run through the
  pure-Python reference path and through the sparse serial-replay numpy
  path on identical seeds.  Reports are asserted equal before the ratio
  is reported, so the speedup is for *bit-identical* work.
* **simsweep throughput** -- campaigns/sec of the X1 defect-rate matrix
  through the fleet scheduler, plus the per-row measured-vs-analytic
  model gap (how closely simulation reproduces Eqs. (1)-(4)).
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.analysis.simsweep import defect_rate_matrix, run_sim_sweep
from repro.baseline.scheme import HuangJoneScheme
from repro.engine.baseline_session import run_baseline_session
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM


def build_bank(shapes, defect_rate: float, seed: int):
    """A seeded faulty bank plus its injector."""
    bank = MemoryBank(
        [SRAM(MemoryGeometry(w, b, f"m{i}")) for i, (w, b) in enumerate(shapes)]
    )
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        population = sample_population(memory.geometry, defect_rate, rng=seed + index)
        injector.inject(memory, population.faults)
    return bank, injector


def measure_baseline_runner(shapes, defect_rate: float, seed: int):
    """Time the bit-accurate baseline session on both backends."""
    reference_bank, reference_injector = build_bank(shapes, defect_rate, seed)
    fast_bank, fast_injector = build_bank(shapes, defect_rate, seed)

    started = time.perf_counter()
    reference = HuangJoneScheme(reference_bank).diagnose(
        reference_injector, bit_accurate=True
    )
    reference_s = time.perf_counter() - started

    started = time.perf_counter()
    fast = run_baseline_session(
        HuangJoneScheme(fast_bank), fast_injector, backend="numpy", bit_accurate=True
    )
    fast_s = time.perf_counter() - started

    assert reference.iterations == fast.iterations, "baseline runners diverged: k"
    assert reference.localized == fast.localized, "baseline runners diverged: records"
    for reference_memory, fast_memory in zip(reference_bank, fast_bank):
        assert reference_memory.dump() == fast_memory.dump(), (
            "baseline runners diverged: memory state"
        )

    return {
        "shapes": [list(shape) for shape in shapes],
        "defect_rate": defect_rate,
        "iterations": reference.iterations,
        "localized": len(reference.localized),
        "reference_s": reference_s,
        "numpy_s": fast_s,
        "speedup": reference_s / fast_s,
        "bit_identical": True,
    }


def measure_simsweep(rates, campaigns: int, memories: int, workers: int):
    """Time the X1 matrix through the fleet scheduler."""
    points = defect_rate_matrix(
        rates, campaigns=campaigns, memories=memories, master_seed=2005
    )
    started = time.perf_counter()
    rows = run_sim_sweep(points, workers=workers)
    elapsed = time.perf_counter() - started
    total_campaigns = sum(row.campaigns for row in rows)
    return {
        "rates": list(rates),
        "campaigns_per_point": campaigns,
        "memories": memories,
        "workers": workers,
        "elapsed_s": elapsed,
        "campaigns_per_sec": total_campaigns / elapsed if elapsed else 0.0,
        "rows": [
            {
                "point": row.label,
                "measured_r_mean": row.measured_r_mean,
                "analytic_r_drf": row.analytic_r_drf,
                "model_gap": row.model_gap,
            }
            for row in rows
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs",
    )
    parser.add_argument("--out", help="also write the JSON to this path")
    args = parser.parse_args(argv)

    if args.quick:
        shapes = [(24, 10), (16, 8)]
        rates, campaigns, memories = [0.005, 0.01], 2, 2
    else:
        shapes = [(48, 16), (32, 12), (24, 10)]
        rates, campaigns, memories = [0.001, 0.005, 0.01, 0.02, 0.05], 8, 4
    workers = max(1, (os.cpu_count() or 2) - 1)

    results = {
        "baseline_runner": measure_baseline_runner(shapes, 0.03, seed=2005),
        "simsweep_x1": measure_simsweep(rates, campaigns, memories, workers),
    }
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
