"""E2 -- Eq. (2): proposed diagnosis time.

The cycle-accurate session over the 512x100 case-study memory must equal
the closed form {(5n+5c+5n(c+1)) + (3n+3c+2n(c+1)) ceil(log2 c)} t exactly.
"""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.core.timing import proposed_diagnosis_time_ns, proposed_operation_cycles
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import format_table
from repro.util.units import format_duration_ns

from conftest import emit


def _run_proposed(words: int, bits: int):
    memory = SRAM(MemoryGeometry(words, bits, "e2"))
    return FastDiagnosisScheme(MemoryBank([memory])).diagnose()


@pytest.mark.benchmark(group="E2-eq2")
def test_eq2_proposed_time(benchmark):
    report = benchmark(_run_proposed, 512, 100)

    rows = [
        {
            "quantity": "operation cycles",
            "paper (eq 2)": proposed_operation_cycles(512, 100),
            "measured (session)": report.cycles,
        },
        {
            "quantity": "T_proposed",
            "paper (eq 2)": format_duration_ns(
                proposed_diagnosis_time_ns(512, 100, 10.0)
            ),
            "measured (session)": format_duration_ns(report.time_ns),
        },
        {
            "quantity": "retention pauses",
            "paper (eq 2)": "0 (NWRTM)",
            "measured (session)": format_duration_ns(report.pause_ns),
        },
    ]
    emit("E2  Eq. (2): T_proposed (March CW through SPC/PSC)", format_table(rows))

    assert report.cycles == proposed_operation_cycles(512, 100)
    assert report.time_ns == proposed_diagnosis_time_ns(512, 100, 10.0)
    assert report.pause_ns == 0.0
