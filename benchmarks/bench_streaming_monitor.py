"""Streaming monitor throughput: sustained windows/sec after warm-up.

Drives :class:`repro.streaming.StreamingMonitor` over one continuous
stream and reports the *sustained* rate -- warm-up windows (pool spin-up,
plan-cache population, importer costs) are consumed before the timer
starts, so the number tracks steady-state monitoring capacity, not
startup.  Emits one JSON document, and can append a trajectory record so
future PRs see the trend::

    PYTHONPATH=src python benchmarks/bench_streaming_monitor.py \
        [--quick] [--trajectory BENCH_trajectory.json]

The measured configuration is the default 8-memory case-study stream
(~3 events/window with occasional bursts) on the pre-planned backend.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.analysis.bench import append_trajectory, git_revision
from repro.streaming import StreamingMonitor, StreamingSpec


def measure_streaming(
    windows: int,
    warmup: int,
    workers: int | None,
    events_per_window: float,
) -> dict:
    """Run warm-up + measured windows on one uninterrupted stream."""
    spec = StreamingSpec(events_per_window=events_per_window, master_seed=7)
    monitor = StreamingMonitor(spec, windows=warmup + windows, workers=workers)
    stream = monitor.windows()
    for _ in range(warmup):
        next(stream)
    started = time.perf_counter()
    measured = 0
    for report in stream:
        measured += 1
    elapsed = time.perf_counter() - started
    aggregator = monitor.aggregator
    return {
        "spec": spec.to_dict(),
        "backend": monitor.spec.backend,
        "workers": workers,
        "warmup_windows": warmup,
        "measured_windows": measured,
        "elapsed_s": elapsed,
        "windows_per_sec": measured / elapsed if elapsed > 0 else 0.0,
        "events": aggregator.total_events,
        "mean_events_per_window": (
            aggregator.events_per_window.mean if aggregator.windows else None
        ),
        "detection_rate": aggregator.detection_rate,
        "bursts_injected": aggregator.bursts_injected,
        "bursts_detected": aggregator.bursts_detected,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI-smoke configuration (20 measured windows, inline)",
    )
    parser.add_argument("--windows", type=int, default=100)
    parser.add_argument("--warmup", type=int, default=10)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--events-per-window", type=float, default=3.0)
    parser.add_argument("--out", help="also write the JSON to this path")
    parser.add_argument(
        "--trajectory", metavar="FILE", default=None,
        help="append a record to this BENCH_trajectory.json",
    )
    parser.add_argument(
        "--timestamp", default=None,
        help="trajectory timestamp override (default: wall clock, UTC)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        results = measure_streaming(
            windows=20, warmup=5, workers=1,
            events_per_window=args.events_per_window,
        )
    else:
        results = measure_streaming(
            windows=args.windows, warmup=args.warmup, workers=args.workers,
            events_per_window=args.events_per_window,
        )
    results["quick"] = args.quick
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.trajectory:
        from datetime import datetime, timezone

        timestamp = args.timestamp or datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        append_trajectory(
            args.trajectory,
            {
                "timestamp": timestamp,
                "git_rev": git_revision(),
                "quick": args.quick,
                "streaming": {
                    "windows_per_sec": results["windows_per_sec"],
                    "measured_windows": results["measured_windows"],
                    "backend": results["backend"],
                    "workers": results["workers"],
                    "mean_events_per_window": results["mean_events_per_window"],
                    "detection_rate": results["detection_rate"],
                },
            },
        )
        print(f"trajectory entry appended to {args.trajectory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
