"""Fleet-batched tier throughput: stacked sweeps vs the per-memory numpy path.

Emits one JSON document (save it as ``BENCH_batched.json`` to track the
performance trajectory)::

    PYTHONPATH=src python benchmarks/bench_batched_fleet.py [--quick] [--out PATH]

The headline measurement times the proposed-scheme diagnosis session of a
**256-SRAM mixed-geometry campaign** (the case-study SoC scaled to fleet
size) with the per-memory numpy backend and with the batched backend on
identical seeds, asserting the reports bit-identical before reporting the
ratio.  Bank construction and fault injection are outside the timed
region (identical work for every backend); each configuration is run
``repeats`` times and the best time is kept.

Regimes
-------
The batched tier amortizes the per-memory Python cost of the vector path
(plan construction, per-block array dispatch) across every memory of a
geometry bucket; the behavioural replay of fault-hooked words is shared
by both backends.  Its advantage is therefore largest in the
**screening** regime -- a production fleet where most words are clean --
and decays toward 1x as the defect rate pushes the session into
replay-bound heavy diagnosis.  The gated headline is the screening
campaign (>= 3x target); the diagnostic regimes are reported alongside,
ungated, so the full curve stays visible in CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.campaign import DiagnosisCampaign
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.session import run_session
from repro.soc.case_study import case_study_soc

#: (label, defect rate, gated) -- the screening row carries the target.
REGIMES = (
    ("screening", 0.0002, True),
    ("diagnostic", 0.001, False),
    ("heavy-diagnostic", 0.005, False),
)
SPEEDUP_TARGET = 3.0


def timed_session(soc, defect_rate: float, seed: int, backend: str, repeats: int):
    """Best-of-``repeats`` session time (bank build untimed) plus the report."""
    best = float("inf")
    report = None
    for _ in range(repeats):
        campaign = DiagnosisCampaign(
            soc, defect_rate=defect_rate, seed=seed, backend=backend
        )
        bank, _ = campaign.faulty_bank()
        scheme = FastDiagnosisScheme(bank, period_ns=soc.period_ns)
        started = time.perf_counter()
        report = run_session(scheme, backend=backend)
        best = min(best, time.perf_counter() - started)
    return best, report


def measure(memories: int, repeats: int) -> dict:
    soc = case_study_soc(memories=memories)
    seed = 2026
    rows = []
    for label, defect_rate, gated in REGIMES:
        numpy_s, numpy_report = timed_session(soc, defect_rate, seed, "numpy", repeats)
        batched_s, batched_report = timed_session(
            soc, defect_rate, seed, "batched", repeats
        )
        assert (
            numpy_report.failures == batched_report.failures
        ), f"backends diverged in the {label} regime"
        assert numpy_report.cycles == batched_report.cycles
        rows.append(
            {
                "regime": label,
                "defect_rate": defect_rate,
                "gated": gated,
                "numpy_s": numpy_s,
                "batched_s": batched_s,
                "speedup": numpy_s / batched_s,
                "failing_reads": sum(
                    len(records) for records in numpy_report.failures.values()
                ),
                "bit_identical": True,
            }
        )
    return {
        "config": {
            "soc": "case-study",
            "memories": memories,
            "seed": seed,
            "repeats": repeats,
            "speedup_target": SPEEDUP_TARGET,
        },
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs (32 SRAMs, 1 repeat, "
        "parity asserted but the speedup target not enforced)",
    )
    parser.add_argument("--out", help="also write the JSON to this path")
    args = parser.parse_args(argv)

    memories, repeats = (32, 1) if args.quick else (256, 3)
    results = measure(memories=memories, repeats=repeats)
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")

    if not args.quick:
        for row in results["rows"]:
            if row["gated"] and row["speedup"] < SPEEDUP_TARGET:
                print(
                    f"WARNING: batched speedup {row['speedup']:.2f}x in the "
                    f"{row['regime']} regime is below the "
                    f"{SPEEDUP_TARGET:.0f}x target",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
