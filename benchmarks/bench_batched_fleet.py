"""Fleet-batched tier throughput: stacked sweeps vs the per-memory numpy path.

Thin wrapper over :mod:`repro.analysis.bench` (the measurement library
behind ``repro bench``).  Emits one JSON document (save it as
``BENCH_fault_tables.json`` to track the performance trajectory; the
pre-fault-table curve is frozen in ``BENCH_batched.json``)::

    PYTHONPATH=src python benchmarks/bench_batched_fleet.py [--quick] [--out PATH]

The headline measurement times the proposed-scheme diagnosis session of a
**256-SRAM mixed-geometry campaign** (the case-study SoC scaled to fleet
size) with the per-memory numpy backend and with the batched backend on
identical seeds, asserting the reports bit-identical before reporting the
ratio.  Repeats are interleaved between the backends so shared-machine
drift hits both sides alike; bank construction and fault injection are
outside the timed region.

Regimes
-------
The batched tier amortizes the per-memory Python cost of the vector path
across every memory of a geometry bucket *and* -- since the compiled
fault table (:mod:`repro.engine.fault_table`) -- evaluates deterministic
fault populations as masked vector ops instead of per-access behavioural
replay; the counter-based RNG and analytic retention-decay lanes extend
that to intermittent, soft-error, and data-retention populations.  All
three regimes are therefore gated: **screening** (mostly clean words;
>= 3x target, the amortization win), **diagnostic** (dense failing
populations; >= 2.5x target, the fault-table win), and
**heavy-diagnostic** (>= 3x target, the stateless-lane win: the
behavioural replay share of march time drops from ~41% to under 2%).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.bench import (
    batched_fleet_gate_failures,
    measure_batched_fleet,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs (32 SRAMs, 1 repeat, "
        "parity asserted but the speedup targets not enforced)",
    )
    parser.add_argument("--out", help="also write the JSON to this path")
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="also run one instrumented session per regime (outside the "
        "timed loop) and record per-lane time/word attribution",
    )
    args = parser.parse_args(argv)

    if args.quick:
        results = measure_batched_fleet(
            memories=32, repeats=1, warmup=False, telemetry=args.telemetry
        )
    else:
        results = measure_batched_fleet(telemetry=args.telemetry)
    payload = json.dumps(results, indent=2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")

    if not args.quick:
        failures = batched_fleet_gate_failures(results)
        for failure in failures:
            print(f"WARNING: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
