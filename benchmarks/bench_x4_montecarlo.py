"""X4 -- Monte-Carlo: how tightly the emergent k concentrates.

The paper's k = 96 comes from the *expected* defect-class mix.  Over many
sampled populations the emergent iterate-repair count distributes tightly
around faults x share / 2, so the headline R is robust to sampling noise.
"""

import pytest

from repro.analysis.montecarlo import emergent_k_distribution, reduction_distribution
from repro.memory.geometry import MemoryGeometry
from repro.util.records import format_table

from conftest import emit

GEOMETRY = MemoryGeometry(256, 64, "x4")  # 16,384 cells; fast per-seed runs
SEEDS = range(32)


def _distributions():
    k_dist = emergent_k_distribution(SEEDS, GEOMETRY, defect_rate=0.01)
    r_dist = reduction_distribution(SEEDS, GEOMETRY, defect_rate=0.01)
    return k_dist, r_dist


@pytest.mark.benchmark(group="X4-montecarlo")
def test_x4_montecarlo(benchmark):
    k_dist, r_dist = benchmark(_distributions)

    faults = round(GEOMETRY.cells * 0.01 / 2)
    expected_k = faults * 0.75 / 2
    rows = [
        {
            "quantity": "emergent k",
            "expected (paper arithmetic)": f"{expected_k:.1f}",
            "mean": f"{k_dist.mean:.1f}",
            "std": f"{k_dist.std:.2f}",
            "range": f"[{k_dist.minimum:.0f}, {k_dist.maximum:.0f}]",
        },
        {
            "quantity": "R (no DRF)",
            "expected (paper arithmetic)": "-",
            "mean": f"{r_dist.mean:.1f}",
            "std": f"{r_dist.std:.2f}",
            "range": f"[{r_dist.minimum:.1f}, {r_dist.maximum:.1f}]",
        },
    ]
    emit(
        f"X4  Monte-Carlo over {k_dist.samples} seeded populations "
        f"({GEOMETRY.words}x{GEOMETRY.bits} @ 1%)",
        format_table(rows),
    )

    assert k_dist.mean == pytest.approx(expected_k, rel=0.15)
    assert k_dist.std < expected_k * 0.25
    assert r_dist.minimum > 1.0
