"""PERF -- throughput of the reproduction's own substrate.

Not a paper experiment: documents the harness performance so users can
size their sweeps.  Measures March-operations-per-second of the fault
simulator on the case-study memory, with and without faults attached, and
the full proposed-scheme session rate.
"""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.march.complexity import operation_counts
from repro.march.library import march_cw_nw
from repro.march.simulator import MarchSimulator
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM

GEOMETRY = MemoryGeometry(512, 100, "perf")


@pytest.mark.benchmark(group="PERF-simulator")
def test_perf_march_simulator_clean(benchmark):
    algorithm = march_cw_nw(GEOMETRY.bits)
    operations = operation_counts(algorithm, GEOMETRY.words).operations

    def run():
        memory = SRAM(GEOMETRY)
        return MarchSimulator().run(memory, algorithm)

    result = benchmark(run)
    assert result.passed
    benchmark.extra_info["march_ops_per_round"] = operations


@pytest.mark.benchmark(group="PERF-simulator")
def test_perf_march_simulator_faulty(benchmark):
    algorithm = march_cw_nw(GEOMETRY.bits)

    def run():
        memory = SRAM(GEOMETRY)
        FaultInjector().inject(
            memory, sample_population(GEOMETRY, 0.01, rng=1).faults
        )
        return MarchSimulator().run(memory, algorithm)

    result = benchmark(run)
    assert not result.passed


@pytest.mark.benchmark(group="PERF-simulator")
def test_perf_full_proposed_session(benchmark):
    def run():
        memory = SRAM(GEOMETRY)
        return FastDiagnosisScheme(MemoryBank([memory])).diagnose()

    report = benchmark(run)
    assert report.cycles == 998_440
