"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one experiment from the paper's
evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
recorded results).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the paper-vs-measured tables each benchmark prints.
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print one experiment's table with a banner."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)


@pytest.fixture
def table_printer():
    """Fixture handing benches the banner printer."""
    return emit
