"""E7 -- Sec. 4.3: area overhead and global-wire accounting.

Paper claims: proposed - baseline = three 6T cells per interface bit;
~1.8 % total overhead for the benchmark e-SRAM; exactly +1 global wire
(the PSC scan_en).
"""

import pytest

from repro.analysis.area import AreaModel, TransistorBudget, wire_comparison
from repro.memory.geometry import MemoryGeometry
from repro.soc.case_study import PAPER_AREA_OVERHEAD
from repro.util.records import format_table

from conftest import emit


def _area_numbers():
    geometry = MemoryGeometry(512, 100)
    paper_model = AreaModel(TransistorBudget.paper())
    conservative = AreaModel(TransistorBudget.conservative())
    return {
        "extra_cells_per_bit": paper_model.extra_per_bit_cells(),
        "overhead_paper_budget": paper_model.overhead_fraction(geometry, "proposed"),
        "overhead_conservative": conservative.overhead_fraction(geometry, "proposed"),
        "overhead_baseline": paper_model.overhead_fraction(geometry, "baseline"),
        "wires": wire_comparison(),
    }


@pytest.mark.benchmark(group="E7-area")
def test_e7_area_overhead(benchmark):
    numbers = benchmark(_area_numbers)

    rows = [
        {
            "quantity": "extra cells / interface bit",
            "paper": "3",
            "measured": f"{numbers['extra_cells_per_bit']:.1f}",
        },
        {
            "quantity": "overhead, paper budget",
            "paper": "~1.8%",
            "measured": f"{numbers['overhead_paper_budget']:.2%}",
        },
        {
            "quantity": "overhead, std-cell budget",
            "paper": "~1.8%",
            "measured": f"{numbers['overhead_conservative']:.2%}",
        },
        {
            "quantity": "extra global wires",
            "paper": "+1 (scan_en)",
            "measured": f"+{numbers['wires']['extra_without_drf']} (scan_en)",
        },
        {
            "quantity": "NWRTM wire (DRF screening)",
            "paper": "1 routed signal",
            "measured": "+1 when enabled",
        },
    ]
    emit("E7  Area & wires (Sec. 4.3)", format_table(rows))

    assert numbers["extra_cells_per_bit"] == 3.0
    assert (
        numbers["overhead_paper_budget"]
        <= PAPER_AREA_OVERHEAD
        <= numbers["overhead_conservative"]
    )
    assert numbers["wires"]["extra_without_drf"] == 1
    assert numbers["wires"]["scan_en_is_the_plus_one"]
