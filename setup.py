"""Setup shim for environments without PEP 660 support (see pyproject.toml)."""
from setuptools import setup

setup()
