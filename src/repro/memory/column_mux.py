"""Column decoder / IO multiplexer with column-fault injection.

Column-decoder faults connect a logical IO bit to the wrong physical column,
to several columns, or to none.  They are logically invisible under solid
data backgrounds (every column holds the same value) which is why March CW
adds ``ceil(log2 c)`` extra backgrounds: the log2-c background set gives every
pair of columns at least one background on which they differ, exposing
shorted, open or mis-selected columns (Sec. 3.1 / Eq. (2) of the paper).

The write path (write-driver column selects) and the read path (sense-amp
column selects) are distinct circuits, so faults can be injected on either
path or both.  Note that a select *swap* applied consistently to both paths
is functionally transparent -- writing through the swap and reading back
through the same swap cancels out, exactly like address scrambling -- so the
detectable real-world defect is a swap on one path only (the default for
:class:`repro.faults.ColumnSwapFault`).
"""

from __future__ import annotations

from repro.util.validation import require

#: Which mux path a fault affects.
PATHS = ("write", "read", "both")


class ColumnMux:
    """Logical IO bit -> physical column mapping with fault mutators."""

    def __init__(self, bits: int, wired_or: bool = True) -> None:
        require(bits > 0, f"bits must be positive, got {bits}")
        self.bits = bits
        #: When several physical columns feed one IO bit (or several bits
        #: drive one column), values combine wired-OR (default) or wired-AND.
        self.wired_or = wired_or
        self._write_map: dict[int, tuple[int, ...]] = {}
        self._read_map: dict[int, tuple[int, ...]] = {}

    @property
    def is_faulty(self) -> bool:
        """True once any fault mutator has been applied."""
        return bool(self._write_map) or bool(self._read_map)

    def _maps_for(self, path: str) -> list[dict[int, tuple[int, ...]]]:
        require(path in PATHS, f"path must be one of {PATHS}, got {path!r}")
        if path == "write":
            return [self._write_map]
        if path == "read":
            return [self._read_map]
        return [self._write_map, self._read_map]

    def write_targets(self, bit: int) -> tuple[int, ...]:
        """Physical columns driven by logical IO ``bit`` on writes."""
        require(0 <= bit < self.bits, f"bit {bit} out of range")
        return self._write_map.get(bit, (bit,))

    def read_targets(self, bit: int) -> tuple[int, ...]:
        """Physical columns observed by logical IO ``bit`` on reads."""
        require(0 <= bit < self.bits, f"bit {bit} out of range")
        return self._read_map.get(bit, (bit,))

    # ------------------------------------------------------------------ #
    # Fault mutators                                                     #
    # ------------------------------------------------------------------ #
    def break_bit(self, bit: int, path: str = "both") -> None:
        """Logical bit connects to no column (reads float to 0, writes lost)."""
        require(0 <= bit < self.bits, f"bit {bit} out of range")
        for mapping in self._maps_for(path):
            mapping[bit] = ()

    def remap_bit(self, bit: int, column: int, path: str = "both") -> None:
        """Logical bit connects to the wrong physical ``column``."""
        require(0 <= bit < self.bits, f"bit {bit} out of range")
        require(0 <= column < self.bits, f"column {column} out of range")
        for mapping in self._maps_for(path):
            mapping[bit] = (column,)

    def swap_bits(self, first: int, second: int, path: str = "write") -> None:
        """Two logical bits exchange physical columns on ``path``.

        A both-path swap is functionally transparent (see module docstring);
        the default models a write-driver select swap, which stripe
        backgrounds expose.
        """
        require(first != second, "swapped bits must differ")
        self.remap_bit(first, second, path)
        self.remap_bit(second, first, path)

    def add_extra_column(self, bit: int, extra: int, path: str = "both") -> None:
        """Logical bit drives/observes its own column *and* ``extra``."""
        require(0 <= bit < self.bits, f"bit {bit} out of range")
        require(0 <= extra < self.bits, f"extra column {extra} out of range")
        require(extra != bit, "extra column must differ from the bit")
        for mapping in self._maps_for(path):
            current = mapping.get(bit, (bit,))
            if extra not in current:
                mapping[bit] = current + (extra,)

    # ------------------------------------------------------------------ #
    # Datapath                                                           #
    # ------------------------------------------------------------------ #
    def write_columns(self, old_physical: int, logical_value: int) -> int:
        """Physical word stored when ``logical_value`` is written.

        Columns driven by no logical bit keep their old contents; columns
        driven by several logical bits resolve by the wired-OR/AND policy.
        """
        if not self._write_map:
            return logical_value
        drivers: dict[int, list[int]] = {}
        for bit in range(self.bits):
            value = (logical_value >> bit) & 1
            for column in self.write_targets(bit):
                drivers.setdefault(column, []).append(value)
        physical = old_physical
        for column, values in drivers.items():
            resolved = max(values) if self.wired_or else min(values)
            if resolved:
                physical |= 1 << column
            else:
                physical &= ~(1 << column)
        return physical

    def read_columns(self, physical: int) -> int:
        """Logical word observed when ``physical`` is stored."""
        if not self._read_map:
            return physical
        logical = 0
        for bit in range(self.bits):
            columns = self.read_targets(bit)
            if not columns:
                continue  # floating IO line reads as 0
            values = [(physical >> column) & 1 for column in columns]
            resolved = max(values) if self.wired_or else min(values)
            logical |= resolved << bit
        return logical

    def reset(self) -> None:
        """Remove all injected faults."""
        self._write_map.clear()
        self._read_map.clear()

    def __repr__(self) -> str:
        return f"ColumnMux(bits={self.bits}, faulty={self.is_faulty})"
