"""Row address decoder with address-fault (AF) injection.

A fault-free decoder maps logical address ``a`` to exactly physical word
``a``.  The four classical address-decoder fault types are modelled as
mutations of that map:

* **Type A** -- an address accesses *no* word: reads return the (constant)
  floating-bus value and writes are dropped.
* **Type B** -- a word is *never* accessed: its address is remapped to some
  other word.
* **Type C** -- an address accesses *multiple* words.
* **Type D** -- a word is accessed by *multiple* addresses.

Types B/D arise as the dual side effects of remapping/aliasing, exactly as in
the classical taxonomy (types never occur alone).
"""

from __future__ import annotations

from repro.util.validation import require


class AddressDecoder:
    """Logical-address -> physical-word mapping with fault mutators."""

    #: Value returned bit-wise when a read accesses no word (floating bus).
    FLOATING_BUS_VALUE = 0

    def __init__(self, words: int) -> None:
        require(words > 0, f"words must be positive, got {words}")
        self.words = words
        self._map: dict[int, tuple[int, ...]] = {}

    @property
    def is_faulty(self) -> bool:
        """True once any fault mutator has been applied."""
        return bool(self._map)

    def targets(self, address: int) -> tuple[int, ...]:
        """Physical word indices accessed by ``address`` (may be empty)."""
        require(0 <= address < self.words, f"address {address} out of range")
        return self._map.get(address, (address,))

    def break_address(self, address: int) -> None:
        """Type A: ``address`` no longer accesses any word."""
        require(0 <= address < self.words, f"address {address} out of range")
        self._map[address] = ()

    def remap_address(self, address: int, target: int) -> None:
        """Type B/D pair: ``address`` accesses ``target`` instead of itself."""
        require(0 <= address < self.words, f"address {address} out of range")
        require(0 <= target < self.words, f"target {target} out of range")
        require(target != address, "remapping an address to itself is not a fault")
        self._map[address] = (target,)

    def add_extra_target(self, address: int, extra: int) -> None:
        """Type C/D pair: ``address`` accesses its own word *and* ``extra``."""
        require(0 <= address < self.words, f"address {address} out of range")
        require(0 <= extra < self.words, f"extra target {extra} out of range")
        require(extra != address, "extra target must differ from the address")
        current = self._map.get(address, (address,))
        if extra not in current:
            self._map[address] = current + (extra,)

    def unreachable_words(self) -> set[int]:
        """Physical words that no address can reach (type B victims)."""
        reached: set[int] = set()
        for address in range(self.words):
            reached.update(self.targets(address))
        return set(range(self.words)) - reached

    def reset(self) -> None:
        """Remove all injected faults."""
        self._map.clear()

    def __repr__(self) -> str:
        return f"AddressDecoder(words={self.words}, faulty={self.is_faulty})"
