"""Memory geometry: word/bit organization and cell addressing.

The paper's benchmark e-SRAM (case study from [16]) has ``n = 512`` words and
``c = 100`` IO bits.  Geometry objects carry that shape plus derived
quantities (cell count, address width) and the physical-adjacency relation
used when sampling coupling faults between neighbouring cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.records import Record
from repro.util.validation import require, require_positive


@dataclass(frozen=True, order=True)
class CellRef:
    """A single SRAM cell, identified by word (row) and bit (column)."""

    word: int
    bit: int

    def __post_init__(self) -> None:
        require(self.word >= 0, f"word must be non-negative, got {self.word}")
        require(self.bit >= 0, f"bit must be non-negative, got {self.bit}")

    def __str__(self) -> str:
        return f"[w{self.word}.b{self.bit}]"


@dataclass(frozen=True)
class MemoryGeometry(Record):
    """Logical organization of one embedded SRAM.

    Parameters
    ----------
    words:
        Number of addressable words (``n`` in the paper).
    bits:
        Word width / number of IO pins (``c`` in the paper).
    name:
        Optional instance name used in reports.
    """

    words: int
    bits: int
    name: str = "esram"

    def __post_init__(self) -> None:
        require_positive(self.words, "words")
        require_positive(self.bits, "bits")

    @property
    def cells(self) -> int:
        """Total number of storage cells (n * c)."""
        return self.words * self.bits

    @property
    def address_bits(self) -> int:
        """Width of the address bus (1 for a single-word memory)."""
        return max(1, math.ceil(math.log2(self.words)))

    def cell_index(self, cell: CellRef) -> int:
        """Linear index of ``cell`` in word-major order."""
        self.check_cell(cell)
        return cell.word * self.bits + cell.bit

    def cell_at(self, index: int) -> CellRef:
        """Inverse of :meth:`cell_index`."""
        require(0 <= index < self.cells, f"cell index {index} out of range")
        return CellRef(index // self.bits, index % self.bits)

    def check_address(self, address: int) -> None:
        """Raise if ``address`` is outside this memory."""
        require(
            0 <= address < self.words,
            f"{self.name}: address {address} out of range [0, {self.words})",
        )

    def check_cell(self, cell: CellRef) -> None:
        """Raise if ``cell`` is outside this memory."""
        require(
            cell.word < self.words and cell.bit < self.bits,
            f"{self.name}: cell {cell} outside {self.words}x{self.bits}",
        )

    def all_cells(self):
        """Iterate every cell in word-major order."""
        for word in range(self.words):
            for bit in range(self.bits):
                yield CellRef(word, bit)

    def neighbors(self, cell: CellRef) -> list[CellRef]:
        """Physically adjacent cells (same column +/-1 word, same word +/-1 bit).

        Coupling-fault populations sample aggressor/victim pairs from this
        relation because real bridging defects join neighbouring cells.
        """
        self.check_cell(cell)
        candidates = [
            CellRef(cell.word - 1, cell.bit) if cell.word > 0 else None,
            CellRef(cell.word + 1, cell.bit) if cell.word + 1 < self.words else None,
            CellRef(cell.word, cell.bit - 1) if cell.bit > 0 else None,
            CellRef(cell.word, cell.bit + 1) if cell.bit + 1 < self.bits else None,
        ]
        return [c for c in candidates if c is not None]
