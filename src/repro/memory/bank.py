"""A bank of distributed e-SRAMs diagnosed by one shared controller.

The paper's architecture shares a single BISD controller across many small
memories of *heterogeneous* sizes; the controller is dimensioned by the
largest (capacity) and widest (IO count) memory (Sec. 3.1).  ``MemoryBank``
holds the instances and answers those sizing queries.
"""

from __future__ import annotations

from typing import Iterator

from repro.memory.sram import SRAM
from repro.util.validation import require


class MemoryBank:
    """Ordered collection of the SRAM instances under shared diagnosis."""

    def __init__(self, memories: list[SRAM]) -> None:
        require(len(memories) > 0, "a memory bank needs at least one memory")
        names = [m.name for m in memories]
        require(
            len(set(names)) == len(names),
            f"memory names must be unique, got {names}",
        )
        self.memories = list(memories)

    def __iter__(self) -> Iterator[SRAM]:
        return iter(self.memories)

    def __len__(self) -> int:
        return len(self.memories)

    def __getitem__(self, index: int) -> SRAM:
        return self.memories[index]

    def by_name(self, name: str) -> SRAM:
        """Look up a memory by instance name."""
        for memory in self.memories:
            if memory.name == name:
                return memory
        raise KeyError(f"no memory named {name!r}")

    @property
    def max_words(self) -> int:
        """Capacity of the largest memory (sizes the address generator)."""
        return max(m.words for m in self.memories)

    @property
    def max_bits(self) -> int:
        """Width of the widest memory (sizes the background generator)."""
        return max(m.bits for m in self.memories)

    @property
    def total_cells(self) -> int:
        """Total number of cells across the bank."""
        return sum(m.geometry.cells for m in self.memories)

    def is_homogeneous(self) -> bool:
        """Whether all memories share one geometry (the [4] restriction)."""
        shapes = {(m.words, m.bits) for m in self.memories}
        return len(shapes) == 1

    def clear_faults(self) -> None:
        """Detach faults from every memory."""
        for memory in self.memories:
            memory.clear_faults()

    def __repr__(self) -> str:
        shapes = ", ".join(f"{m.name}:{m.words}x{m.bits}" for m in self.memories)
        return f"MemoryBank([{shapes}])"
