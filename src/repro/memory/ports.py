"""Access kinds and trace records for memory operations."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.records import Record


class AccessKind(enum.Enum):
    """Kinds of cycles a memory can execute.

    ``NWRC_WRITE`` is the No-Write-Recovery write cycle of the NWRTM DFT
    (Sec. 3.4 of the paper).  ``NOOP_READ`` is a read whose data is ignored,
    used in place of ``IDLE`` while the PSC shifts when a memory has no idle
    mode (Sec. 3.3).
    """

    READ = "read"
    WRITE = "write"
    NWRC_WRITE = "nwrc_write"
    IDLE = "idle"
    NOOP_READ = "noop_read"


@dataclass(frozen=True)
class AccessRecord(Record):
    """One traced memory access (used by tests and the masking analysis)."""

    kind: AccessKind
    address: int
    data: int | None
    at_ns: float
