"""Behavioural model of small embedded SRAMs (the devices under diagnosis).

The model is *functional*: a memory is an array of ``words`` integers of
``bits`` bits each, with hook points where fault models (``repro.faults``)
intercept reads, writes, NWRC writes and address decoding.  The fast path
(no fault on the accessed word) is a plain list access, which keeps full
March simulations of the paper's 512x100 case-study memory cheap.
"""

from repro.memory.bank import MemoryBank
from repro.memory.column_mux import ColumnMux
from repro.memory.decoder import AddressDecoder
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.ports import AccessKind, AccessRecord
from repro.memory.spare import SpareBank
from repro.memory.sram import SRAM
from repro.memory.timebase import TimeBase

__all__ = [
    "AddressDecoder",
    "AccessKind",
    "AccessRecord",
    "CellRef",
    "ColumnMux",
    "MemoryBank",
    "MemoryGeometry",
    "SRAM",
    "SpareBank",
    "TimeBase",
]
