"""Physical array topology: column multiplexing and cell adjacency.

A real SRAM macro folds its address space: with a column-mux factor ``m``,
each physical row holds ``m`` consecutive words bit-interleaved across the
columns -- logical bit ``b`` of word ``a`` sits at physical column
``b * m + (a % m)``, row ``a // m``.

Two consequences matter for fault modelling (and are asserted in tests):

* logically adjacent bits of the *same word* are ``m`` physical columns
  apart -- bridges between them are rare, which is why random bridge
  populations couple inter-word neighbours instead
  (:mod:`repro.faults.defects`);
* horizontally adjacent *cells* belong to consecutive words (same bit), so
  the inter-word aggressor choice matches the physical bridge geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.geometry import CellRef, MemoryGeometry
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class PhysicalLocation:
    """A cell's position in the physical array."""

    row: int
    col: int


class ArrayTopology:
    """Maps logical (word, bit) coordinates to the physical array."""

    def __init__(self, geometry: MemoryGeometry, mux_factor: int = 4) -> None:
        require_positive(mux_factor, "mux_factor")
        require(
            geometry.words % mux_factor == 0,
            f"words ({geometry.words}) must be a multiple of the mux factor "
            f"({mux_factor})",
        )
        self.geometry = geometry
        self.mux_factor = mux_factor

    @property
    def rows(self) -> int:
        """Physical word-line count."""
        return self.geometry.words // self.mux_factor

    @property
    def cols(self) -> int:
        """Physical bit-line-pair count."""
        return self.geometry.bits * self.mux_factor

    def location(self, cell: CellRef) -> PhysicalLocation:
        """Physical (row, col) of a logical cell."""
        self.geometry.check_cell(cell)
        select = cell.word % self.mux_factor
        return PhysicalLocation(
            row=cell.word // self.mux_factor,
            col=cell.bit * self.mux_factor + select,
        )

    def cell_at(self, location: PhysicalLocation) -> CellRef:
        """Logical cell at a physical location (inverse of :meth:`location`)."""
        require(0 <= location.row < self.rows, f"row {location.row} out of range")
        require(0 <= location.col < self.cols, f"col {location.col} out of range")
        bit = location.col // self.mux_factor
        select = location.col % self.mux_factor
        return CellRef(location.row * self.mux_factor + select, bit)

    def physical_neighbors(self, cell: CellRef) -> list[CellRef]:
        """Cells physically adjacent to ``cell`` (row +/-1, col +/-1)."""
        home = self.location(cell)
        neighbors = []
        for row, col in (
            (home.row - 1, home.col),
            (home.row + 1, home.col),
            (home.row, home.col - 1),
            (home.row, home.col + 1),
        ):
            if 0 <= row < self.rows and 0 <= col < self.cols:
                neighbors.append(self.cell_at(PhysicalLocation(row, col)))
        return neighbors

    def logical_bit_distance(self, first: CellRef, second: CellRef) -> int:
        """Physical column distance between two cells (bridge likelihood proxy)."""
        return abs(self.location(first).col - self.location(second).col)

    def bridge_pairs(self):
        """All horizontally adjacent cell pairs (candidate bridge defects)."""
        for row in range(self.rows):
            for col in range(self.cols - 1):
                yield (
                    self.cell_at(PhysicalLocation(row, col)),
                    self.cell_at(PhysicalLocation(row, col + 1)),
                )
