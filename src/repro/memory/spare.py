"""Backup (spare) memory used for repair after diagnosis.

Figure 1 of the paper attaches a small backup memory to every e-SRAM: once
the diagnosis identifies a defective cell, it "can be replaced with a spare
cell if it is available".  We model word-granularity spares: a faulty word is
remapped to a spare word, after which accesses to that address bypass the
defective row entirely.
"""

from __future__ import annotations

from bisect import insort

from repro.util.validation import require, require_positive


class SpareBank:
    """A pool of spare words with an address-remap table."""

    def __init__(self, spare_words: int, bits: int) -> None:
        require(spare_words >= 0, f"spare_words must be >= 0, got {spare_words}")
        require_positive(bits, "bits")
        self.spare_words = spare_words
        self.bits = bits
        self._storage: list[int] = [0] * spare_words
        self._remap: dict[int, int] = {}
        # Explicit free-list (kept sorted, lowest slot first): allocating
        # from ``self.used`` would hand out a colliding slot index as soon
        # as any earlier allocation had been released.
        self._free: list[int] = list(range(spare_words))

    @property
    def used(self) -> int:
        """Number of spares already allocated."""
        return len(self._remap)

    @property
    def available(self) -> int:
        """Number of spares still free."""
        return len(self._free)

    def is_remapped(self, address: int) -> bool:
        """Whether ``address`` has been repaired onto a spare."""
        return address in self._remap

    def allocate(self, address: int) -> bool:
        """Repair ``address`` onto a fresh spare word.

        Returns ``True`` on success, ``False`` when the pool is exhausted.
        Allocating an already-repaired address is a no-op success.
        """
        if address in self._remap:
            return True
        if not self._free:
            return False
        self._remap[address] = self._free.pop(0)
        return True

    def release(self, address: int) -> bool:
        """Undo the repair of ``address``, returning its slot to the pool.

        Returns ``False`` when the address was not remapped.  The slot's
        storage is cleared before reuse.
        """
        slot = self._remap.pop(address, None)
        if slot is None:
            return False
        self._storage[slot] = 0
        insort(self._free, slot)
        return True

    def read(self, address: int) -> int:
        """Read the spare word backing ``address``."""
        require(address in self._remap, f"address {address} is not remapped")
        return self._storage[self._remap[address]]

    def write(self, address: int, value: int) -> None:
        """Write the spare word backing ``address``."""
        require(address in self._remap, f"address {address} is not remapped")
        require(0 <= value < (1 << self.bits), f"value {value:#x} too wide")
        self._storage[self._remap[address]] = value

    def remapped_addresses(self) -> set[int]:
        """Addresses currently served by spares."""
        return set(self._remap)

    def reset(self) -> None:
        """Release all spares."""
        self._storage = [0] * self.spare_words
        self._remap.clear()
        self._free = list(range(self.spare_words))

    def __repr__(self) -> str:
        return f"SpareBank(spares={self.spare_words}, used={self.used})"
