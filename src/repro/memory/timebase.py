"""Simulation time base shared by a memory and its diagnosis controller.

Data-retention faults are *time* faults: a defective cell holds a value for
less than the specified retention time.  Every memory therefore carries a
``TimeBase`` that the March simulator advances by one clock period per
operation and by the full pause duration during retention pauses.
"""

from __future__ import annotations

from repro.util.validation import require, require_positive


class TimeBase:
    """Monotonic simulated clock measured in nanoseconds."""

    def __init__(self, period_ns: float = 10.0) -> None:
        require_positive(period_ns, "period_ns")
        self.period_ns = float(period_ns)
        self._now_ns = 0.0
        self._cycles = 0

    @property
    def now_ns(self) -> float:
        """Current simulated time."""
        return self._now_ns

    @property
    def cycles(self) -> int:
        """Number of clock cycles consumed so far (pauses excluded)."""
        return self._cycles

    def tick(self, cycles: int = 1) -> None:
        """Advance by ``cycles`` clock periods."""
        require(cycles >= 0, f"cycles must be non-negative, got {cycles}")
        self._cycles += cycles
        self._now_ns += cycles * self.period_ns

    def tick_one(self) -> None:
        """:meth:`tick` by exactly one period, without the argument guard.

        The behavioural replay lane advances the clock once per access;
        skipping the guard measurably shortens dense-defect replays.
        """
        self._cycles += 1
        self._now_ns += self.period_ns

    def seek_cycles(self, cycles: int) -> None:
        """Fast-forward to an absolute cycle count (never backwards).

        Replay fast-forward between dirty sweep positions; equivalent to
        ``tick(cycles - self.cycles)`` without the per-call guard.
        Callers guarantee monotonicity.
        """
        delta = cycles - self._cycles
        if delta:
            self._cycles = cycles
            self._now_ns += delta * self.period_ns

    def pause(self, duration_ns: float) -> None:
        """Advance wall-clock time without consuming clock cycles.

        Models the retention pauses (e.g. 100 ms) used by delay-based DRF
        testing; the memory sits unclocked while stored charge leaks away.
        """
        require(duration_ns >= 0, f"duration_ns must be non-negative, got {duration_ns}")
        self._now_ns += duration_ns

    def reset(self) -> None:
        """Return to time zero (used between diagnosis sessions)."""
        self._now_ns = 0.0
        self._cycles = 0

    def __repr__(self) -> str:
        return f"TimeBase(now={self._now_ns:.1f} ns, cycles={self._cycles})"
