"""Behavioural SRAM with fault hooks.

The memory stores each word as a Python integer, so the fault-free access
path is a single list operation regardless of word width.  Faults attach
sparsely: only accesses that touch a word containing a faulty cell (or a
coupling aggressor) take the per-bit slow path.

Fault objects are duck-typed (see :class:`repro.faults.base.CellFault`); the
memory calls, when present:

* ``on_write(memory, word, bit, old_bit, new_bit) -> int`` -- effective bit
  stored by a normal write,
* ``on_nwrc_write(memory, word, bit, old_bit, new_bit) -> int`` -- effective
  bit stored by a No-Write-Recovery cycle (NWRTM, Sec. 3.4),
* ``on_read(memory, word, bit, stored_bit) -> int`` -- value observed by a
  read,
* ``on_aggressor_transition(memory, word, bit, old_bit, new_bit)`` -- called
  when a watched aggressor cell transitions (coupling faults).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.memory.column_mux import ColumnMux
from repro.memory.decoder import AddressDecoder
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.ports import AccessKind, AccessRecord
from repro.memory.timebase import TimeBase
from repro.util.bitops import mask
from repro.util.validation import require


class SRAM:
    """One embedded SRAM under diagnosis.

    Parameters
    ----------
    geometry:
        Word/bit organization.
    period_ns:
        Clock period of the shared time base (only relevant for DRFs).
    has_idle_mode:
        Whether the memory supports an idle/no-op cycle.  When absent, the
        PSC keeps the memory in a read-with-data-ignored mode during shifts
        (Sec. 3.3 of the paper).
    trace:
        When true, every access is appended to :attr:`accesses` (used by
        interface tests; disabled by default for speed).
    """

    def __init__(
        self,
        geometry: MemoryGeometry,
        period_ns: float = 10.0,
        has_idle_mode: bool = True,
        trace: bool = False,
    ) -> None:
        self.geometry = geometry
        self.timebase = TimeBase(period_ns)
        self.has_idle_mode = has_idle_mode
        self.decoder = AddressDecoder(geometry.words)
        self.column_mux = ColumnMux(geometry.bits)
        self.trace = trace
        self.accesses: list[AccessRecord] = []
        self._state: list[int] = [0] * geometry.words
        self._word_mask = mask(geometry.bits)
        # Sparse fault indexes.
        self._victim_faults: dict[tuple[int, int], list[Any]] = {}
        self._aggressor_faults: dict[tuple[int, int], list[Any]] = {}
        self._faulty_bits_by_word: dict[int, set[int]] = {}
        self._watched_bits_by_word: dict[int, set[int]] = {}
        self._cell_faults: list[Any] = []
        # Pre-bound hook lists per victim cell, maintained alongside
        # ``_victim_faults`` (same attachment order).  The replay lane
        # walks these directly, saving a getattr per fault per access.
        self._read_hooks: dict[tuple[int, int], list[Any]] = {}
        self._write_hooks: dict[tuple[int, int], list[Any]] = {}
        self._nwrc_hooks: dict[tuple[int, int], list[Any]] = {}

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Instance name from the geometry."""
        return self.geometry.name

    @property
    def words(self) -> int:
        """Number of addressable words (n)."""
        return self.geometry.words

    @property
    def bits(self) -> int:
        """Word width in bits (c)."""
        return self.geometry.bits

    @property
    def now_ns(self) -> float:
        """Current simulated time."""
        return self.timebase.now_ns

    @property
    def cell_faults(self) -> list[Any]:
        """All attached cell-level fault objects."""
        return list(self._cell_faults)

    def dump(self) -> list[int]:
        """Snapshot of the raw stored words (fault-model free)."""
        return list(self._state)

    # ------------------------------------------------------------------ #
    # Fault attachment                                                   #
    # ------------------------------------------------------------------ #
    def add_cell_fault(self, fault: Any) -> None:
        """Attach a cell-level fault.

        The fault exposes ``victims`` (cells whose read/write behaviour it
        alters) and ``aggressors`` (cells whose transitions it watches);
        either may be empty.
        """
        for cell in getattr(fault, "victims", ()):
            self.geometry.check_cell(cell)
            key = (cell.word, cell.bit)
            self._victim_faults.setdefault(key, []).append(fault)
            self._faulty_bits_by_word.setdefault(cell.word, set()).add(cell.bit)
            for hook, hooks in (
                ("on_read", self._read_hooks),
                ("on_write", self._write_hooks),
                ("on_nwrc_write", self._nwrc_hooks),
            ):
                handler = getattr(fault, hook, None)
                if handler is not None:
                    hooks.setdefault(key, []).append(handler)
        for cell in getattr(fault, "aggressors", ()):
            self.geometry.check_cell(cell)
            key = (cell.word, cell.bit)
            self._aggressor_faults.setdefault(key, []).append(fault)
            self._watched_bits_by_word.setdefault(cell.word, set()).add(cell.bit)
        self._cell_faults.append(fault)

    def remove_cell_fault(self, fault: Any) -> None:
        """Detach one cell-level fault (models a perfect spare-cell repair).

        The [7, 8] baseline replaces each localized defective cell with a
        spare before the next diagnosis iteration; removing the fault from
        the access path is the behavioural equivalent.
        """
        if fault not in self._cell_faults:
            return
        self._cell_faults.remove(fault)
        for cell in getattr(fault, "victims", ()):
            key = (cell.word, cell.bit)
            if key in self._victim_faults:
                self._victim_faults[key] = [
                    f for f in self._victim_faults[key] if f is not fault
                ]
                for hooks in (self._read_hooks, self._write_hooks, self._nwrc_hooks):
                    if key in hooks:
                        hooks[key] = [
                            h
                            for h in hooks[key]
                            if getattr(h, "__self__", None) is not fault
                        ]
                        if not hooks[key]:
                            del hooks[key]
                if not self._victim_faults[key]:
                    del self._victim_faults[key]
                    bits = self._faulty_bits_by_word.get(cell.word)
                    if bits is not None:
                        bits.discard(cell.bit)
                        if not bits:
                            del self._faulty_bits_by_word[cell.word]
        for cell in getattr(fault, "aggressors", ()):
            key = (cell.word, cell.bit)
            if key in self._aggressor_faults:
                self._aggressor_faults[key] = [
                    f for f in self._aggressor_faults[key] if f is not fault
                ]
                if not self._aggressor_faults[key]:
                    del self._aggressor_faults[key]
                    bits = self._watched_bits_by_word.get(cell.word)
                    if bits is not None:
                        bits.discard(cell.bit)
                        if not bits:
                            del self._watched_bits_by_word[cell.word]

    def clear_faults(self) -> None:
        """Detach all faults (cell, decoder and column faults)."""
        self._victim_faults.clear()
        self._aggressor_faults.clear()
        self._faulty_bits_by_word.clear()
        self._watched_bits_by_word.clear()
        self._cell_faults.clear()
        self._read_hooks.clear()
        self._write_hooks.clear()
        self._nwrc_hooks.clear()
        self.decoder.reset()
        self.column_mux.reset()

    # ------------------------------------------------------------------ #
    # Raw cell access (bypasses fault hooks; used by fault models/tests) #
    # ------------------------------------------------------------------ #
    def stored_bit(self, word: int, bit: int) -> int:
        """Raw stored value of one cell, without read-fault effects."""
        self.geometry.check_cell(CellRef(word, bit))
        return (self._state[word] >> bit) & 1

    def force_stored_bit(self, word: int, bit: int, value: int) -> None:
        """Overwrite one cell's stored value, bypassing write-fault hooks.

        Coupling faults use this to flip their victim cell; tests use it to
        set up scenarios.
        """
        self.geometry.check_cell(CellRef(word, bit))
        require(value in (0, 1), f"value must be 0 or 1, got {value!r}")
        if value:
            self._state[word] |= 1 << bit
        else:
            self._state[word] &= ~(1 << bit)

    def fill(self, value: int) -> None:
        """Directly initialize every word to ``value`` (test helper)."""
        require(0 <= value <= self._word_mask, f"value {value:#x} too wide")
        self._state = [value] * self.geometry.words

    def force_store_word(self, word: int, value: int) -> None:
        """Overwrite one stored word, bypassing fault hooks and timing.

        Used by the vectorized diagnosis backends
        (:mod:`repro.engine.backends`) to sync their bit-parallel state for
        fault-free words back into the behavioural model after a run.
        """
        self.geometry.check_address(word)
        require(0 <= value <= self._word_mask, f"value {value:#x} too wide")
        self._state[word] = value

    def hooked_words(self) -> set[int]:
        """Word indices whose accesses can trigger any fault hook.

        The union of words containing victim cells and words containing
        watched aggressor cells: accesses to every *other* word behave
        ideally, which is the invariant the bit-parallel backend exploits.
        """
        return set(self._faulty_bits_by_word) | set(self._watched_bits_by_word)

    # ------------------------------------------------------------------ #
    # Functional access path                                             #
    # ------------------------------------------------------------------ #
    def read(self, address: int) -> int:
        """Execute one read cycle and return the observed word."""
        self.geometry.check_address(address)
        self.timebase.tick()
        observed = self._read_bus(address)
        if self.trace:
            self.accesses.append(
                AccessRecord(AccessKind.READ, address, observed, self.now_ns)
            )
        return observed

    def write(self, address: int, value: int) -> None:
        """Execute one normal write cycle."""
        self._write_common(address, value, nwrc=False)
        if self.trace:
            self.accesses.append(
                AccessRecord(AccessKind.WRITE, address, value, self.now_ns)
            )

    def nwrc_write(self, address: int, value: int) -> None:
        """Execute one No-Write-Recovery write cycle (NWRTM, Sec. 3.4).

        On a good cell this behaves exactly like a normal write; cells with
        open pull-up defects (DRFs, weak cells) fail to flip because the
        floating-GND bitline cannot pull the storage node up.
        """
        self._write_common(address, value, nwrc=True)
        if self.trace:
            self.accesses.append(
                AccessRecord(AccessKind.NWRC_WRITE, address, value, self.now_ns)
            )

    # ------------------------------------------------------------------ #
    # Ideal-periphery replay path (vectorized-engine fast lane)          #
    # ------------------------------------------------------------------ #
    def replay_read(self, address: int) -> int:
        """One read cycle assuming an ideal periphery.

        Semantically identical to :meth:`read` when the decoder and the
        column mux are fault-free and tracing is off -- exactly the
        preconditions under which the vectorized backends
        (:mod:`repro.engine`) replay fault-hooked words behaviourally.
        Cell-fault hooks fire exactly as in :meth:`read`; only the ideal
        decoder/mux indirection (an identity on a fault-free mux), the
        address checks and the trace check are skipped.  Callers must
        guarantee the preconditions (the engine's ``supports`` checks
        do).
        """
        self.timebase.tick_one()
        physical = self._state[address]
        faulty_bits = self._faulty_bits_by_word.get(address)
        if faulty_bits:
            read_hooks = self._read_hooks
            for bit in faulty_bits:
                stored = (physical >> bit) & 1
                observed = stored
                for handler in read_hooks.get((address, bit), ()):
                    observed = handler(self, address, bit, observed)
                if observed != stored:
                    physical = (physical & ~(1 << bit)) | (observed << bit)
        return physical

    def replay_write(self, address: int, value: int, nwrc: bool = False) -> None:
        """One write cycle assuming an ideal periphery (see :meth:`replay_read`)."""
        self.timebase.tick_one()
        old_physical = self._state[address]
        faulty_bits = self._faulty_bits_by_word.get(address)
        watched_bits = self._watched_bits_by_word.get(address)
        if not faulty_bits and not watched_bits:
            self._state[address] = value
            return

        write_hooks = self._nwrc_hooks if nwrc else self._write_hooks
        effective = value
        if faulty_bits:
            for bit in faulty_bits:
                old_bit = (old_physical >> bit) & 1
                new_bit = (value >> bit) & 1
                for handler in write_hooks.get((address, bit), ()):
                    new_bit = handler(self, address, bit, old_bit, new_bit)
                effective = (effective & ~(1 << bit)) | (new_bit << bit)
        self._state[address] = effective

        if watched_bits:
            for bit in watched_bits:
                old_bit = (old_physical >> bit) & 1
                new_bit = (effective >> bit) & 1
                if old_bit == new_bit:
                    continue
                for fault in self._aggressor_faults[(address, bit)]:
                    handler = getattr(fault, "on_aggressor_transition", None)
                    if handler is not None:
                        handler(self, address, bit, old_bit, new_bit)

    def force_store_rows(self, rows: Iterable[int], values: list[int]) -> None:
        """Bulk :meth:`force_store_word`: ``rows[i]`` takes ``values[row]``.

        ``values`` is indexed *by row*, so callers hand over a full packed
        column and the row subset to publish.  Rows must be valid
        addresses (the engine derives them from mask indices); values are
        width-checked like any store.
        """
        state = self._state
        word_mask = self._word_mask
        for row in rows:
            value = values[row]
            if not 0 <= value <= word_mask:
                raise ValueError(f"value {value:#x} too wide for {self.bits} bits")
            state[row] = value

    def idle(self) -> None:
        """Execute one idle/no-op cycle (or a read-ignored cycle).

        Used while the PSC serializes captured responses.  Memories without
        an idle mode burn a read cycle whose data is discarded; either way
        the stored contents are untouched.
        """
        self.timebase.tick()
        if self.trace:
            kind = AccessKind.IDLE if self.has_idle_mode else AccessKind.NOOP_READ
            self.accesses.append(AccessRecord(kind, 0, None, self.now_ns))

    def pause(self, duration_ns: float) -> None:
        """Let simulated time pass without clocking (retention pause)."""
        self.timebase.pause(duration_ns)

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #
    def _read_bus(self, address: int) -> int:
        targets = self.decoder.targets(address)
        if not targets:
            return AddressDecoder.FLOATING_BUS_VALUE
        values = [self._read_word(word) for word in targets]
        combined = values[0]
        for value in values[1:]:
            combined |= value  # multi-select reads resolve wired-OR
        return combined

    def _read_word(self, word: int) -> int:
        physical = self._state[word]
        faulty_bits = self._faulty_bits_by_word.get(word)
        if faulty_bits:
            for bit in faulty_bits:
                stored = (physical >> bit) & 1
                observed = stored
                for fault in self._victim_faults[(word, bit)]:
                    handler = getattr(fault, "on_read", None)
                    if handler is not None:
                        observed = handler(self, word, bit, observed)
                if observed != stored:
                    physical = (physical & ~(1 << bit)) | (observed << bit)
        return self.column_mux.read_columns(physical)

    def _write_common(self, address: int, value: int, nwrc: bool) -> None:
        self.geometry.check_address(address)
        require(0 <= value <= self._word_mask, f"value {value:#x} too wide")
        self.timebase.tick()
        for word in self.decoder.targets(address):
            self._write_word(word, value, nwrc)

    def _write_word(self, word: int, value: int, nwrc: bool) -> None:
        old_physical = self._state[word]
        new_physical = self.column_mux.write_columns(old_physical, value)
        faulty_bits = self._faulty_bits_by_word.get(word)
        watched_bits = self._watched_bits_by_word.get(word)
        if not faulty_bits and not watched_bits:
            self._state[word] = new_physical
            return

        hook_name = "on_nwrc_write" if nwrc else "on_write"
        effective = new_physical
        if faulty_bits:
            for bit in faulty_bits:
                old_bit = (old_physical >> bit) & 1
                new_bit = (new_physical >> bit) & 1
                for fault in self._victim_faults[(word, bit)]:
                    handler = getattr(fault, hook_name, None)
                    if handler is not None:
                        new_bit = handler(self, word, bit, old_bit, new_bit)
                effective = (effective & ~(1 << bit)) | (new_bit << bit)
        self._state[word] = effective

        if watched_bits:
            for bit in watched_bits:
                old_bit = (old_physical >> bit) & 1
                new_bit = (effective >> bit) & 1
                if old_bit == new_bit:
                    continue
                for fault in self._aggressor_faults[(word, bit)]:
                    handler = getattr(fault, "on_aggressor_transition", None)
                    if handler is not None:
                        handler(self, word, bit, old_bit, new_bit)

    def faulty_cells(self) -> set[CellRef]:
        """All cells that appear as a victim of some attached fault."""
        return {CellRef(w, b) for (w, b) in self._victim_faults}

    def words_with_faults(self) -> Iterable[int]:
        """Word indices containing at least one faulty (victim) cell."""
        return sorted(self._faulty_bits_by_word)

    def __repr__(self) -> str:
        return (
            f"SRAM(name={self.name!r}, words={self.words}, bits={self.bits}, "
            f"faults={len(self._cell_faults)})"
        )
