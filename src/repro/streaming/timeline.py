"""Deterministic, seekable SEU/intermittent arrival timeline.

Gomi et al. (arXiv:2504.08305) characterize soft errors *event-wise*: a
scanner sweeps a 55-nm SRAM continuously and records each upset as it
lands.  The streaming workload models that regime: an infinite simulated
timeline of arrival events, partitioned into fixed-duration *windows*,
drawn over the fleet's floorplan.

Determinism contract
--------------------
The events of window ``w`` are a pure function of ``(spec, w)``: every
draw comes from private splitmix64 streams keyed by
``mix_seed(master_seed, label, w)`` (:mod:`repro.util.rng`), never from
sequential state carried across windows.  That makes the timeline

* **seekable** -- ``events_for_window(10**9)`` costs the same as
  ``events_for_window(0)``; a resumed monitor jumps straight to its next
  window;
* **partition-independent** -- worker count, chunking and epoch layout
  cannot change any window's events;
* **replayable** -- the same spec regenerates the identical event record,
  so metrics and checkpoints never need to store raw events.

Each window draws an event count (Poisson with mean
``events_per_window``, optionally inflated by a burst), then places each
event on one memory (probability proportional to the clustered intensity
field evaluated at the memory's floorplan placement, scaled by its cell
count), one uniform cell, one kind (SEU vs intermittent read), and one
arrival time *strictly inside* the window.  Burst windows additionally
concentrate arrivals on a single seeded "strike" memory -- the spatial
signature the burst detector looks for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.faults.intermittent import EVENT_KIND_INT_READ, EVENT_KIND_SEU
from repro.util.records import Record
from repro.util.rng import SplitMix64Stream, mix_seed
from repro.util.validation import require, require_in_range, require_positive

#: Stream labels separating the per-window draw families.
_WINDOW_STREAM = 0x57E0
_BURST_STREAM = 0x57B5
_FAULT_SEED_STREAM = 0x57F1


@dataclass(frozen=True)
class TimelineEvent(Record):
    """One arrival event on the simulated timeline."""

    #: Window the event belongs to (``window_of(time_ns)`` agrees).
    window: int
    #: Draw order within the window (stable tiebreak for equal times).
    sequence: int
    #: Absolute arrival time; always in ``[window_start, window_end)``.
    time_ns: float
    #: Name of the struck memory instance.
    memory: str
    #: Linear cell index within that memory's geometry.
    cell_index: int
    #: Event kind label (see :data:`repro.faults.intermittent.EVENT_KINDS`).
    kind: str
    #: Private seed of the fault model this event materializes into.
    seed: int


class EventTimeline:
    """Seekable per-window event generator over a set of placed memories.

    Parameters
    ----------
    cells_by_memory:
        ``name -> cell count`` of every memory on the floorplan.
    weights:
        Normalized spatial arrival weights per memory name (see
        :func:`repro.scenarios.cluster.arrival_weights`).
    window_ns / events_per_window:
        Window duration and the Poisson mean arrival count per window.
    master_seed:
        Root of every derived stream.
    burst_probability / burst_factor:
        Per-window chance of a burst, and the factor it applies to the
        arrival mean; burst arrivals concentrate on one seeded memory.
    seu_fraction:
        Probability an event is an SEU (the rest are intermittent reads).
    upset_probability:
        Recorded for consumers materializing faults; not drawn from here.
    """

    def __init__(
        self,
        cells_by_memory: dict[str, int],
        weights: dict[str, float],
        window_ns: float,
        events_per_window: float,
        master_seed: int = 0,
        burst_probability: float = 0.0,
        burst_factor: float = 4.0,
        seu_fraction: float = 0.5,
    ) -> None:
        require(bool(cells_by_memory), "timeline needs at least one memory")
        require(
            set(weights) == set(cells_by_memory),
            "weights and cells_by_memory must cover the same memory names",
        )
        require_positive(window_ns, "window_ns")
        require(events_per_window >= 0.0, "events_per_window must be >= 0")
        require_in_range(burst_probability, 0.0, 1.0, "burst_probability")
        require(burst_factor >= 1.0, "burst_factor must be >= 1")
        require_in_range(seu_fraction, 0.0, 1.0, "seu_fraction")
        self.window_ns = float(window_ns)
        self.events_per_window = float(events_per_window)
        self.master_seed = int(master_seed)
        self.burst_probability = float(burst_probability)
        self.burst_factor = float(burst_factor)
        self.seu_fraction = float(seu_fraction)
        # Selection order is sorted by *name* so relabeling-invariant
        # callers (which key everything by name already) get draws
        # independent of bank ordering.
        self._names = sorted(cells_by_memory)
        self._cells = {name: int(cells_by_memory[name]) for name in self._names}
        # Arrival probability ~ spatial intensity x area (cell count).
        combined = [weights[name] * self._cells[name] for name in self._names]
        total = sum(combined)
        if total <= 0.0:
            combined = [float(self._cells[name]) for name in self._names]
            total = sum(combined)
        self._cumulative: list[float] = []
        running = 0.0
        for value in combined:
            running += value / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0

    # ------------------------------------------------------------------ #
    # Window geometry                                                    #
    # ------------------------------------------------------------------ #
    def window_start_ns(self, window: int) -> float:
        """Absolute start time of one window."""
        return window * self.window_ns

    def window_of(self, time_ns: float) -> int:
        """The window an absolute time belongs to.

        Windows are half-open ``[start, end)``: a time landing exactly on
        an edge belongs to the *later* window.  Generated events always
        satisfy ``window_of(event.time_ns) == event.window`` (their
        in-window offset is a 53-bit uniform in ``[0, 1)`` scaled by the
        duration, so it never reaches the end edge).
        """
        require(time_ns >= 0.0, "time_ns must be >= 0")
        return int(time_ns // self.window_ns)

    # ------------------------------------------------------------------ #
    # Draws                                                              #
    # ------------------------------------------------------------------ #
    def burst_in_window(self, window: int) -> bool:
        """Whether ``window`` carries an injected burst (pure function)."""
        if self.burst_probability <= 0.0:
            return False
        stream = SplitMix64Stream(
            mix_seed(self.master_seed, _BURST_STREAM, window)
        )
        return stream.next_float() < self.burst_probability

    def _burst_memory(self, window: int) -> str:
        """The seeded strike memory a burst concentrates on."""
        stream = SplitMix64Stream(
            mix_seed(self.master_seed, _BURST_STREAM, window, 1)
        )
        return self._pick_memory(stream.next_float())

    def _pick_memory(self, uniform: float) -> str:
        for name, edge in zip(self._names, self._cumulative):
            if uniform < edge:
                return name
        return self._names[-1]

    @staticmethod
    def _poisson(stream: SplitMix64Stream, mean: float) -> int:
        """Inverse-CDF Poisson draw from one uniform."""
        if mean <= 0.0:
            return 0
        uniform = stream.next_float()
        probability = math.exp(-mean)
        cumulative = probability
        count = 0
        # Bounded walk: the loop ends once the CDF passes the uniform
        # (numerically guaranteed to terminate -- the tail underflows to
        # a zero increment long before the guard below).
        while uniform >= cumulative and count < 64 + int(8 * mean):
            count += 1
            probability *= mean / count
            cumulative += probability
        return count

    def events_for_window(self, window: int) -> tuple[TimelineEvent, ...]:
        """All events of one window, in arrival-time order."""
        require(window >= 0, "window must be >= 0")
        stream = SplitMix64Stream(
            mix_seed(self.master_seed, _WINDOW_STREAM, window)
        )
        mean = self.events_per_window
        burst = self.burst_in_window(window)
        burst_memory = None
        if burst:
            mean *= self.burst_factor
            burst_memory = self._burst_memory(window)
        count = self._poisson(stream, mean)
        start = self.window_start_ns(window)
        events = []
        for sequence in range(count):
            memory_uniform = stream.next_float()
            cell_uniform = stream.next_float()
            kind_uniform = stream.next_float()
            time_uniform = stream.next_float()
            if burst_memory is not None and sequence % 2 == 0:
                # Bursts strike spatially: every other arrival lands on
                # the strike memory, the rest keep the background field.
                memory = burst_memory
            else:
                memory = self._pick_memory(memory_uniform)
            cells = self._cells[memory]
            events.append(
                TimelineEvent(
                    window=window,
                    sequence=sequence,
                    time_ns=start + time_uniform * self.window_ns,
                    memory=memory,
                    cell_index=int(cell_uniform * cells) % cells,
                    kind=(
                        EVENT_KIND_SEU
                        if kind_uniform < self.seu_fraction
                        else EVENT_KIND_INT_READ
                    ),
                    seed=mix_seed(
                        self.master_seed, _FAULT_SEED_STREAM, window, sequence
                    ),
                )
            )
        return tuple(sorted(events, key=lambda e: (e.time_ns, e.sequence)))

    def iter_events(self, start_window: int = 0) -> Iterator[TimelineEvent]:
        """Infinite event iterator from ``start_window`` onward."""
        window = start_window
        while True:
            yield from self.events_for_window(window)
            window += 1
