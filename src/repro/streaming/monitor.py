"""The streaming online-monitoring fleet: periodic sweeps over a timeline.

A :class:`StreamingMonitor` turns the batch fleet machinery into an
online monitor: the :class:`~repro.streaming.timeline.EventTimeline`
draws SEU/intermittent arrivals window by window, each window's affected
memories get a periodic diagnosis sweep (the paper's scheme, through any
registered backend), and results stream back as an **iterator of
:class:`~repro.streaming.window.WindowReport`** -- there is no terminal
``run()`` and no end to the timeline.

Scheduling
----------
An infinite run cannot be one :class:`~repro.engine.fleet.FleetScheduler`
submission (the scheduler enumerates its chunks up front), so the monitor
schedules bounded **epochs**: each epoch is a fleet of ``epoch_windows``
window-sweep "campaigns" consumed through the scheduler's
:meth:`~repro.engine.fleet.FleetScheduler.stream` iterator, and epochs
chain for as long as the consumer keeps iterating.  Window indices are
absolute (``base_window + local index``), so results are independent of
worker count, chunk size *and* epoch length -- the partition is pure
scheduling.  Breaking out of the iterator tears the current epoch's pool
down immediately (the early-close contract of ``stream()``).

Bounded memory
--------------
Per-epoch scheduler state dies with the epoch; cumulative state is one
:class:`~repro.streaming.window.WindowAggregator` (scalars + Welford
accumulators + a digest ring) and one
:class:`~repro.streaming.window.BurstDetector` (a bounded count ring).
The CI smoke job pins this with a tracemalloc guard over a 50-window run.

Resume
------
With a :class:`~repro.engine.checkpoint.RingCheckpointStore` attached,
every finished window publishes its deterministic payload plus the
cumulative aggregator/detector state; ``resume=True`` restores the
latest record and continues at the next window, reproducing the
remaining windows' ``deterministic_dict()`` byte for byte.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterator

from repro.core.scheme import FastDiagnosisScheme
from repro.engine.checkpoint import RingCheckpointStore
from repro.engine.fleet import FleetScheduler, plan_spec_backend
from repro.engine.supervisor import ChunkRetryPolicy
from repro.engine.session import run_session
from repro.faults.intermittent import EVENT_KIND_SEU, fault_for_event
from repro.scenarios.cluster import (
    ClusterField,
    arrival_weights,
    sample_cluster_centers,
)
from repro.soc.case_study import case_study_soc
from repro.soc.chip import SoCConfig
from repro.soc.floorplan import Floorplan
from repro.streaming.timeline import EventTimeline
from repro.streaming.window import BurstDetector, WindowAggregator, WindowReport
from repro.telemetry.core import tracer as _tracer
from repro.telemetry.report import TelemetryReport
from repro.memory.geometry import MemoryGeometry
from repro.util.records import Record
from repro.util.validation import require, require_in_range, require_positive

#: Default windows per scheduling epoch (the unit of pool submission).
DEFAULT_EPOCH_WINDOWS = 32


@dataclass(frozen=True)
class StreamingSpec(Record):
    """A reproducible infinite monitoring stream.

    Only primitives live here (like :class:`~repro.engine.fleet.FleetSpec`)
    so the spec pickles cheaply to workers and digests canonically into
    ring checkpoints.  The spec describes the *stream* -- fleet shape,
    window partition, arrival process -- never the scheduling layout
    (workers/chunks/epochs), which must not affect results.
    """

    soc: str = "case-study"
    memories: int = 8
    heterogeneous: bool = True
    period_ns: float = 10.0
    backend: str = "auto"
    master_seed: int = 0
    #: Uniform ``(words, bits)`` geometry override (as in FleetSpec).
    geometry: tuple[int, int] | None = None
    #: Window duration on the simulated timeline.
    window_ns: float = 10_000.0
    #: Poisson mean arrivals per window.
    events_per_window: float = 3.0
    #: Per-access upset probability of materialized event faults.
    upset_probability: float = 0.3
    #: Fraction of events that are SEUs (the rest intermittent reads).
    seu_fraction: float = 0.5
    #: Per-window burst chance and the arrival-mean factor it applies.
    burst_probability: float = 0.05
    burst_factor: float = 4.0
    #: Floorplan/cluster-field shape driving spatial arrival weights.
    die_size: float = 100.0
    placement_seed: int = 0
    cluster_centers: int = 3
    cluster_base_rate: float = 0.01
    cluster_peak_rate: float = 0.15
    cluster_radius: float = 25.0

    def __post_init__(self) -> None:
        require(
            self.soc in ("case-study", "buffer-cluster"),
            f"unknown SoC {self.soc!r}",
        )
        require_positive(self.window_ns, "window_ns")
        require(self.events_per_window >= 0.0, "events_per_window must be >= 0")
        require_in_range(self.upset_probability, 0.0, 1.0, "upset_probability")
        require_in_range(self.seu_fraction, 0.0, 1.0, "seu_fraction")
        require_in_range(self.burst_probability, 0.0, 1.0, "burst_probability")
        require(self.burst_factor >= 1.0, "burst_factor must be >= 1")
        require(self.cluster_centers >= 0, "cluster_centers must be >= 0")
        if self.geometry is not None:
            require(
                len(self.geometry) == 2, "geometry must be a (words, bits) pair"
            )

    def build_soc(self) -> SoCConfig:
        """Materialize the SoC configuration the monitor watches."""
        if self.geometry is not None:
            words, bits = self.geometry
            return SoCConfig(
                name=f"uniform-{words}x{bits}",
                geometries=[
                    MemoryGeometry(words, bits, f"esram_{i}")
                    for i in range(self.memories)
                ],
                period_ns=self.period_ns,
            )
        if self.soc == "buffer-cluster":
            return SoCConfig.buffer_cluster(period_ns=self.period_ns)
        return case_study_soc(
            memories=self.memories,
            heterogeneous=self.heterogeneous,
            period_ns=self.period_ns,
        )

    def build_floorplan(self, soc: SoCConfig | None = None) -> Floorplan:
        """Name-seeded floorplan (placement independent of bank order)."""
        return Floorplan.name_seeded(
            soc or self.build_soc(),
            die_size=self.die_size,
            seed=self.placement_seed,
        )

    def intensity_field(self) -> ClusterField:
        """The spatial arrival-intensity field of the stream.

        Centers derive from the master seed only (stream index 0): one
        fixed field for the whole stream, so window events stay a pure
        function of ``(spec, window)``.
        """
        return ClusterField(
            centers=sample_cluster_centers(
                self.cluster_centers, self.die_size, self.master_seed, 0
            ),
            base_rate=self.cluster_base_rate,
            peak_rate=self.cluster_peak_rate,
            radius=self.cluster_radius,
        )

    def timeline(self, soc: SoCConfig | None = None) -> EventTimeline:
        """Materialize the event timeline this spec describes."""
        soc = soc or self.build_soc()
        weights = arrival_weights(self.intensity_field(), self.build_floorplan(soc))
        return EventTimeline(
            cells_by_memory={g.name: g.cells for g in soc.geometries},
            weights=weights,
            window_ns=self.window_ns,
            events_per_window=self.events_per_window,
            master_seed=self.master_seed,
            burst_probability=self.burst_probability,
            burst_factor=self.burst_factor,
            seu_fraction=self.seu_fraction,
        )


@dataclass(frozen=True)
class _EpochSpec(Record):
    """One bounded scheduling epoch of a stream (internal).

    Looks like a fleet spec to :class:`~repro.engine.fleet.FleetScheduler`
    (``campaigns`` window sweeps, a concrete pre-planned ``backend``)
    while carrying the absolute window base so workers compute
    partition-independent results.
    """

    stream: StreamingSpec
    base_window: int
    campaigns: int
    backend: str


def _run_window(
    spec: StreamingSpec,
    backend: str,
    geometries: dict[str, MemoryGeometry],
    timeline: EventTimeline,
    window: int,
) -> WindowReport:
    """Diagnose one window: inject its events, sweep, account detection."""
    started = time.perf_counter()
    events = timeline.events_for_window(window)
    report = WindowReport(
        index=window,
        start_ns=timeline.window_start_ns(window),
        duration_ns=timeline.window_ns,
        events=len(events),
        burst_injected=timeline.burst_in_window(window),
    )
    if events:
        report.seu_events = sum(1 for e in events if e.kind == EVENT_KIND_SEU)
        report.int_read_events = len(events) - report.seu_events
        affected = sorted({event.memory for event in events})
        report.affected_memories = len(affected)
        # Sweep only the struck memories: the periodic diagnosis visits
        # everything over time, but within one window only banks with
        # arrivals can produce failures -- skipping the rest bounds
        # per-window work by the arrival rate, not the fleet size.
        window_soc = SoCConfig(
            name=f"window-{window}",
            geometries=[geometries[name] for name in affected],
            period_ns=spec.period_ns,
        )
        bank = window_soc.build_bank()
        for event in events:
            fault = fault_for_event(
                event.kind,
                geometries[event.memory].cell_at(event.cell_index),
                spec.upset_probability,
                event.seed,
            )
            fault.attach(bank.by_name(event.memory))
        scheme = FastDiagnosisScheme(bank, period_ns=spec.period_ns)
        sweep = run_session(scheme, backend=backend)
        report.sweep_failures = sweep.total_failures
        report.sweep_time_ns = sweep.time_ns
        detected = {name: sweep.detected_cells(name) for name in affected}
        for event in events:
            cell = geometries[event.memory].cell_at(event.cell_index)
            if cell in detected[event.memory]:
                report.detected_events += 1
        report.escaped_events = report.events - report.detected_events
    report.elapsed_s = time.perf_counter() - started
    return report


def run_window_chunk(
    epoch: _EpochSpec, indices: tuple[int, ...]
) -> list[WindowReport]:
    """Worker entry point: sweep a chunk of windows sequentially."""
    spec = epoch.stream
    soc = spec.build_soc()
    geometries = {geometry.name: geometry for geometry in soc.geometries}
    timeline = spec.timeline(soc)
    reports = []
    tr = _tracer()
    for local in indices:
        window = epoch.base_window + local
        if tr.enabled:
            with tr.span("stream.window", "stream", window=window):
                report = _run_window(spec, epoch.backend, geometries, timeline, window)
            tr.counters.add("stream.windows")
            tr.counters.add("stream.events", report.events)
            tr.counters.add("stream.detected", report.detected_events)
            if report.events == 0:
                tr.counters.add("stream.windows_empty")
        else:
            report = _run_window(spec, epoch.backend, geometries, timeline, window)
        reports.append(report)
    return reports


class StreamingMonitor:
    """Iterate diagnosis windows over an infinite event timeline.

    Usage::

        monitor = StreamingMonitor(StreamingSpec(), windows=50, workers=4)
        for report in monitor.windows():
            ...                      # one WindowReport per window, in order
        monitor.aggregator           # cumulative windowed statistics

    ``windows=None`` streams forever; ``break`` out whenever done (the
    underlying pool terminates immediately, never orphaning workers).

    Parameters mirror :class:`~repro.engine.fleet.FleetScheduler` where
    they mean the same thing: ``workers``/``chunk_size`` shape the pool,
    ``checkpoint`` (directory path or prepared
    :class:`~repro.engine.checkpoint.RingCheckpointStore`) enables the
    windowed ring checkpoint, ``resume=True`` continues from its latest
    record, ``telemetry=True`` merges per-window spans into
    ``self.telemetry_report``.  ``retain`` bounds both the checkpoint
    ring and the aggregator's digest ring.
    """

    def __init__(
        self,
        spec: StreamingSpec,
        windows: int | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        epoch_windows: int = DEFAULT_EPOCH_WINDOWS,
        checkpoint: "RingCheckpointStore | str | os.PathLike | None" = None,
        resume: bool = False,
        telemetry: bool = False,
        retain: int = 8,
        retry: "ChunkRetryPolicy | None" = None,
        on_chunk_failure: str = "raise",
    ) -> None:
        # Pin an ``auto`` backend once, before any worker sees the spec
        # (and before the ring digest is computed), exactly like the
        # fleet scheduler does.
        self.spec: StreamingSpec = plan_spec_backend(spec)
        if windows is not None:
            require_positive(windows, "windows")
        require_positive(epoch_windows, "epoch_windows")
        self.total_windows = windows
        self.workers = workers
        self.chunk_size = chunk_size
        self.epoch_windows = epoch_windows
        self.telemetry = bool(telemetry)
        self.telemetry_report: TelemetryReport | None = (
            TelemetryReport() if telemetry else None
        )
        if checkpoint is None:
            require(not resume, "resume=True requires a checkpoint store")
            self.checkpoint: RingCheckpointStore | None = None
        elif isinstance(checkpoint, RingCheckpointStore):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = RingCheckpointStore(
                checkpoint, self.spec, retain=retain
            )
        require(
            on_chunk_failure in ("raise", "quarantine"),
            f"on_chunk_failure must be 'raise' or 'quarantine', "
            f"got {on_chunk_failure!r}",
        )
        self.retry = retry
        self.on_chunk_failure = on_chunk_failure
        #: Quarantined-window records from degraded-mode epochs: one
        #: ``{"windows", "error_kinds"}`` entry per poison chunk.
        self.failures: list[dict] = []
        self.aggregator = WindowAggregator(retain=retain)
        self.detector = BurstDetector()
        self.next_window = 0
        if resume:
            # Quarantine mode salvages a damaged ring (corrupt slots are
            # set aside) instead of refusing to resume.
            latest = self.checkpoint.latest(
                recover=on_chunk_failure == "quarantine"
            )
            if latest is not None:
                self.aggregator = WindowAggregator.from_state(
                    latest["state"]["aggregator"]
                )
                self.detector = BurstDetector.from_state(
                    latest["state"]["detector"]
                )
                self.next_window = latest["window"] + 1

    def state_dict(self) -> dict:
        """Cumulative resumable monitor state (one ring-checkpoint record)."""
        return {
            "aggregator": self.aggregator.state_dict(),
            "detector": self.detector.state_dict(),
        }

    def windows(self) -> Iterator[WindowReport]:
        """Yield one :class:`WindowReport` per window, in window order.

        The generator is the monitor's only drive loop: each yielded
        report has already been burst-scored, folded into
        ``self.aggregator`` and (when checkpointing) published to the
        ring.  Closing the generator -- ``break``, ``close()``, GC --
        stops the stream cleanly mid-epoch.
        """
        while (
            self.total_windows is None or self.next_window < self.total_windows
        ):
            if self.total_windows is None:
                count = self.epoch_windows
            else:
                count = min(
                    self.epoch_windows, self.total_windows - self.next_window
                )
            epoch = _EpochSpec(
                stream=self.spec,
                base_window=self.next_window,
                campaigns=count,
                backend=self.spec.backend,
            )
            scheduler = FleetScheduler(
                epoch,
                workers=self.workers,
                chunk_size=self.chunk_size,
                chunk_runner=run_window_chunk,
                telemetry=self.telemetry,
                retry=self.retry,
                on_chunk_failure=self.on_chunk_failure,
            )
            stream = scheduler.stream()
            try:
                for chunk in stream:
                    for report in chunk:
                        flagged, score = self.detector.observe(report.events)
                        report.burst_detected = flagged
                        report.burst_score = score
                        self.aggregator.add(report)
                        if self.checkpoint is not None:
                            self.checkpoint.save(
                                report.index,
                                report.deterministic_dict(),
                                self.state_dict(),
                            )
                        self.next_window = report.index + 1
                        yield report
                # Only reached when the epoch was fully consumed: advance
                # past any *trailing* quarantined windows, which yielded
                # no reports -- otherwise the next epoch would re-cover
                # (and re-fail) the same base window forever.
                self.next_window = max(
                    self.next_window, epoch.base_window + count
                )
            finally:
                # Early close lands here via GeneratorExit: closing the
                # scheduler stream terminates the epoch's pool without
                # draining it, then its telemetry (complete or partial)
                # folds into the cumulative report.
                stream.close()
                for failure in scheduler.last_failures:
                    self.failures.append(
                        {
                            "windows": [
                                epoch.base_window + local
                                for local in failure.campaign_indices
                            ],
                            "error_kinds": list(failure.error_kinds),
                        }
                    )
                if (
                    self.telemetry_report is not None
                    and scheduler.last_telemetry is not None
                ):
                    self.telemetry_report.merge_report(scheduler.last_telemetry)


def run_monitor(
    spec: StreamingSpec,
    windows: int,
    **kwargs,
) -> WindowAggregator:
    """Convenience: consume ``windows`` windows and return the aggregates."""
    monitor = StreamingMonitor(spec, windows=windows, **kwargs)
    for _ in monitor.windows():
        pass
    return monitor.aggregator
