"""Windowed aggregation for the streaming monitor.

One :class:`WindowReport` is the deterministic outcome of one timeline
window: how many events arrived, what the periodic diagnosis sweep
detected, and whether the window carried (or tripped) a burst.  The
:class:`WindowAggregator` folds reports into cumulative statistics with
**bounded memory**: scalar counters, :class:`~repro.engine.aggregate.StreamingStats`
accumulators (Welford -- O(1) per window), and a ring of the last K
window digests.  Nothing here retains per-window objects, so a monitor
can run forever without growing.

Zero-denominator convention (documented in
:mod:`repro.engine.aggregate`): count-ratio rates (detection, escape)
are ``None`` when no events arrived; throughput over wall-clock time is
``0.0`` when no time was recorded.

Everything except ``elapsed_s`` (wall-clock run metadata) is a pure
function of the spec and the window index -- including burst *detection*,
which depends only on the ordered sequence of event counts and is
restored exactly across ring-checkpoint resumes.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field

from repro.engine.aggregate import StreamingStats
from repro.engine.checkpoint import canonical_json
from repro.util.records import Record
from repro.util.validation import require, require_positive

#: Default number of trailing windows the burst detector baselines on.
DEFAULT_BURST_HISTORY = 16
#: Default z-score threshold for flagging a burst.
DEFAULT_BURST_THRESHOLD = 3.0
#: Windows of baseline required before the detector may flag at all.
DEFAULT_BURST_MIN_HISTORY = 4
#: Default digests retained by the aggregator's ring.
DEFAULT_DIGEST_RETAIN = 8


@dataclass
class WindowReport(Record):
    """The outcome of one monitored window."""

    index: int
    start_ns: float
    duration_ns: float
    events: int = 0
    seu_events: int = 0
    int_read_events: int = 0
    affected_memories: int = 0
    detected_events: int = 0
    escaped_events: int = 0
    sweep_failures: int = 0
    sweep_time_ns: float = 0.0
    burst_injected: bool = False
    #: Filled by the monitor (parent side): burst detection needs the
    #: trailing window history, which individual workers do not have.
    burst_detected: bool = False
    burst_score: float | None = None
    #: Worker wall-clock spent on this window (run metadata).
    elapsed_s: float = 0.0

    @property
    def detection_rate(self) -> float | None:
        """Detected fraction of this window's events (None when empty)."""
        if self.events == 0:
            return None
        return self.detected_events / self.events

    @property
    def escape_rate(self) -> float | None:
        """Escaped fraction of this window's events (None when empty)."""
        if self.events == 0:
            return None
        return self.escaped_events / self.events

    def to_json_dict(self) -> dict:
        """Serializable rendering (one ``--metrics-out`` line)."""
        return {
            "window": self.index,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "events": self.events,
            "seu_events": self.seu_events,
            "int_read_events": self.int_read_events,
            "affected_memories": self.affected_memories,
            "detected_events": self.detected_events,
            "escaped_events": self.escaped_events,
            "detection_rate": self.detection_rate,
            "escape_rate": self.escape_rate,
            "sweep_failures": self.sweep_failures,
            "sweep_time_ns": self.sweep_time_ns,
            "burst_injected": self.burst_injected,
            "burst_detected": self.burst_detected,
            "burst_score": self.burst_score,
            "elapsed_s": self.elapsed_s,
        }

    def deterministic_dict(self) -> dict:
        """The window's *result* content, without wall-clock metadata."""
        payload = self.to_json_dict()
        payload.pop("elapsed_s")
        return payload

    def canonical_json(self) -> str:
        """Canonical byte-comparable rendering of the deterministic content."""
        return canonical_json(self.deterministic_dict())

    def digest(self) -> str:
        """Content digest of the deterministic window outcome."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


class BurstDetector:
    """Trailing-baseline burst detector over per-window event counts.

    Window ``w`` is scored against the mean/std of the previous
    ``history`` windows *excluding itself*: ``score = (count - mean) /
    max(std, 1)`` (the one-event floor keeps a flat background from
    flagging every +1 fluctuation), flagged when ``score >= threshold``
    after at least ``min_history`` baseline windows.  Pure integer/IEEE
    arithmetic over the ordered count sequence -- deterministic across
    worker layouts, and exactly restorable from :meth:`state_dict`.
    """

    def __init__(
        self,
        history: int = DEFAULT_BURST_HISTORY,
        threshold: float = DEFAULT_BURST_THRESHOLD,
        min_history: int = DEFAULT_BURST_MIN_HISTORY,
    ) -> None:
        require_positive(history, "history")
        require_positive(min_history, "min_history")
        require(threshold > 0.0, "threshold must be > 0")
        self.history = history
        self.threshold = float(threshold)
        self.min_history = min_history
        self._recent: deque[int] = deque(maxlen=history)

    def observe(self, count: int) -> tuple[bool, float | None]:
        """Score one window's event count; returns ``(flagged, score)``.

        ``score`` is ``None`` until the baseline has ``min_history``
        windows (during which nothing is flagged).
        """
        require(count >= 0, "count must be >= 0")
        flagged = False
        score = None
        if len(self._recent) >= self.min_history:
            n = len(self._recent)
            mean = sum(self._recent) / n
            variance = sum((c - mean) ** 2 for c in self._recent) / n
            sigma = max(variance**0.5, 1.0)
            score = (count - mean) / sigma
            flagged = score >= self.threshold
        self._recent.append(count)
        return flagged, score

    def state_dict(self) -> dict:
        """Exact internal state (for ring-checkpoint resume)."""
        return {
            "history": self.history,
            "threshold": self.threshold,
            "min_history": self.min_history,
            "recent": list(self._recent),
        }

    @classmethod
    def from_state(cls, state: dict) -> "BurstDetector":
        """Rebuild a detector from :meth:`state_dict` output."""
        detector = cls(
            history=int(state["history"]),
            threshold=float(state["threshold"]),
            min_history=int(state["min_history"]),
        )
        detector._recent.extend(int(c) for c in state["recent"])
        return detector


@dataclass
class WindowAggregator(Record):
    """Cumulative windowed statistics with O(1) memory.

    Only scalars, Welford accumulators and a bounded digest ring live
    here -- the aggregator's footprint is independent of how many windows
    it has consumed, which is what lets a monitor run ``--forever``.
    """

    retain: int = DEFAULT_DIGEST_RETAIN
    windows: int = 0
    empty_windows: int = 0
    total_events: int = 0
    seu_events: int = 0
    int_read_events: int = 0
    detected_events: int = 0
    escaped_events: int = 0
    sweep_failures: int = 0
    bursts_injected: int = 0
    bursts_detected: int = 0
    elapsed_s: float = 0.0
    events_per_window: StreamingStats = field(default_factory=StreamingStats)
    window_detection: StreamingStats = field(default_factory=StreamingStats)
    sweep_time_ns: StreamingStats = field(default_factory=StreamingStats)
    #: ``(window, digest)`` of the last ``retain`` windows.
    recent_digests: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        require_positive(self.retain, "retain")
        if not isinstance(self.recent_digests, deque) or (
            self.recent_digests.maxlen != self.retain
        ):
            self.recent_digests = deque(self.recent_digests, maxlen=self.retain)

    def add(self, report: WindowReport) -> None:
        """Fold one window report in."""
        self.windows += 1
        self.total_events += report.events
        self.seu_events += report.seu_events
        self.int_read_events += report.int_read_events
        self.detected_events += report.detected_events
        self.escaped_events += report.escaped_events
        self.sweep_failures += report.sweep_failures
        self.elapsed_s += report.elapsed_s
        if report.events == 0:
            self.empty_windows += 1
        if report.burst_injected:
            self.bursts_injected += 1
        if report.burst_detected:
            self.bursts_detected += 1
        self.events_per_window.add(float(report.events))
        rate = report.detection_rate
        if rate is not None:
            self.window_detection.add(rate)
        if report.events:
            self.sweep_time_ns.add(report.sweep_time_ns)
        self.recent_digests.append((report.index, report.digest()))

    # ------------------------------------------------------------------ #
    # Derived rates (see the zero-denominator convention above)          #
    # ------------------------------------------------------------------ #
    @property
    def detection_rate(self) -> float | None:
        """Overall detected fraction of all events (None before any event)."""
        if self.total_events == 0:
            return None
        return self.detected_events / self.total_events

    @property
    def escape_rate(self) -> float | None:
        """Overall escaped fraction of all events (None before any event)."""
        if self.total_events == 0:
            return None
        return self.escaped_events / self.total_events

    @property
    def burst_recall(self) -> float | None:
        """Fraction of injected bursts the detector flagged."""
        if self.bursts_injected == 0:
            return None
        return self.bursts_detected / self.bursts_injected

    @property
    def windows_per_sec(self) -> float:
        """Sweep-side throughput (0.0 when no time was recorded)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.windows / self.elapsed_s

    # ------------------------------------------------------------------ #
    # Rendering / persistence                                            #
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict:
        """Serializable rendering for the CLI's ``--json`` mode."""
        return {
            "windows": self.windows,
            "empty_windows": self.empty_windows,
            "total_events": self.total_events,
            "seu_events": self.seu_events,
            "int_read_events": self.int_read_events,
            "detected_events": self.detected_events,
            "escaped_events": self.escaped_events,
            "detection_rate": self.detection_rate,
            "escape_rate": self.escape_rate,
            "sweep_failures": self.sweep_failures,
            "bursts_injected": self.bursts_injected,
            "bursts_detected": self.bursts_detected,
            "burst_recall": self.burst_recall,
            "events_per_window": self.events_per_window.to_dict(),
            "window_detection": self.window_detection.to_dict(),
            "sweep_time_ns": self.sweep_time_ns.to_dict(),
            "recent_digests": [list(entry) for entry in self.recent_digests],
            "elapsed_s": self.elapsed_s,
            "windows_per_sec": self.windows_per_sec,
        }

    def deterministic_dict(self) -> dict:
        """Cumulative *result* content, without wall-clock measurements."""
        payload = self.to_json_dict()
        payload.pop("elapsed_s")
        payload.pop("windows_per_sec")
        return payload

    def canonical_json(self) -> str:
        """Canonical byte-comparable rendering of the deterministic content."""
        return canonical_json(self.deterministic_dict())

    def state_dict(self) -> dict:
        """Exact resumable state (floats round-trip exactly via JSON)."""
        return {
            "retain": self.retain,
            "windows": self.windows,
            "empty_windows": self.empty_windows,
            "total_events": self.total_events,
            "seu_events": self.seu_events,
            "int_read_events": self.int_read_events,
            "detected_events": self.detected_events,
            "escaped_events": self.escaped_events,
            "sweep_failures": self.sweep_failures,
            "bursts_injected": self.bursts_injected,
            "bursts_detected": self.bursts_detected,
            "elapsed_s": self.elapsed_s,
            "events_per_window": self.events_per_window.state_dict(),
            "window_detection": self.window_detection.state_dict(),
            "sweep_time_ns": self.sweep_time_ns.state_dict(),
            "recent_digests": [list(entry) for entry in self.recent_digests],
        }

    @classmethod
    def from_state(cls, state: dict) -> "WindowAggregator":
        """Rebuild an aggregator from :meth:`state_dict` output."""
        aggregator = cls(
            retain=int(state["retain"]),
            windows=int(state["windows"]),
            empty_windows=int(state["empty_windows"]),
            total_events=int(state["total_events"]),
            seu_events=int(state["seu_events"]),
            int_read_events=int(state["int_read_events"]),
            detected_events=int(state["detected_events"]),
            escaped_events=int(state["escaped_events"]),
            sweep_failures=int(state["sweep_failures"]),
            bursts_injected=int(state["bursts_injected"]),
            bursts_detected=int(state["bursts_detected"]),
            elapsed_s=float(state["elapsed_s"]),
            events_per_window=StreamingStats.from_state(state["events_per_window"]),
            window_detection=StreamingStats.from_state(state["window_detection"]),
            sweep_time_ns=StreamingStats.from_state(state["sweep_time_ns"]),
        )
        aggregator.recent_digests.extend(
            (int(window), str(digest)) for window, digest in state["recent_digests"]
        )
        return aggregator

    def summary_lines(self) -> list[str]:
        """Human-readable monitor summary for the CLI."""
        lines = [
            f"stream: {self.windows} windows ({self.empty_windows} empty), "
            f"{self.total_events} events in {self.elapsed_s:.2f} s sweep time "
            f"({self.windows_per_sec:.2f} windows/s)",
            f"  events          : {self.seu_events} SEU, "
            f"{self.int_read_events} intermittent-read "
            f"(mean {self.events_per_window.mean:.2f}/window)"
            if self.windows
            else "  events          : none",
        ]
        if self.detection_rate is not None:
            lines.append(
                f"  detection       : {self.detection_rate:.1%} of events "
                f"({self.detected_events} detected, "
                f"{self.escaped_events} escaped)"
            )
        if self.bursts_injected or self.bursts_detected:
            recall = self.burst_recall
            lines.append(
                f"  bursts          : {self.bursts_injected} injected, "
                f"{self.bursts_detected} flagged"
                + (f" (recall {recall:.0%})" if recall is not None else "")
            )
        if self.sweep_time_ns.count:
            lines.append(
                f"  sweep time      : mean {self.sweep_time_ns.mean / 1e3:.1f} us "
                f"simulated (max {self.sweep_time_ns.maximum / 1e3:.1f} us)"
            )
        return lines


def validate_window_metrics(payload: dict) -> None:
    """Schema check for one per-window metrics record (CI smoke guard).

    Raises ``ValueError`` on missing keys or mistyped values; accepts
    exactly the :meth:`WindowReport.to_json_dict` shape.
    """
    schema: dict[str, tuple] = {
        "window": (int,),
        "start_ns": (int, float),
        "duration_ns": (int, float),
        "events": (int,),
        "seu_events": (int,),
        "int_read_events": (int,),
        "affected_memories": (int,),
        "detected_events": (int,),
        "escaped_events": (int,),
        "detection_rate": (int, float, type(None)),
        "escape_rate": (int, float, type(None)),
        "sweep_failures": (int,),
        "sweep_time_ns": (int, float),
        "burst_injected": (bool,),
        "burst_detected": (bool,),
        "burst_score": (int, float, type(None)),
        "elapsed_s": (int, float),
    }
    missing = sorted(set(schema) - set(payload))
    if missing:
        raise ValueError(f"window metrics record missing keys: {missing}")
    for key, types in schema.items():
        value = payload[key]
        if isinstance(value, bool) and bool not in types:
            raise ValueError(f"window metrics key {key!r} must not be bool")
        if not isinstance(value, types):
            raise ValueError(
                f"window metrics key {key!r} has type {type(value).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )


def validate_window_metrics_line(line: str) -> dict:
    """Parse + schema-check one ``--metrics-out`` JSONL line."""
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("window metrics line must be a JSON object")
    validate_window_metrics(payload)
    return payload
