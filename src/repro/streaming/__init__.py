"""Streaming online monitoring: campaigns as an infinite event timeline.

The batch fleet answers "what did this population of campaigns
measure?"; this package answers "what is the fleet seeing *right now*?"
-- SEU/intermittent arrivals stream in on a simulated timeline
(:mod:`~repro.streaming.timeline`), periodic diagnosis sweeps run over
the affected memories window by window, and aggregation is windowed and
memory-bounded (:mod:`~repro.streaming.window`), driven through the
iterator API of :class:`~repro.streaming.monitor.StreamingMonitor`.
"""

from repro.streaming.monitor import (
    DEFAULT_EPOCH_WINDOWS,
    StreamingMonitor,
    StreamingSpec,
    run_monitor,
    run_window_chunk,
)
from repro.streaming.timeline import EventTimeline, TimelineEvent
from repro.streaming.window import (
    BurstDetector,
    WindowAggregator,
    WindowReport,
    validate_window_metrics,
    validate_window_metrics_line,
)

__all__ = [
    "DEFAULT_EPOCH_WINDOWS",
    "BurstDetector",
    "EventTimeline",
    "StreamingMonitor",
    "StreamingSpec",
    "TimelineEvent",
    "WindowAggregator",
    "WindowReport",
    "run_monitor",
    "run_window_chunk",
    "validate_window_metrics",
    "validate_window_metrics_line",
]
