"""Extended-Hamming SEC-DED code over memory words (pure Python).

The model is encode-on-write / correct-on-read with the check bits held in
fault-free side storage: every delivered write stores the word *and* its
check bits, every read runs the decoder over the stored pair.  Because the
march comparator's expected word is exactly the last delivered write, the
decoder's error pattern is ``e = expected ^ observed`` -- the data-bit
error alone -- which makes the whole layer a pure function of the
pre-correction mismatch.  That purity is what keeps the three engine
backends bit-exact: they already agree on every mismatching read, and the
decoder maps identical inputs to identical outputs.

Decode contract (``s`` = Hamming syndrome, ``p`` = overall parity of
``e``), following the standard extended-Hamming rules:

* ``p`` odd, ``s`` names a data bit -> single-bit correction: flip it.  If
  the corrected word now matches the expectation the mismatch is *masked*
  (the tester sees a clean read); otherwise the decoder miscorrected and
  the observed word changes but still fails.
* ``p`` odd, ``s`` names a check/parity bit (zero or a power of two) ->
  the "error" decodes into the check storage; data passes unchanged.
* ``p`` odd, ``s`` names no bit -> uncorrectable (weight >= 3 alias).
* ``p`` even, ``s`` nonzero -> classic double-error detection: flagged
  uncorrectable, data passes unchanged.
* ``p`` even, ``s`` zero -> the error aliases onto a codeword (weight >= 4
  in the full code); the decoder stays silent and the raw mismatch flows
  through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.records import Record
from repro.util.validation import require_positive


@dataclass(frozen=True)
class EccObservation(Record):
    """Decoder outcome for one mismatching read.

    ``word`` is the post-correction data word the comparator should see;
    the flags classify the decode for the observer's counters.
    """

    #: Data word after the decoder ran (equals the raw read unless a
    #: data-bit correction fired).
    word: int
    #: Data bit the decoder flipped, or ``None``.
    corrected_bit: int | None
    #: True when the correction restored the expected word (the mismatch
    #: never reaches the comparator).
    masked: bool
    #: True when the decoder flagged the read uncorrectable (DED or
    #: syndrome alias).
    uncorrectable: bool
    #: True when the decode resolved into the check/parity storage.
    check_corrected: bool


class SecDedCode:
    """Extended-Hamming SEC-DED layout for one data width.

    Data bit ``j`` sits at the ``j``-th non-power-of-two Hamming position;
    its syndrome column is that position's binary expansion.  An overall
    parity bit extends plain Hamming to SEC-DED.  Widths above 64 bits are
    supported -- positions simply keep counting.
    """

    def __init__(self, data_bits: int) -> None:
        require_positive(data_bits, "data_bits")
        self.data_bits = data_bits
        positions: list[int] = []
        position = 0
        while len(positions) < data_bits:
            position += 1
            if position & (position - 1):  # skip the check-bit powers of two
                positions.append(position)
        #: Hamming position (= syndrome column) of each data bit.
        self.positions: tuple[int, ...] = tuple(positions)
        #: Width of the Hamming syndrome in bits.
        self.syndrome_bits = positions[-1].bit_length()
        #: Total check overhead: syndrome bits plus the overall parity bit.
        self.check_bits = self.syndrome_bits + 1
        self._bit_for_position = {p: j for j, p in enumerate(positions)}
        self._check_positions = frozenset(
            1 << k for k in range(self.syndrome_bits)
        )

    def syndrome(self, error: int) -> int:
        """Hamming syndrome of a data-bit error pattern."""
        syndrome = 0
        while error:
            low = error & -error
            syndrome ^= self.positions[low.bit_length() - 1]
            error ^= low
        return syndrome

    def observe(self, expected: int, observed: int) -> EccObservation:
        """Decode one read against the comparator's expected word."""
        error = expected ^ observed
        if error == 0:
            return EccObservation(observed, None, False, False, False)
        syndrome = 0
        parity = 0
        remaining = error
        while remaining:
            low = remaining & -remaining
            syndrome ^= self.positions[low.bit_length() - 1]
            parity ^= 1
            remaining ^= low
        if parity:
            data_bit = self._bit_for_position.get(syndrome)
            if data_bit is not None:
                word = observed ^ (1 << data_bit)
                return EccObservation(
                    word, data_bit, word == expected, False, False
                )
            if syndrome == 0 or syndrome in self._check_positions:
                return EccObservation(observed, None, False, False, True)
            return EccObservation(observed, None, False, True, False)
        return EccObservation(observed, None, False, syndrome != 0, False)


_CODES: dict[int, SecDedCode] = {}


def secded_code(data_bits: int) -> SecDedCode:
    """Shared :class:`SecDedCode` instance for one data width."""
    code = _CODES.get(data_bits)
    if code is None:
        code = _CODES[data_bits] = SecDedCode(data_bits)
    return code
