"""Per-session ECC bookkeeping shared by every engine backend.

Each diagnosis session gets one :class:`EccObserver` per memory.  The
observer funnels every mismatching read through the SEC-DED decoder,
counts corrections / masked mismatches / uncorrectable reads, and records
which (word, bit) cells the decoder silently repaired -- the evidence the
scenario flow needs to attribute escapes to ECC masking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.code import SecDedCode
from repro.memory.geometry import CellRef
from repro.util.records import Record
from repro.util.validation import require

#: ECC schemes the observation layer implements.
ECC_SCHEMES = ("secded",)


@dataclass(frozen=True)
class EccConfig(Record):
    """Selects the on-die ECC scheme applied to word reads."""

    scheme: str = "secded"

    def __post_init__(self) -> None:
        require(
            self.scheme in ECC_SCHEMES,
            f"unknown ECC scheme {self.scheme!r}; expected one of {ECC_SCHEMES}",
        )


@dataclass(frozen=True)
class EccMemorySummary(Record):
    """Decoder statistics for one memory over one session."""

    memory_name: str
    #: Reads where the decoder asserted its corrected flag (data or check).
    corrected_reads: int
    #: Corrections that fully hid a real mismatch from the comparator.
    masked_reads: int
    #: Reads flagged uncorrectable (double-error detection or alias).
    uncorrectable_reads: int
    #: Sorted ``(word, bit, count)`` triples of data-bit corrections.
    corrected_cells: tuple[tuple[int, int, int], ...]

    def corrected_cellrefs(self) -> set[CellRef]:
        """Cells the decoder corrected, as :class:`CellRef` instances."""
        return {CellRef(word, bit) for word, bit, _ in self.corrected_cells}


class EccObserver:
    """Accumulates decoder events for one memory within one session."""

    def __init__(self, memory_name: str, code: SecDedCode) -> None:
        self.memory_name = memory_name
        self.code = code
        self.corrected_reads = 0
        self.masked_reads = 0
        self.uncorrectable_reads = 0
        self._corrected_cells: dict[tuple[int, int], int] = {}

    def observe(self, address: int, expected: int, observed: int) -> int:
        """Decode one read; returns the post-correction word."""
        outcome = self.code.observe(expected, observed)
        self.record(
            address,
            outcome.corrected_bit,
            outcome.masked,
            outcome.uncorrectable,
            outcome.check_corrected,
        )
        return outcome.word

    def record(
        self,
        address: int,
        corrected_bit: int | None,
        masked: bool,
        uncorrectable: bool,
        check_corrected: bool,
    ) -> None:
        """Fold one decoder outcome into the counters.

        The vectorized decoders classify in bulk and call this directly so
        that scalar and lane-plane paths share one accounting.
        """
        if corrected_bit is not None:
            self.corrected_reads += 1
            key = (address, corrected_bit)
            self._corrected_cells[key] = self._corrected_cells.get(key, 0) + 1
            if masked:
                self.masked_reads += 1
        elif check_corrected:
            self.corrected_reads += 1
        elif uncorrectable:
            self.uncorrectable_reads += 1

    def summary(self) -> EccMemorySummary:
        """Freeze the counters into an :class:`EccMemorySummary`."""
        return EccMemorySummary(
            memory_name=self.memory_name,
            corrected_reads=self.corrected_reads,
            masked_reads=self.masked_reads,
            uncorrectable_reads=self.uncorrectable_reads,
            corrected_cells=tuple(
                (word, bit, count)
                for (word, bit), count in sorted(self._corrected_cells.items())
            ),
        )
