"""Lane-plane vectorized SEC-DED decode for the numpy/batched engines.

The fast backends keep memory state as ``uint64`` lane planes, so the
decoder works the same way: each Hamming syndrome bit has a column mask
per lane (the data bits whose position has that syndrome bit set), the
syndrome is assembled from XOR-reduction parities of ``error & mask``,
and a small ``2**m`` lookup maps syndromes back to data bits.  The
classification rules mirror :meth:`repro.ecc.code.SecDedCode.observe`
exactly -- bit-exactness across backends reduces to both paths computing
the same pure function of the error pattern.

Only mismatching reads reach the decoder (``error == 0`` produces no
event), so call sites feed the already-filtered mismatch rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.code import SecDedCode
from repro.engine.packing import lanes_for, np


def _parity(block) -> "np.ndarray":
    """Per-row XOR-reduction parity of ``(n, lanes)`` uint64 planes."""
    folded = block[:, 0].copy()
    for lane in range(1, block.shape[1]):
        folded ^= block[:, lane]
    for shift in (32, 16, 8, 4, 2, 1):
        folded ^= folded >> np.uint64(shift)
    return folded & np.uint64(1)


@dataclass
class VectorDecode:
    """Bulk decode of ``n`` mismatching reads (parallel arrays)."""

    #: Data bit flipped per row, ``-1`` when no data correction fired.
    corrected_bit: "np.ndarray"
    #: Correction restored the expected word; drop the mismatch.
    masked: "np.ndarray"
    #: Decoder flagged the read uncorrectable.
    uncorrectable: "np.ndarray"
    #: Decode resolved into the check/parity storage.
    check_corrected: "np.ndarray"


class VectorSecDed:
    """Vectorized twin of :class:`repro.ecc.code.SecDedCode`."""

    def __init__(self, code: SecDedCode) -> None:
        self.code = code
        self.lanes = lanes_for(code.data_bits)
        bits = code.syndrome_bits
        planes = np.zeros((bits, self.lanes), dtype=np.uint64)
        for data_bit, position in enumerate(code.positions):
            lane, offset = divmod(data_bit, 64)
            for k in range(bits):
                if position >> k & 1:
                    planes[k, lane] |= np.uint64(1) << np.uint64(offset)
        #: ``planes[k]`` masks the data bits whose syndrome column has bit k.
        self.planes = planes
        lookup = np.full(1 << bits, -1, dtype=np.int64)
        for data_bit, position in enumerate(code.positions):
            lookup[position] = data_bit
        #: Syndrome -> data bit (``-1`` when the syndrome names no data bit).
        self.data_bit_for = lookup
        check = np.zeros(1 << bits, dtype=bool)
        check[0] = True  # overall-parity-bit "correction"
        for k in range(bits):
            check[1 << k] = True
        #: Syndromes that decode into check/parity storage.
        self.check_syndrome = check

    def decode(self, error) -> VectorDecode:
        """Classify ``(n, lanes)`` nonzero error patterns in bulk."""
        rows = error.shape[0]
        syndrome = np.zeros(rows, dtype=np.int64)
        for k in range(self.code.syndrome_bits):
            syndrome |= _parity(error & self.planes[k]).astype(np.int64) << k
        overall_odd = _parity(error).astype(bool)
        named = self.data_bit_for[syndrome]
        single = overall_odd & (named >= 0)
        corrected_bit = np.where(single, named, np.int64(-1))
        masked = np.zeros(rows, dtype=bool)
        hits = np.nonzero(single)[0]
        if hits.size:
            bits = named[hits]
            pattern = np.zeros((hits.size, error.shape[1]), dtype=np.uint64)
            pattern[np.arange(hits.size), bits >> 6] = np.uint64(1) << (
                bits & 63
            ).astype(np.uint64)
            masked[hits] = (error[hits] == pattern).all(axis=1)
        in_check = self.check_syndrome[syndrome]
        check_corrected = overall_odd & (named < 0) & in_check
        uncorrectable = (overall_odd & (named < 0) & ~in_check) | (
            ~overall_odd & (syndrome != 0)
        )
        return VectorDecode(corrected_bit, masked, uncorrectable, check_corrected)


class BucketEcc:
    """Lane-plane decoder plus the per-member observers of one bucket.

    The batched tier stacks same-geometry memories, so one
    :class:`VectorSecDed` serves the whole bucket; decode results are
    recorded into the observer of whichever member each mismatching row
    belongs to.
    """

    __slots__ = ("vcode", "observers")

    def __init__(self, bits: int, observers) -> None:
        self.vcode = vector_secded(bits)
        self.observers = observers

    def decode_rows(self, members, addresses, error) -> tuple:
        """Bulk-decode stacked mismatches; see :func:`decode_mismatches`."""
        outcome = self.vcode.decode(error)
        bits = outcome.corrected_bit
        observers = self.observers
        for index in range(len(members)):
            bit = int(bits[index])
            observers[int(members[index])].record(
                int(addresses[index]),
                None if bit < 0 else bit,
                bool(outcome.masked[index]),
                bool(outcome.uncorrectable[index]),
                bool(outcome.check_corrected[index]),
            )
        return ~outcome.masked, bits


def decode_mismatches(observer, addresses, error) -> tuple:
    """Bulk-decode mismatching rows, recording every event.

    ``addresses[i]`` / ``error[i]`` describe one mismatching read of the
    observer's memory.  Every decoder outcome is folded into ``observer``
    (same accounting as the scalar path); returns ``(keep,
    corrected_bit)`` -- a boolean row filter of mismatches that survive
    correction and the per-row flipped data bit (``-1`` when none), from
    which callers rebuild the post-correction word.
    """
    vcode = vector_secded(observer.code.data_bits)
    outcome = vcode.decode(error)
    bits = outcome.corrected_bit
    for index in range(len(addresses)):
        bit = int(bits[index])
        observer.record(
            int(addresses[index]),
            None if bit < 0 else bit,
            bool(outcome.masked[index]),
            bool(outcome.uncorrectable[index]),
            bool(outcome.check_corrected[index]),
        )
    return ~outcome.masked, bits


_VECTOR_CODES: dict[int, VectorSecDed] = {}


def vector_secded(data_bits: int) -> VectorSecDed:
    """Shared :class:`VectorSecDed` instance for one data width."""
    vcode = _VECTOR_CODES.get(data_bits)
    if vcode is None:
        from repro.ecc.code import secded_code

        vcode = _VECTOR_CODES[data_bits] = VectorSecDed(secded_code(data_bits))
    return vcode
