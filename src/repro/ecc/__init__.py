"""On-die ECC observation layer (SEC-DED over word reads).

Modern embedded memories correct single-bit errors *inside* the macro, so
the march comparator only ever sees post-correction data -- exactly the
observation gap Patel's on-die-ECC work describes.  This package models
that layer: :mod:`repro.ecc.code` holds the pure-Python extended-Hamming
SEC-DED decoder, :mod:`repro.ecc.observer` the per-session bookkeeping
(corrected cells, masked mismatches, uncorrectable reads), and
:mod:`repro.ecc.vector` the lane-plane vectorized decoder used by the
numpy/batched engines.
"""

from repro.ecc.code import EccObservation, SecDedCode, secded_code
from repro.ecc.observer import EccConfig, EccMemorySummary, EccObserver

__all__ = [
    "EccConfig",
    "EccMemorySummary",
    "EccObservation",
    "EccObserver",
    "SecDedCode",
    "secded_code",
]
