"""A minimal VCD (Value Change Dump) writer for control-signal traces.

Diagnosis sessions drive a handful of global control signals (``scan_en``,
``NWRTM``, the address trigger, ``bisddone``); dumping them as a VCD file
lets any waveform viewer (GTKWave etc.) display a session.  The writer
supports 1-bit signals only -- exactly what the control wires are.
"""

from __future__ import annotations

from repro.util.validation import require

#: Printable VCD identifier characters (enough for our few signals).
_IDENT_CHARS = "!\"#$%&'()*+,-./"


class VcdWriter:
    """Collects 1-bit signal changes and renders a VCD document."""

    def __init__(self, timescale: str = "1ns") -> None:
        self.timescale = timescale
        self._signals: dict[str, str] = {}  # name -> identifier
        self._changes: list[tuple[int, str, int]] = []  # (time, name, value)
        self._last: dict[str, int] = {}

    def add_signal(self, name: str, initial: int = 0) -> None:
        """Register a 1-bit signal before recording changes."""
        require(name not in self._signals, f"signal {name!r} already added")
        require(
            len(self._signals) < len(_IDENT_CHARS),
            "too many signals for the mini writer",
        )
        require(initial in (0, 1), "initial must be 0 or 1")
        self._signals[name] = _IDENT_CHARS[len(self._signals)]
        self._last[name] = initial
        self._changes.append((0, name, initial))

    def change(self, time: int, name: str, value: int) -> None:
        """Record a value change (ignored when the value is unchanged)."""
        require(name in self._signals, f"unknown signal {name!r}")
        require(value in (0, 1), "value must be 0 or 1")
        require(time >= 0, "time must be non-negative")
        if self._last[name] == value:
            return
        self._last[name] = value
        self._changes.append((time, name, value))

    def render(self) -> str:
        """Produce the VCD document."""
        lines = [
            "$date repro diagnosis session $end",
            f"$timescale {self.timescale} $end",
            "$scope module bisd $end",
        ]
        for name, ident in self._signals.items():
            lines.append(f"$var wire 1 {ident} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        by_time: dict[int, list[tuple[str, int]]] = {}
        for time, name, value in self._changes:
            by_time.setdefault(time, []).append((name, value))
        for time in sorted(by_time):
            lines.append(f"#{time}")
            for name, value in by_time[time]:
                lines.append(f"{value}{self._signals[name]}")
        return "\n".join(lines) + "\n"


class TracingMonitor:
    """A protocol-monitor companion that records signals into a VCD.

    Wraps the same event interface as
    :class:`repro.core.protocol.ProtocolMonitor`, so a scheme can drive
    both (or this one alone) to produce a viewable session trace.
    """

    def __init__(self) -> None:
        self.vcd = VcdWriter()
        for signal in ("scan_en", "nwrtm", "write", "capture"):
            self.vcd.add_signal(signal)
        self._time = 0

    def _tick(self) -> int:
        self._time += 1
        return self._time

    def on_scan_en(self, asserted: bool) -> None:
        """``scan_en`` edge (PSC shift window opens/closes)."""
        self.vcd.change(self._tick(), "scan_en", int(asserted))

    def on_nwrtm(self, asserted: bool) -> None:
        """NWRTM precharge-gate edge (an NWRC window)."""
        self.vcd.change(self._tick(), "nwrtm", int(asserted))

    def on_write(self, nwrc: bool) -> None:
        """One write cycle, rendered as a one-cycle strobe."""
        time = self._tick()
        self.vcd.change(time, "write", 1)
        self.vcd.change(time + 1, "write", 0)
        self._time += 1

    def on_capture(self) -> None:
        """One PSC parallel capture, rendered as a one-cycle strobe."""
        time = self._tick()
        self.vcd.change(time, "capture", 1)
        self.vcd.change(time + 1, "capture", 0)
        self._time += 1

    def on_idle_shift(self) -> None:
        """One PSC shift cycle (advances trace time only)."""
        self._tick()

    def on_session_end(self) -> None:
        """End of the diagnosis session."""
        self._tick()

    def render(self) -> str:
        """The VCD document for the recorded session."""
        return self.vcd.render()
