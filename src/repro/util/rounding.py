"""Population-count rounding shared by the fault samplers.

Python's built-in ``round`` uses banker's rounding (ties to even), so two
samplers that both call it on exact ``.5`` products still agree -- until
one of them switches idiom.  Every population sampler therefore shares
this single explicit rule: **round half up** (``2.5 -> 3``), the
convention fault-count expectations are documented and tested against.
Pure Python: the samplers must keep working without the ``[fast]`` numpy
extra.
"""

from __future__ import annotations

import math


def round_half_up(value: float) -> int:
    """Round ``value`` to the nearest integer, ties away from zero-half up.

    >>> round_half_up(2.4)
    2
    >>> round_half_up(2.5)
    3
    >>> round_half_up(3.5)
    4
    >>> round_half_up(2.6)
    3
    """
    return int(math.floor(value + 0.5))
