"""Bit-vector helpers used by the memory, March and serial-interface models.

Conventions
-----------
* A *word* of width ``w`` is a non-negative Python ``int`` with bits numbered
  ``0`` (LSB) to ``w - 1`` (MSB).  Bit ``j`` of a word corresponds to memory
  column / IO pin ``j``.
* Bit *lists* are least-significant-bit first: ``int_to_bits(0b011, 3)``
  yields ``[1, 1, 0]``.  Serial interfaces that shift MSB-first simply walk
  these lists in reverse.
"""

from __future__ import annotations

from repro.util.validation import require, require_positive


def mask(width: int) -> int:
    """Return an all-ones word of ``width`` bits (``width`` may be zero)."""
    require(width >= 0, f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_of(word: int, position: int) -> int:
    """Return bit ``position`` (0 = LSB) of ``word`` as ``0`` or ``1``."""
    require(position >= 0, f"bit position must be non-negative, got {position}")
    return (word >> position) & 1


def int_to_bits(word: int, width: int) -> list[int]:
    """Expand ``word`` into an LSB-first list of ``width`` bits."""
    require(word >= 0, f"word must be non-negative, got {word}")
    require(width >= 0, f"width must be non-negative, got {width}")
    require(word <= mask(width), f"word {word:#x} does not fit in {width} bits")
    return [(word >> i) & 1 for i in range(width)]


def bits_to_int(bits: list[int]) -> int:
    """Pack an LSB-first bit list back into an integer word."""
    word = 0
    for i, bit in enumerate(bits):
        require(bit in (0, 1), f"bit {i} must be 0 or 1, got {bit!r}")
        word |= bit << i
    return word


def complement(word: int, width: int) -> int:
    """Return the bitwise complement of ``word`` within ``width`` bits."""
    require(word <= mask(width), f"word {word:#x} does not fit in {width} bits")
    return word ^ mask(width)


def popcount(word: int) -> int:
    """Number of set bits in ``word``."""
    require(word >= 0, f"word must be non-negative, got {word}")
    return word.bit_count()


def parity(word: int) -> int:
    """Even/odd parity of ``word`` (1 if an odd number of bits are set)."""
    return popcount(word) & 1


def reverse_bits(word: int, width: int) -> int:
    """Mirror the low ``width`` bits of ``word`` (bit 0 swaps with ``width-1``)."""
    require(word <= mask(width), f"word {word:#x} does not fit in {width} bits")
    result = 0
    for i in range(width):
        if (word >> i) & 1:
            result |= 1 << (width - 1 - i)
    return result


def rotate_left(word: int, width: int, amount: int = 1) -> int:
    """Rotate the low ``width`` bits of ``word`` left by ``amount``."""
    require_positive(width, "width")
    require(word <= mask(width), f"word {word:#x} does not fit in {width} bits")
    amount %= width
    return ((word << amount) | (word >> (width - amount))) & mask(width)


def rotate_right(word: int, width: int, amount: int = 1) -> int:
    """Rotate the low ``width`` bits of ``word`` right by ``amount``."""
    require_positive(width, "width")
    amount %= width
    return rotate_left(word, width, width - amount)


def checkerboard(width: int, phase: int = 0) -> int:
    """Return a 0101…/1010… pattern of ``width`` bits.

    ``phase = 0`` sets even bit positions (…0101); ``phase = 1`` sets odd
    positions (…1010).  Adjacent IO bits always carry opposite values, which
    is what makes the pattern sensitive to intra-word bridging defects.
    """
    require(phase in (0, 1), f"phase must be 0 or 1, got {phase}")
    word = 0
    for i in range(phase, width, 2):
        word |= 1 << i
    return word
