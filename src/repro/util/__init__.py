"""Shared low-level utilities: bit manipulation, units, RNG, records.

These helpers are deliberately free of any EDA semantics so that every other
subpackage can depend on them without import cycles.
"""

from repro.util.bitops import (
    bit_of,
    bits_to_int,
    checkerboard,
    complement,
    int_to_bits,
    mask,
    parity,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
)
from repro.util.records import Record, format_table
from repro.util.rng import make_rng
from repro.util.units import (
    MS_PER_S,
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    format_duration_ns,
    mhz_to_period_ns,
    ns_to_ms,
    period_ns_to_mhz,
)
from repro.util.validation import require, require_in_range, require_positive

__all__ = [
    "MS_PER_S",
    "NS_PER_MS",
    "NS_PER_S",
    "NS_PER_US",
    "Record",
    "bit_of",
    "bits_to_int",
    "checkerboard",
    "complement",
    "format_duration_ns",
    "format_table",
    "int_to_bits",
    "make_rng",
    "mask",
    "mhz_to_period_ns",
    "ns_to_ms",
    "parity",
    "period_ns_to_mhz",
    "popcount",
    "require",
    "require_in_range",
    "require_positive",
    "reverse_bits",
    "rotate_left",
    "rotate_right",
]
