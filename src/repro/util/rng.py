"""Seeded random-number-generator helpers.

Every stochastic component (fault populations, sweep sampling) takes either a
seed or an existing generator so that experiments are reproducible run-to-run.

numpy is the ``[fast]`` packaging extra: the deterministic diagnosis
machinery imports and runs without it, so this module degrades gracefully --
importable always, raising a clear error only when a generator is actually
requested.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via tests/test_optional_numpy.py
    import numpy as np
except ImportError:  # pragma: no cover - container always ships numpy
    np = None  # type: ignore[assignment]

#: Whether the optional numpy dependency is importable.  The engine's
#: packing module re-exports this for the vectorized backends.
HAVE_NUMPY = np is not None


def require_numpy(feature: str) -> None:
    """Raise a helpful error when ``feature`` needs the missing numpy."""
    if np is None:
        raise RuntimeError(
            f"{feature} requires numpy; install the [fast] extra "
            "(pip install 'repro-esram-diagnosis[fast]')"
        )


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed or pass one through.

    ``None`` yields OS entropy (non-reproducible); an integer yields a
    deterministic generator; an existing generator is returned unchanged so
    that callers can thread one generator through a whole experiment.
    """
    require_numpy("seeded random generation")
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


_MASK64 = (1 << 64) - 1
#: splitmix64 increment (Steele et al.); also used to mix path components.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(state: int) -> tuple[int, int]:
    """One splitmix64 step: ``(next_state, output)``."""
    state = (state + _SPLITMIX_GAMMA) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, z ^ (z >> 31)


class SplitMix64Stream:
    """Tiny deterministic uniform stream, independent of numpy.

    Per-access fault models (intermittent upsets, soft errors) need one
    private stream per fault object whose draws depend only on how many
    times *that fault's* hooks fired -- never on global state, worker
    layout or numpy availability -- so that the vectorized engine paths,
    which replay fault-hooked words in exact reference order, stay
    bit-identical to the pure-Python reference.  splitmix64 is tiny,
    portable and plenty for per-access Bernoulli draws.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        # One warm-up mix so consecutive seeds do not yield correlated
        # first outputs.
        self._state, _ = _splitmix64(int(seed) & _MASK64)

    def next_u64(self) -> int:
        """Next raw 64-bit output."""
        self._state, output = _splitmix64(self._state)
        return output

    def next_float(self) -> float:
        """Next uniform float in ``[0, 1)`` (53-bit resolution)."""
        return (self.next_u64() >> 11) / float(1 << 53)


def mix_seed(master: int, *path: int) -> int:
    """Pure-Python stable child-seed derivation (no numpy required).

    The splitmix64 analogue of :func:`derive_seed` for components that
    must work without the ``[fast]`` extra (the intermittent fault
    models).  Not interchangeable with :func:`derive_seed` -- both are
    stable, but they derive different values.
    """
    state = int(master) & _MASK64
    for component in path:
        state ^= (int(component) & _MASK64) * _SPLITMIX_GAMMA & _MASK64
        state, output = _splitmix64(state)
        state = output
    _, output = _splitmix64(state)
    return output


def counter_hash(seed: int, counter: int) -> int:
    """The ``counter``-th output of a counter-based splitmix64 stream.

    Unlike :class:`SplitMix64Stream`, whose k-th draw requires the k-1
    draws before it, the counter construction is *stateless*: draw ``k``
    is a pure function of ``(seed, k)``.  Per-access fault models key
    their Bernoulli decisions on this (the decision for access ``k`` of
    fault ``f`` is ``counter_hash(f.seed, k) < p``), which is what lets
    the compiled fault table evaluate whole visit schedules analytically
    instead of replaying access by access.  Identical to
    ``mix_seed(seed, counter)`` -- the engine's vectorized evaluator
    reproduces exactly this arithmetic in uint64 lanes.
    """
    return mix_seed(seed, counter)


def counter_bernoulli(seed: int, counter: int, probability: float) -> bool:
    """Stateless Bernoulli draw ``k`` of the fault stream ``seed``.

    The 53-bit uniform is formed exactly like
    :meth:`SplitMix64Stream.next_float` (top 53 bits over ``2**53``), so
    the comparison is bit-for-bit reproducible by the vectorized table
    evaluator: the numerator is an exactly-representable integer below
    ``2**53`` and the denominator a power of two, making the float
    division exact in IEEE-754 on every path.
    """
    return (counter_hash(seed, counter) >> 11) / float(1 << 53) < probability


def name_seed(name: str) -> int:
    """Stable integer seed component for a memory-instance name.

    Scenario sampling derives per-memory streams from *names* instead of
    bank positions, so relabeling/reordering the memories of an SoC never
    changes which faults each instance receives (a metamorphic invariant
    the scenario test suite checks).
    """
    import zlib

    return zlib.crc32(name.encode("utf-8"))


def derive_seed(master: int, *path: int) -> int:
    """Derive a deterministic child seed from a master seed and an index path.

    Built on ``numpy.random.SeedSequence`` so that children are
    statistically independent and the derivation is stable across processes
    and platforms -- the fleet scheduler uses this to give every campaign in
    a batch its own seed regardless of which worker executes it.

    >>> derive_seed(0, 1) == derive_seed(0, 1)
    True
    >>> derive_seed(0, 1) != derive_seed(0, 2)
    True
    """
    require_numpy("seeded random generation")
    sequence = np.random.SeedSequence(entropy=(int(master),) + tuple(int(p) for p in path))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])
