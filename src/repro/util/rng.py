"""Seeded random-number-generator helpers.

Every stochastic component (fault populations, sweep sampling) takes either a
seed or an existing generator so that experiments are reproducible run-to-run.

numpy is the ``[fast]`` packaging extra: the deterministic diagnosis
machinery imports and runs without it, so this module degrades gracefully --
importable always, raising a clear error only when a generator is actually
requested.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via tests/test_optional_numpy.py
    import numpy as np
except ImportError:  # pragma: no cover - container always ships numpy
    np = None  # type: ignore[assignment]

#: Whether the optional numpy dependency is importable.  The engine's
#: packing module re-exports this for the vectorized backends.
HAVE_NUMPY = np is not None


def require_numpy(feature: str) -> None:
    """Raise a helpful error when ``feature`` needs the missing numpy."""
    if np is None:
        raise RuntimeError(
            f"{feature} requires numpy; install the [fast] extra "
            "(pip install 'repro-esram-diagnosis[fast]')"
        )


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed or pass one through.

    ``None`` yields OS entropy (non-reproducible); an integer yields a
    deterministic generator; an existing generator is returned unchanged so
    that callers can thread one generator through a whole experiment.
    """
    require_numpy("seeded random generation")
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(master: int, *path: int) -> int:
    """Derive a deterministic child seed from a master seed and an index path.

    Built on ``numpy.random.SeedSequence`` so that children are
    statistically independent and the derivation is stable across processes
    and platforms -- the fleet scheduler uses this to give every campaign in
    a batch its own seed regardless of which worker executes it.

    >>> derive_seed(0, 1) == derive_seed(0, 1)
    True
    >>> derive_seed(0, 1) != derive_seed(0, 2)
    True
    """
    require_numpy("seeded random generation")
    sequence = np.random.SeedSequence(entropy=(int(master),) + tuple(int(p) for p in path))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])
