"""Seeded random-number-generator helpers.

Every stochastic component (fault populations, sweep sampling) takes either a
seed or an existing generator so that experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed or pass one through.

    ``None`` yields OS entropy (non-reproducible); an integer yields a
    deterministic generator; an existing generator is returned unchanged so
    that callers can thread one generator through a whole experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
