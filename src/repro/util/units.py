"""Time-unit conversions.

All diagnosis-time bookkeeping in this library is carried in *nanoseconds*
(the paper's equations use ``t`` in ns) and converted for presentation only.
"""

from __future__ import annotations

from repro.util.validation import require_positive

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000
MS_PER_S = 1_000


def ns_to_ms(duration_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return duration_ns / NS_PER_MS


def mhz_to_period_ns(frequency_mhz: float) -> float:
    """Clock period in ns for a frequency in MHz (100 MHz -> 10 ns)."""
    require_positive(frequency_mhz, "frequency_mhz")
    return 1_000.0 / frequency_mhz


def period_ns_to_mhz(period_ns: float) -> float:
    """Clock frequency in MHz for a period in ns (10 ns -> 100 MHz)."""
    require_positive(period_ns, "period_ns")
    return 1_000.0 / period_ns


def format_duration_ns(duration_ns: float) -> str:
    """Render a nanosecond duration with a human-appropriate unit.

    >>> format_duration_ns(1_433_408_000)
    '1.433 s'
    >>> format_duration_ns(9_984_400)
    '9.984 ms'
    >>> format_duration_ns(512)
    '512.000 ns'
    """
    if duration_ns >= NS_PER_S:
        return f"{duration_ns / NS_PER_S:.3f} s"
    if duration_ns >= NS_PER_MS:
        return f"{duration_ns / NS_PER_MS:.3f} ms"
    if duration_ns >= NS_PER_US:
        return f"{duration_ns / NS_PER_US:.3f} us"
    return f"{duration_ns:.3f} ns"
