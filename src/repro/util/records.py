"""Record base class and plain-text table rendering for reports and benches."""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping, Sequence


class Record:
    """Mixin for dataclass records providing dict conversion and stable repr.

    Results that cross module boundaries (diagnosis reports, timing
    breakdowns, coverage rows) are dataclasses inheriting from this mixin so
    that benchmarks and examples can serialize them uniformly.
    """

    def to_dict(self) -> dict[str, Any]:
        """Return a shallow ``dict`` of the dataclass fields."""
        if not dataclasses.is_dataclass(self):
            raise TypeError(f"{type(self).__name__} is not a dataclass")
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def summary(self) -> str:
        """One-line ``key=value`` rendering, useful in logs and examples."""
        pairs = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items())
        return f"{type(self).__name__}({pairs})"


def format_table(
    rows: Iterable[Mapping[str, Any] | Sequence[Any]],
    headers: Sequence[str] | None = None,
) -> str:
    """Render rows as an aligned plain-text table.

    Accepts either mappings (headers default to the first row's keys) or
    sequences (headers required).  Used by benchmarks to print the
    paper-vs-measured rows recorded in EXPERIMENTS.md.
    """
    materialized = list(rows)
    if not materialized:
        return "(empty table)"
    first = materialized[0]
    if isinstance(first, Mapping):
        if headers is None:
            headers = list(first.keys())
        cells = [[str(row.get(h, "")) for h in headers] for row in materialized]
    else:
        if headers is None:
            raise ValueError("headers are required when rows are sequences")
        cells = [[str(v) for v in row] for row in materialized]

    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    lines = [render(list(headers)), separator]
    lines.extend(render(row) for row in cells)
    return "\n".join(lines)
