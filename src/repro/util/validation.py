"""Argument-validation helpers shared across the library.

Invalid configuration should fail loudly at construction time, not deep in a
simulation loop, so constructors validate eagerly with these helpers.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: Any, name: str) -> None:
    """Raise unless ``value`` is a strictly positive number."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_in_range(value: Any, low: Any, high: Any, name: str) -> None:
    """Raise unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
