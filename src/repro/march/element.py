"""March elements: an address order plus a sequence of operations."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.march.ops import Operation
from repro.util.validation import require


class AddressOrder(enum.Enum):
    """Address sweep direction of a March element."""

    UP = "up"
    DOWN = "down"
    ANY = "any"  # either direction is permitted; we sweep up

    def addresses(self, words: int) -> range:
        """The address sequence over a memory of ``words`` words."""
        if self is AddressOrder.DOWN:
            return range(words - 1, -1, -1)
        return range(words)

    def symbol(self) -> str:
        """Classical arrow notation."""
        if self is AddressOrder.UP:
            return "up"
        if self is AddressOrder.DOWN:
            return "down"
        return "any"


@dataclass(frozen=True)
class MarchElement:
    """One March element, e.g. ``up(r0, w1)``."""

    order: AddressOrder
    operations: tuple[Operation, ...]

    def __post_init__(self) -> None:
        require(len(self.operations) > 0, "a March element needs operations")

    @property
    def op_count(self) -> int:
        """Operations applied per address."""
        return len(self.operations)

    @property
    def read_count(self) -> int:
        """Reads applied per address."""
        return sum(1 for op in self.operations if op.is_read)

    @property
    def write_count(self) -> int:
        """Writes (normal + NWRC) applied per address."""
        return sum(1 for op in self.operations if op.is_write)

    @property
    def writes_anything(self) -> bool:
        """Whether the element needs a pattern in the SPC (i.e. writes)."""
        return self.write_count > 0

    def final_data(self) -> int | None:
        """Logical data left in every visited cell, or None for read-only."""
        for op in reversed(self.operations):
            if op.is_write:
                return op.data
        return None

    def notation(self) -> str:
        """Classical notation, e.g. ``up(r0,w1)``."""
        ops = ",".join(op.notation() for op in self.operations)
        return f"{self.order.symbol()}({ops})"

    def __str__(self) -> str:
        return self.notation()
