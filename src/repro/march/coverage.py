"""Exhaustive single-fault coverage evaluation (Sec. 4.1 substrate).

For every fault class we instantiate representative single faults at
several positions, run a *runner* (a raw March algorithm or a complete
diagnosis scheme) against a fresh memory containing exactly that fault, and
score two outcomes:

* **detected** -- the runner reported at least one failing cell;
* **localized** -- at least one of the fault's victim cells was reported
  (the paper's diagnosis goal: knowing *which* cell to repair).

The suite includes the background-sensitive classes (intra-word state
coupling, column-decoder faults) that separate March CW from March C-, and
the time-dependent classes (DRFs, weak cells) that separate NWRTM-equipped
schemes from everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.faults.address_fault import (
    AddressMultiFault,
    AddressOpenFault,
    AddressRemapFault,
    ColumnBridgeFault,
    ColumnSwapFault,
)
from repro.faults.base import Fault
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.faults.weak_cell import WeakCellDefect
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import Record

#: A runner executes a diagnosis against one memory and reports the cells it
#: identified as faulty.
Runner = Callable[[SRAM], set[CellRef]]

#: A factory builds one fresh fault instance (faults carry state, so each
#: trial needs its own instance).
FaultFactory = Callable[[], Fault]


@dataclass
class CoverageRow(Record):
    """Detection/localization scores for one fault class."""

    label: str
    instances: int
    detected: int
    localized: int

    @property
    def detection_rate(self) -> float:
        """Fraction of instances that produced any failure."""
        return self.detected / self.instances if self.instances else 0.0

    @property
    def localization_rate(self) -> float:
        """Fraction of instances whose victim cells were identified."""
        return self.localized / self.instances if self.instances else 0.0


def _sample_cells(geometry: MemoryGeometry) -> list[CellRef]:
    """Deterministic probe cells: corners plus interior points."""
    last_word = geometry.words - 1
    last_bit = geometry.bits - 1
    candidates = [
        CellRef(0, 0),
        CellRef(0, last_bit),
        CellRef(last_word, 0),
        CellRef(last_word, last_bit),
        CellRef(geometry.words // 2, geometry.bits // 2),
    ]
    unique: list[CellRef] = []
    for cell in candidates:
        if cell not in unique:
            unique.append(cell)
    return unique


def _inter_word_aggressor(geometry: MemoryGeometry, victim: CellRef) -> CellRef:
    """A neighbouring-word aggressor for inter-word coupling faults."""
    if victim.word + 1 < geometry.words:
        return CellRef(victim.word + 1, victim.bit)
    return CellRef(victim.word - 1, victim.bit)


def _intra_word_aggressor(geometry: MemoryGeometry, victim: CellRef) -> CellRef:
    """A same-word adjacent-bit aggressor for intra-word coupling faults."""
    if victim.bit + 1 < geometry.bits:
        return CellRef(victim.word, victim.bit + 1)
    return CellRef(victim.word, victim.bit - 1)


def standard_fault_suite(
    geometry: MemoryGeometry,
) -> list[tuple[str, list[FaultFactory]]]:
    """Representative single-fault instances for every class in the taxonomy."""
    cells = _sample_cells(geometry)
    suite: list[tuple[str, list[FaultFactory]]] = []

    suite.append(("SAF0", [lambda c=c: StuckAtFault(c, 0) for c in cells]))
    suite.append(("SAF1", [lambda c=c: StuckAtFault(c, 1) for c in cells]))
    suite.append(("TF-up", [lambda c=c: TransitionFault(c, rising=True) for c in cells]))
    suite.append(
        ("TF-down", [lambda c=c: TransitionFault(c, rising=False) for c in cells])
    )

    def cfin(victim: CellRef, rising: bool) -> Fault:
        return InversionCouplingFault(
            _inter_word_aggressor(geometry, victim), victim, trigger_rising=rising
        )

    suite.append(
        (
            "CFin (inter-word)",
            [lambda c=c, r=r: cfin(c, r) for c in cells for r in (True, False)],
        )
    )

    def cfid(victim: CellRef, rising: bool, forced: int) -> Fault:
        return IdempotentCouplingFault(
            _inter_word_aggressor(geometry, victim),
            victim,
            trigger_rising=rising,
            forced_value=forced,
        )

    suite.append(
        (
            "CFid (inter-word)",
            [
                lambda c=c, r=r, f=f: cfid(c, r, f)
                for c in cells
                for r, f in ((True, 0), (False, 1))
            ],
        )
    )

    def cfst(victim: CellRef) -> Fault:
        return StateCouplingFault(
            _inter_word_aggressor(geometry, victim),
            victim,
            aggressor_state=1,
            forced_value=0,
        )

    suite.append(("CFst (inter-word)", [lambda c=c: cfst(c) for c in cells]))

    def cfst_intra_hold(victim: CellRef) -> Fault:
        # A strong intra-word bridge that also holds the victim during
        # writes; the held value survives into a complementary read, so
        # March C- already detects it.
        return StateCouplingFault(
            _intra_word_aggressor(geometry, victim),
            victim,
            aggressor_state=1,
            forced_value=1,
            affects_write=True,
        )

    suite.append(
        ("CFst (intra-word, write-hold)", [lambda c=c: cfst_intra_hold(c) for c in cells])
    )

    def cfst_intra_read(victim: CellRef) -> Fault:
        # Read-disturb bridge with forced value equal to the aggressor
        # state: under any *solid* background aggressor and victim always
        # agree, so the fault is silent -- only the stripe backgrounds of
        # March CW expose it.
        return StateCouplingFault(
            _intra_word_aggressor(geometry, victim),
            victim,
            aggressor_state=1,
            forced_value=1,
            affects_write=False,
        )

    suite.append(
        (
            "CFst (intra-word, bg-sensitive)",
            [lambda c=c: cfst_intra_read(c) for c in cells],
        )
    )

    bits = geometry.bits
    words = geometry.words
    suite.append(
        (
            "AF type-A (open address)",
            [
                lambda a=a: AddressOpenFault(a, bits)
                for a in sorted({0, words // 2, words - 1})
            ],
        )
    )
    suite.append(
        (
            "AF type-B/D (remapped address)",
            [
                lambda a=a: AddressRemapFault(a, (a + 1) % words, bits)
                for a in sorted({0, words // 2, words - 1})
            ],
        )
    )
    suite.append(
        (
            "AF type-C/D (multi-access)",
            [
                lambda a=a: AddressMultiFault(a, (a + 1) % words, bits)
                for a in sorted({0, words // 2, words - 1})
            ],
        )
    )

    if bits >= 2:
        pairs = sorted({(0, 1), (bits // 2, bits // 2 + 1 if bits // 2 + 1 < bits else 0), (bits - 2, bits - 1)})
        suite.append(
            (
                "CDF (column swap, bg-sensitive)",
                [lambda p=p: ColumnSwapFault(p[0], p[1], words) for p in pairs if p[0] != p[1]],
            )
        )
        suite.append(
            (
                "CDF (column bridge, bg-sensitive)",
                [lambda p=p: ColumnBridgeFault(p[0], p[1], words) for p in pairs if p[0] != p[1]],
            )
        )

    suite.append(
        ("DRF0 (cannot hold 0)", [lambda c=c: DataRetentionFault(c, 0) for c in cells])
    )
    suite.append(
        ("DRF1 (cannot hold 1)", [lambda c=c: DataRetentionFault(c, 1) for c in cells])
    )
    suite.append(
        (
            "Weak cell (reliability-only)",
            [lambda c=c, v=v: WeakCellDefect(c, v) for c in cells for v in (0, 1)],
        )
    )
    return suite


def evaluate_coverage(
    runner: Runner,
    geometry: MemoryGeometry,
    suite: Iterable[tuple[str, list[FaultFactory]]] | None = None,
    period_ns: float = 10.0,
    has_idle_mode: bool = True,
) -> list[CoverageRow]:
    """Score ``runner`` against every fault class in ``suite``.

    Each instance runs in a brand-new memory so trials are independent.
    """
    if suite is None:
        suite = standard_fault_suite(geometry)
    rows: list[CoverageRow] = []
    for label, factories in suite:
        detected = 0
        localized = 0
        for factory in factories:
            memory = SRAM(geometry, period_ns=period_ns, has_idle_mode=has_idle_mode)
            fault = factory()
            fault.attach(memory)
            reported = runner(memory)
            if reported:
                detected += 1
                if reported & set(fault.victims):
                    localized += 1
        rows.append(CoverageRow(label, len(factories), detected, localized))
    return rows


def algorithm_runner(algorithm_factory: Callable[[int], object]) -> Runner:
    """Build a runner that executes a raw March algorithm via the simulator.

    ``algorithm_factory`` maps a word width to a :class:`MarchAlgorithm`
    (e.g. ``march_cw``); the runner reports the simulator's detected cells.
    """
    from repro.march.simulator import MarchSimulator

    simulator = MarchSimulator()

    def run(memory: SRAM) -> set[CellRef]:
        algorithm = algorithm_factory(memory.bits)
        return simulator.run(memory, algorithm).detected_cells()

    return run
