"""March operations.

An operation carries a *logical* data value (0 or 1) that is expanded
against the element's data background when applied: logical 1 means "the
background word", logical 0 means "its complement".  Under the solid
background this reduces to the classical ``w0/w1/r0/r1`` notation; under a
checkerboard background ``w1`` writes ``0101...`` and ``w0`` writes
``1010...``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.bitops import complement
from repro.util.validation import require


class OpKind(enum.Enum):
    """Kinds of March operations."""

    READ = "r"
    WRITE = "w"
    NWRC_WRITE = "Nw"


@dataclass(frozen=True)
class Operation:
    """One March operation: a read, write, or NWRC write of logical data."""

    kind: OpKind
    data: int

    def __post_init__(self) -> None:
        require(self.data in (0, 1), f"data must be 0 or 1, got {self.data!r}")

    @property
    def is_read(self) -> bool:
        """Whether the operation observes the memory."""
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        """Whether the operation modifies the memory (normal or NWRC)."""
        return self.kind in (OpKind.WRITE, OpKind.NWRC_WRITE)

    @property
    def is_nwrc(self) -> bool:
        """Whether this is a No-Write-Recovery cycle."""
        return self.kind is OpKind.NWRC_WRITE

    def word_for(self, background: int, bits: int) -> int:
        """Expand the logical data against ``background``.

        Logical 1 -> the background word; logical 0 -> its complement.
        """
        if self.data == 1:
            return background
        return complement(background, bits)

    def notation(self) -> str:
        """Classical notation, e.g. ``r0``, ``w1``, ``Nw1``."""
        return f"{self.kind.value}{self.data}"

    def __str__(self) -> str:
        return self.notation()


def r0() -> Operation:
    """Read expecting logical 0."""
    return Operation(OpKind.READ, 0)


def r1() -> Operation:
    """Read expecting logical 1."""
    return Operation(OpKind.READ, 1)


def w0() -> Operation:
    """Write logical 0."""
    return Operation(OpKind.WRITE, 0)


def w1() -> Operation:
    """Write logical 1."""
    return Operation(OpKind.WRITE, 1)


def nw0() -> Operation:
    """No-Write-Recovery write of logical 0 (NWRTM)."""
    return Operation(OpKind.NWRC_WRITE, 0)


def nw1() -> Operation:
    """No-Write-Recovery write of logical 1 (NWRTM)."""
    return Operation(OpKind.NWRC_WRITE, 1)
