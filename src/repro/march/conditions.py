"""Static March-condition analysis (van de Goor's classical criteria).

A March algorithm's coverage of the basic fault classes can be decided
*statically* from its element structure, without simulation:

* **SAF**: every cell is read in state 0 and in state 1 at some point;
* **TF up**: some up-transition write is followed by a read of 1 before
  any write of 0 intervenes (and symmetrically for **TF down**);
* **AF**: the algorithm contains an ascending element of the form
  ``up(rx, ..., wx̄)`` and a descending element ``down(rx̄, ..., wx)``
  (the classical pair condition).

The analyzer walks the element list tracking the array's uniform logical
state (March data are uniform per element), and the test suite
cross-validates every verdict against the dynamic fault simulator over the
whole algorithm library -- static analysis and simulation must agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.march.algorithm import MarchAlgorithm
from repro.march.element import AddressOrder
from repro.util.records import Record


@dataclass(frozen=True)
class MarchProperties(Record):
    """Statically derived coverage verdicts for one algorithm."""

    algorithm: str
    reads_zero: bool
    reads_one: bool
    detects_saf: bool
    detects_tf_up: bool
    detects_tf_down: bool
    detects_af: bool


def analyze(
    algorithm: MarchAlgorithm, initial_state: int | None = 0
) -> MarchProperties:
    """Evaluate the classical conditions over ``algorithm``'s structure.

    The walk tracks the logical data value each cell holds between
    operations.  ``initial_state`` selects the power-on assumption:
    ``0`` matches the behavioural simulator (cells initialize cleared),
    which keeps static and dynamic verdicts comparable; ``None`` is the
    hardware-conservative unknown state, under which the first element
    earns no transition credit (the reason real Marches begin with an
    initialization write).
    """
    state: int | None = initial_state  # uniform logical value, None = unknown
    reads = {0: False, 1: False}
    pending_transition: dict[int, bool] = {0: False, 1: False}  # by target value
    tf_detected = {0: False, 1: False}
    af_up = False  # up(rx, ..., w x̄)
    af_down = False  # down(r x̄, ..., w x) matching the up element's x

    up_first_read: set[int] = set()  # x values of up(rx,...,wx̄) elements

    for step in algorithm.march_steps:
        element = step.element
        ops = element.operations
        first = ops[0]

        # ---- AF pair condition bookkeeping (element-level shapes) ----
        if first.is_read:
            x = first.data
            writes_complement = any(op.is_write and op.data == 1 - x for op in ops)
            if element.order is AddressOrder.UP and writes_complement:
                up_first_read.add(x)
            if element.order is AddressOrder.DOWN and writes_complement:
                # down(r x̄, ..., w x) pairs with up(r x, ..., w x̄).
                if (1 - x) in up_first_read:
                    af_down = True
        # ---- per-operation state walk --------------------------------
        for op in ops:
            if op.is_read:
                if state is not None:
                    reads[state] = True
                    if pending_transition[state]:
                        tf_detected[state] = True
                        pending_transition[state] = False
            else:
                target = op.data
                if state is not None and state != target:
                    # a transition write; detection requires a later read
                    # of `target` with no intervening overwrite.
                    pending_transition[target] = True
                    pending_transition[1 - target] = False
                state = target

    af_up = bool(up_first_read)
    return MarchProperties(
        algorithm=algorithm.name,
        reads_zero=reads[0],
        reads_one=reads[1],
        detects_saf=reads[0] and reads[1],
        detects_tf_up=tf_detected[1],
        detects_tf_down=tf_detected[0],
        detects_af=af_up and af_down,
    )
