"""Library of March algorithms.

All generators bind an algorithm to a concrete word width ``bits`` so that
multi-background Marches carry concrete background words.

The NWRTM-merged variants follow the reconstruction in DESIGN.md.  An NWRC
behaves exactly like a normal write on every fault class *except* that DRF
and weak cells fail to flip under it, so replacing a normal write with an
NWRC write can only gain coverage.  We therefore merge NWRTM by
*replacement*:

``March C-NW = any(w0); up(r0,Nw1); up(r1,w0); down(r0,w1); down(r1,Nw0);
any(r0)``

* a cell that fails ``Nw1`` (open pull-up on the true node, class DRF1)
  still reads 0 at the following ``up(r1, ...)`` element;
* a cell that fails ``Nw0`` (open pull-up on the complement node, class
  DRF0) still reads 1 at the final ``any(r0)``.

Every March C- element is otherwise intact, so logical coverage is exactly
March C-'s, and the merge costs *zero* extra operations.  The paper instead
charges two added NWRC elements -- "(2n + 2c)t" in Eq. (4) -- and the
closed-form model in :mod:`repro.core.timing` reproduces that accounting;
the 0.12 % difference for the case study is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.march.algorithm import MarchAlgorithm, MarchStep, PauseStep
from repro.march.backgrounds import log2_backgrounds, solid_background
from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import nw0, nw1, r0, r1, w0, w1
from repro.util.units import NS_PER_MS

#: Production retention pause per data polarity for delay-based DRF
#: screening; the paper budgets 2 x 100 ms = 200 ms total [3].
RETENTION_PAUSE_NS = 100.0 * NS_PER_MS


def _step(order: AddressOrder, ops, background: int, label: str) -> MarchStep:
    return MarchStep(MarchElement(order, tuple(ops)), background, label)


def mats_plus(bits: int) -> MarchAlgorithm:
    """MATS+ (5n): the minimal March detecting all SAFs and AFs."""
    bg = solid_background(bits)
    steps = [
        _step(AddressOrder.ANY, [w0()], bg, "M0"),
        _step(AddressOrder.UP, [r0(), w1()], bg, "M1"),
        _step(AddressOrder.DOWN, [r1(), w0()], bg, "M2"),
    ]
    return MarchAlgorithm("MATS+", bits, steps)


def _march_c_minus_steps(bits: int, background: int, prefix: str = "M"):
    """The six March C- elements under one background."""
    return [
        _step(AddressOrder.ANY, [w0()], background, f"{prefix}0"),
        _step(AddressOrder.UP, [r0(), w1()], background, f"{prefix}1"),
        _step(AddressOrder.UP, [r1(), w0()], background, f"{prefix}2"),
        _step(AddressOrder.DOWN, [r0(), w1()], background, f"{prefix}3"),
        _step(AddressOrder.DOWN, [r1(), w0()], background, f"{prefix}4"),
        _step(AddressOrder.ANY, [r0()], background, f"{prefix}5"),
    ]


def march_c_minus(bits: int) -> MarchAlgorithm:
    """March C- (10n) [12]: SAFs, TFs, AFs and inter-word CFs."""
    return MarchAlgorithm(
        "March C-", bits, _march_c_minus_steps(bits, solid_background(bits))
    )


def _cw_extension_steps(bits: int):
    """The March CW per-background extension: any(w1); any(r1,w0); any(r0,w1).

    Per extra background this costs 3n writes, 2n reads and 3 background
    deliveries -- the ``(3n + 3c + 2n(c+1)) * ceil(log2 c)`` term of Eq. (2).
    """
    steps = []
    for index, background in enumerate(log2_backgrounds(bits)):
        prefix = f"B{index + 1}"
        steps.extend(
            [
                _step(AddressOrder.ANY, [w1()], background, f"{prefix}a"),
                _step(AddressOrder.ANY, [r1(), w0()], background, f"{prefix}b"),
                _step(AddressOrder.ANY, [r0(), w1()], background, f"{prefix}c"),
            ]
        )
    return steps


def march_cw(bits: int) -> MarchAlgorithm:
    """March CW [13]: March C- plus log2-c column-stripe backgrounds.

    The extension exposes intra-word coupling and column-decoder faults
    that solid backgrounds cannot see.

    Coverage note (a reproduction finding, see DESIGN.md): the paper's own
    Eq. (2) budget -- 3 writes + 2 reads per address per extra background --
    leaves each set's final write unverified, so one polarity of intra-word
    idempotent coupling between a bit pair that differs in only one
    background escapes.  :func:`march_cw_full` closes that gap by running
    the full March C- per background at ~2x extension cost.
    """
    steps = _march_c_minus_steps(bits, solid_background(bits))
    steps.extend(_cw_extension_steps(bits))
    return MarchAlgorithm("March CW", bits, steps)


def march_cw_full(bits: int) -> MarchAlgorithm:
    """March CW with a *full* March C- per extension background.

    The ablation counterpart to :func:`march_cw`: every write is read back
    in every background, closing the intra-word CFid polarity gap of the
    reduced extension set, at ``10n + n(c+1) ...`` per background instead
    of Eq. (2)'s ``3n + 3c + 2n(c+1)``.
    """
    steps = _march_c_minus_steps(bits, solid_background(bits))
    for index, background in enumerate(log2_backgrounds(bits)):
        steps.extend(
            _march_c_minus_steps(bits, background, prefix=f"F{index + 1}-M")
        )
    return MarchAlgorithm("March CW (full backgrounds)", bits, steps)


def _march_c_nw_steps(bits: int, background: int):
    """March C- merged with NWRTM by replacement (see module docstring)."""
    return [
        _step(AddressOrder.ANY, [w0()], background, "M0"),
        _step(AddressOrder.UP, [r0(), nw1()], background, "M1"),
        _step(AddressOrder.UP, [r1(), w0()], background, "M2"),
        _step(AddressOrder.DOWN, [r0(), w1()], background, "M3"),
        _step(AddressOrder.DOWN, [r1(), nw0()], background, "M4"),
        _step(AddressOrder.ANY, [r0()], background, "M5"),
    ]


def march_c_nw(bits: int) -> MarchAlgorithm:
    """March C- with NWRTM merged (10n, zero pause time)."""
    return MarchAlgorithm(
        "March C-NW", bits, _march_c_nw_steps(bits, solid_background(bits))
    )


def march_cw_nw(bits: int) -> MarchAlgorithm:
    """March CW with NWRTM merged: the algorithm the proposed scheme runs.

    Solid-background March C-NW followed by the unchanged March CW
    extension backgrounds.
    """
    steps = _march_c_nw_steps(bits, solid_background(bits))
    steps.extend(_cw_extension_steps(bits))
    return MarchAlgorithm("March CW-NW", bits, steps)


def mats_plus_plus(bits: int) -> MarchAlgorithm:
    """MATS++ (6n): MATS+ with a trailing read catching TF-down."""
    bg = solid_background(bits)
    steps = [
        _step(AddressOrder.ANY, [w0()], bg, "M0"),
        _step(AddressOrder.UP, [r0(), w1()], bg, "M1"),
        _step(AddressOrder.DOWN, [r1(), w0(), r0()], bg, "M2"),
    ]
    return MarchAlgorithm("MATS++", bits, steps)


def march_x(bits: int) -> MarchAlgorithm:
    """March X (6n): SAFs, TFs, AFs and inversion coupling."""
    bg = solid_background(bits)
    steps = [
        _step(AddressOrder.ANY, [w0()], bg, "M0"),
        _step(AddressOrder.UP, [r0(), w1()], bg, "M1"),
        _step(AddressOrder.DOWN, [r1(), w0()], bg, "M2"),
        _step(AddressOrder.ANY, [r0()], bg, "M3"),
    ]
    return MarchAlgorithm("March X", bits, steps)


def march_y(bits: int) -> MarchAlgorithm:
    """March Y (8n): March X with read-backs for linked transition faults."""
    bg = solid_background(bits)
    steps = [
        _step(AddressOrder.ANY, [w0()], bg, "M0"),
        _step(AddressOrder.UP, [r0(), w1(), r1()], bg, "M1"),
        _step(AddressOrder.DOWN, [r1(), w0(), r0()], bg, "M2"),
        _step(AddressOrder.ANY, [r0()], bg, "M3"),
    ]
    return MarchAlgorithm("March Y", bits, steps)


def march_ss(bits: int) -> MarchAlgorithm:
    """March SS (22n, Hamdioui et al.): all *simple static* faults.

    The double reads ("r0, r0") catch the deceptive read-destructive fault
    (DRDF) that every single-read March -- including March C-/CW and hence
    the paper's configuration -- lets escape; the non-transition writes
    ("w0" onto 0) catch write-disturb faults in both states.  Provided as
    an extension algorithm for the dynamic-fault experiments.
    """
    bg = solid_background(bits)
    steps = [
        _step(AddressOrder.ANY, [w0()], bg, "M0"),
        _step(AddressOrder.UP, [r0(), r0(), w0(), r0(), w1()], bg, "M1"),
        _step(AddressOrder.UP, [r1(), r1(), w1(), r1(), w0()], bg, "M2"),
        _step(AddressOrder.DOWN, [r0(), r0(), w0(), r0(), w1()], bg, "M3"),
        _step(AddressOrder.DOWN, [r1(), r1(), w1(), r1(), w0()], bg, "M4"),
        _step(AddressOrder.ANY, [r0()], bg, "M5"),
    ]
    return MarchAlgorithm("March SS", bits, steps)


def march_with_retention_pauses(
    bits: int, pause_ns: float = RETENTION_PAUSE_NS
) -> MarchAlgorithm:
    """March C- plus classical delay-based DRF detection (2 x 100 ms).

    After March C- leaves the array at logical 0: pause and re-read (cells
    that cannot hold 0 have decayed), write 1, pause and re-read (cells that
    cannot hold 1 have decayed).  This is the slow path NWRTM replaces.
    """
    bg = solid_background(bits)
    steps = _march_c_minus_steps(bits, bg)
    steps.extend(
        [
            PauseStep(pause_ns, "pause-0"),
            _step(AddressOrder.ANY, [r0()], bg, "D0"),
            _step(AddressOrder.ANY, [w1()], bg, "D1"),
            PauseStep(pause_ns, "pause-1"),
            _step(AddressOrder.ANY, [r1()], bg, "D2"),
        ]
    )
    return MarchAlgorithm("March C- + retention pauses", bits, steps)
