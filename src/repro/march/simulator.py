"""RAMSES-style March fault simulator.

The simulator applies a :class:`MarchAlgorithm` to a (possibly faulty)
:class:`repro.memory.SRAM`, comparing every read against the algorithm's
expected word and recording mismatches as :class:`FailureRecord` entries.
The expected value of a read is defined by the algorithm alone (the "good
machine" needs no second simulation: a fault-free memory returns exactly
the background-expanded data of the preceding writes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.march.algorithm import MarchAlgorithm, MarchStep, PauseStep
from repro.memory.geometry import CellRef
from repro.memory.sram import SRAM
from repro.util.records import Record
from repro.util.validation import require


@dataclass(frozen=True, slots=True)
class FailureRecord(Record):
    """One mismatching read observed during a March run.

    This is the diagnosis information of the paper (Sec. 3.1): failing
    address, applied background, expected vs observed data -- everything the
    BISD controller registers for on-chip repair or off-line analysis.
    Slotted: dense diagnostic campaigns construct hundreds of thousands of
    these, so per-instance dict allocation is measurable.
    """

    memory_name: str
    step_index: int
    step_label: str
    op_index: int
    operation: str
    address: int
    background: int
    expected: int
    observed: int

    @property
    def syndrome(self) -> int:
        """Bit mask of mismatching IO positions."""
        return self.expected ^ self.observed

    def failing_bits(self) -> list[int]:
        """IO bit positions that mismatched."""
        syndrome = self.syndrome
        return [i for i in range(syndrome.bit_length()) if (syndrome >> i) & 1]

    def failing_cells(self) -> list[CellRef]:
        """Cells implicated by this failure (address x failing bits)."""
        return [CellRef(self.address, bit) for bit in self.failing_bits()]


@dataclass
class MarchResult(Record):
    """Outcome of one March run against one memory."""

    algorithm_name: str
    memory_name: str
    failures: list[FailureRecord] = field(default_factory=list)
    cycles: int = 0
    elapsed_ns: float = 0.0

    @property
    def passed(self) -> bool:
        """True when no read mismatched."""
        return not self.failures

    @property
    def failure_count(self) -> int:
        """Number of mismatching reads."""
        return len(self.failures)

    def detected_cells(self) -> set[CellRef]:
        """Union of all cells implicated by all failures."""
        cells: set[CellRef] = set()
        for failure in self.failures:
            cells.update(failure.failing_cells())
        return cells

    def failing_addresses(self) -> set[int]:
        """Addresses with at least one mismatching read."""
        return {failure.address for failure in self.failures}


class MarchSimulator:
    """Runs March algorithms against behavioural SRAMs.

    ``ecc`` optionally inserts an on-die SEC-DED decode between each word
    read and the comparison (see :mod:`repro.ecc`): the recorded failures
    are then post-correction observations, as a real tester would see
    them.  One observer per (memory, run) is kept in ``ecc_observers``.
    """

    def __init__(self, stop_on_first_failure: bool = False, ecc=None) -> None:
        self.stop_on_first_failure = stop_on_first_failure
        self.ecc = ecc
        #: Observer of the most recent ``run()`` per memory name.
        self.ecc_observers: dict[str, object] = {}

    def run(self, memory: SRAM, algorithm: MarchAlgorithm) -> MarchResult:
        """Apply ``algorithm`` to ``memory`` and collect failures.

        The algorithm must be generated for the memory's word width; the
        width-adaptive delivery of patterns to narrower memories is the
        diagnosis scheme's job (see :mod:`repro.core.scheme`), not the raw
        simulator's.
        """
        require(
            algorithm.bits == memory.bits,
            f"algorithm width {algorithm.bits} != memory width {memory.bits}",
        )
        result = MarchResult(algorithm.name, memory.name)
        observer = None
        if self.ecc is not None:
            from repro.ecc.code import secded_code
            from repro.ecc.observer import EccObserver

            observer = EccObserver(memory.name, secded_code(memory.bits))
            self.ecc_observers[memory.name] = observer
        start_cycles = memory.timebase.cycles
        start_ns = memory.now_ns
        for step_index, step in enumerate(algorithm.steps):
            if isinstance(step, PauseStep):
                memory.pause(step.duration_ns)
                continue
            if self._run_step(memory, step, step_index, result, observer):
                break
        result.cycles = memory.timebase.cycles - start_cycles
        result.elapsed_ns = memory.now_ns - start_ns
        return result

    def _run_step(
        self,
        memory: SRAM,
        step: MarchStep,
        step_index: int,
        result: MarchResult,
        observer=None,
    ) -> bool:
        """Run one element; returns True when the run should stop early."""
        element = step.element
        bits = memory.bits
        for address in element.order.addresses(memory.words):
            for op_index, op in enumerate(element.operations):
                word = op.word_for(step.background, bits)
                if op.is_read:
                    observed = memory.read(address)
                    if observer is not None and observed != word:
                        observed = observer.observe(address, word, observed)
                    if observed != word:
                        result.failures.append(
                            FailureRecord(
                                memory_name=memory.name,
                                step_index=step_index,
                                step_label=step.label or step.element.notation(),
                                op_index=op_index,
                                operation=op.notation(),
                                address=address,
                                background=step.background,
                                expected=word,
                                observed=observed,
                            )
                        )
                        if self.stop_on_first_failure:
                            return True
                elif op.is_nwrc:
                    memory.nwrc_write(address, word)
                else:
                    memory.write(address, word)
        return False
