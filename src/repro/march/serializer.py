"""Generic March serialization for bit-serial interfaces.

The [9, 10] architecture runs ordinary March algorithms *serially*: every
element becomes one full serial sweep in which the old contents stream out
(the element's reads) while the new pattern streams in (the element's
write).  This module converts any :class:`MarchAlgorithm` into such sweeps
and executes them bit-accurately against a memory, with a fault-free twin
supplying expected streams.

Two faithful degradations of serialization are modelled:

* **NWRC degradation** -- serial-interface baselines have no NWRTM gate, so
  No-Write-Recovery writes degrade to normal writes (and DRFs escape);
* **attribution ambiguity** -- a mismatch at stream cycle ``s`` is
  attributed to the cell nearest the output end, which is only correct for
  the extremal defective cell (the masking limit of Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.march.algorithm import MarchAlgorithm, PauseStep
from repro.march.element import AddressOrder
from repro.memory.sram import SRAM
from repro.serial.bidirectional import BidirectionalSerialInterface
from repro.serial.shift_register import ShiftDirection
from repro.util.records import Record
from repro.util.validation import require


@dataclass(frozen=True)
class SerializedSweep(Record):
    """One serial sweep: observe ``expected`` while shifting in ``pattern``."""

    label: str
    pattern: int
    expected: int | None  # None for elements with no read
    ascending: bool
    degraded_nwrc: bool = False


@dataclass(frozen=True)
class SerialMismatch(Record):
    """One mismatching stream bit, with its (naive) cell attribution."""

    sweep_label: str
    address: int
    cycle: int
    attributed_bit: int


@dataclass
class SerialMarchResult(Record):
    """Outcome of a serialized March run."""

    algorithm_name: str
    memory_name: str
    mismatches: list[SerialMismatch] = field(default_factory=list)
    cycles: int = 0
    pause_ns: float = 0.0
    nwrc_degraded: bool = False

    @property
    def passed(self) -> bool:
        """True when every observed stream matched the good machine."""
        return not self.mismatches

    def failing_addresses(self) -> set[int]:
        """Addresses whose streams mismatched."""
        return {m.address for m in self.mismatches}


def serialize_algorithm(algorithm: MarchAlgorithm) -> list[SerializedSweep | PauseStep]:
    """Convert a March algorithm into serial sweeps.

    Each element maps to one read-modify-write sweep: the expected stream
    is the element's first read data (if any) and the injected pattern is
    its final write data (read-only elements re-write what they expect).
    """
    sweeps: list[SerializedSweep | PauseStep] = []
    for step in algorithm.steps:
        if isinstance(step, PauseStep):
            sweeps.append(step)
            continue
        element = step.element
        first_read = next((op for op in element.operations if op.is_read), None)
        expected = (
            first_read.word_for(step.background, algorithm.bits)
            if first_read is not None
            else None
        )
        final = element.final_data()
        degraded = any(op.is_nwrc for op in element.operations)
        if final is not None:
            if final == 1:
                pattern = step.background
            else:
                pattern = step.background ^ ((1 << algorithm.bits) - 1)
        else:
            require(expected is not None, "element with neither read nor write")
            pattern = expected
        sweeps.append(
            SerializedSweep(
                label=step.label or element.notation(),
                pattern=pattern,
                expected=expected,
                ascending=element.order is not AddressOrder.DOWN,
                degraded_nwrc=degraded,
            )
        )
    return sweeps


class SerialMarchRunner:
    """Executes serialized Marches bit-accurately with a good-machine twin."""

    def __init__(
        self,
        memory: SRAM,
        direction: ShiftDirection = ShiftDirection.RIGHT,
    ) -> None:
        self.memory = memory
        self.direction = direction

    def run(self, algorithm: MarchAlgorithm) -> SerialMarchResult:
        """Serialize and execute ``algorithm`` against the memory."""
        require(
            algorithm.bits == self.memory.bits,
            f"algorithm width {algorithm.bits} != memory width {self.memory.bits}",
        )
        twin = SRAM(self.memory.geometry, period_ns=self.memory.timebase.period_ns)
        snapshot = self.memory.dump()
        for address, value in enumerate(snapshot):
            twin.write(address, value)

        interface = BidirectionalSerialInterface(self.memory)
        good = BidirectionalSerialInterface(twin)
        result = SerialMarchResult(algorithm.name, self.memory.name)
        bits = self.memory.bits

        for sweep in serialize_algorithm(algorithm):
            if isinstance(sweep, PauseStep):
                self.memory.pause(sweep.duration_ns)
                twin.pause(sweep.duration_ns)
                result.pause_ns += sweep.duration_ns
                continue
            result.nwrc_degraded = result.nwrc_degraded or sweep.degraded_nwrc
            addresses = (
                range(self.memory.words)
                if sweep.ascending
                else range(self.memory.words - 1, -1, -1)
            )
            for address in addresses:
                observed = interface.fill_word(address, sweep.pattern, self.direction)
                reference = good.fill_word(address, sweep.pattern, self.direction)
                result.cycles += bits
                if sweep.expected is None:
                    continue
                for cycle, (got, want) in enumerate(zip(observed, reference)):
                    if got != want:
                        if self.direction is ShiftDirection.RIGHT:
                            attributed = bits - 1 - cycle
                        else:
                            attributed = cycle
                        result.mismatches.append(
                            SerialMismatch(sweep.label, address, cycle, attributed)
                        )
        return result
