"""March test algorithms and the word-level memory fault simulator.

This subpackage provides the test-algorithm substrate the paper builds on:

* March operations (including the NWRC writes ``Nw0``/``Nw1`` of NWRTM),
* March elements and algorithms (MATS+, March C- [12], March CW [13], and
  the NWRTM-merged variants reconstructed in DESIGN.md),
* multi-background generation (solid, checkerboard, log2-c column stripes),
* a RAMSES-style simulator that runs an algorithm against a faulty
  :class:`repro.memory.SRAM` and records every mismatching read,
* an exhaustive per-fault-class coverage evaluator.
"""

from repro.march.algorithm import MarchAlgorithm, MarchStep, PauseStep
from repro.march.backgrounds import (
    all_backgrounds_cw,
    checkerboard_background,
    log2_backgrounds,
    solid_background,
)
from repro.march.complexity import operation_counts
from repro.march.coverage import CoverageRow, evaluate_coverage
from repro.march.element import AddressOrder, MarchElement
from repro.march.library import (
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_full,
    march_cw_nw,
    march_ss,
    march_with_retention_pauses,
    march_x,
    march_y,
    mats_plus,
    mats_plus_plus,
)
from repro.march.ops import OpKind, Operation
from repro.march.simulator import FailureRecord, MarchResult, MarchSimulator

__all__ = [
    "AddressOrder",
    "CoverageRow",
    "FailureRecord",
    "MarchAlgorithm",
    "MarchElement",
    "MarchResult",
    "MarchSimulator",
    "MarchStep",
    "OpKind",
    "Operation",
    "PauseStep",
    "all_backgrounds_cw",
    "checkerboard_background",
    "evaluate_coverage",
    "log2_backgrounds",
    "march_c_minus",
    "march_c_nw",
    "march_cw",
    "march_cw_full",
    "march_cw_nw",
    "march_ss",
    "march_with_retention_pauses",
    "march_x",
    "march_y",
    "mats_plus",
    "mats_plus_plus",
    "operation_counts",
    "solid_background",
]
