"""Operation-count accounting for March algorithms.

These counts are the raw material of the paper's diagnosis-time equations:
Eq. (2) charges one cycle per (parallel) write, ``c + 1`` cycles per read
(capture plus PSC shift-out) and ``c`` cycles per background delivery.  The
cycle mapping itself lives in :mod:`repro.core.timing`; this module only
counts operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.march.algorithm import MarchAlgorithm
from repro.march.ops import OpKind
from repro.util.records import Record
from repro.util.validation import require_positive


@dataclass(frozen=True)
class OperationCounts(Record):
    """Totals for one algorithm over a memory of ``words`` words."""

    algorithm: str
    words: int
    reads: int
    writes: int
    nwrc_writes: int
    elements: int
    writing_elements: int
    pauses_ns: float

    @property
    def operations(self) -> int:
        """All March operations (reads + writes + NWRC writes)."""
        return self.reads + self.writes + self.nwrc_writes


def operation_counts(algorithm: MarchAlgorithm, words: int) -> OperationCounts:
    """Count reads/writes/NWRC writes of ``algorithm`` over ``words`` words."""
    require_positive(words, "words")
    reads = 0
    writes = 0
    nwrc = 0
    for step in algorithm.march_steps:
        for op in step.element.operations:
            if op.kind is OpKind.READ:
                reads += words
            elif op.kind is OpKind.WRITE:
                writes += words
            else:
                nwrc += words
    return OperationCounts(
        algorithm=algorithm.name,
        words=words,
        reads=reads,
        writes=writes,
        nwrc_writes=nwrc,
        elements=len(algorithm.march_steps),
        writing_elements=algorithm.writing_elements(),
        pauses_ns=algorithm.total_pause_ns,
    )
