"""March algorithms: ordered steps of (element, background) plus pauses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.march.element import MarchElement
from repro.util.units import format_duration_ns
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class MarchStep:
    """One element applied under one concrete data background."""

    element: MarchElement
    background: int
    label: str = ""

    def notation(self) -> str:
        """Element notation annotated with its background."""
        tag = self.label or f"bg={self.background:x}"
        return f"{self.element.notation()}[{tag}]"


@dataclass(frozen=True)
class PauseStep:
    """A retention pause (unclocked wait), used by delay-based DRF testing."""

    duration_ns: float
    label: str = "retention-pause"

    def __post_init__(self) -> None:
        require_positive(self.duration_ns, "duration_ns")

    def notation(self) -> str:
        """Pause rendered with a human-readable duration."""
        return f"pause({format_duration_ns(self.duration_ns)})"


@dataclass
class MarchAlgorithm:
    """A complete March algorithm bound to a concrete word width.

    Algorithms are generated *for* a word width (see
    :mod:`repro.march.library`) because multi-background Marches need
    concrete background words.
    """

    name: str
    bits: int
    steps: list[MarchStep | PauseStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.bits, "bits")
        require(len(self.steps) > 0, f"{self.name}: an algorithm needs steps")

    @property
    def march_steps(self) -> list[MarchStep]:
        """Only the element steps (pauses filtered out)."""
        return [s for s in self.steps if isinstance(s, MarchStep)]

    @property
    def pause_steps(self) -> list[PauseStep]:
        """Only the retention pauses."""
        return [s for s in self.steps if isinstance(s, PauseStep)]

    @property
    def total_pause_ns(self) -> float:
        """Sum of all retention pauses."""
        return sum(p.duration_ns for p in self.pause_steps)

    def plan_fingerprint(self) -> tuple:
        """Structural identity of this algorithm for plan caching.

        Two algorithm instances with equal fingerprints produce identical
        session element plans for any given memory/controller widths (the
        plans depend only on the step structure captured here), so the
        session plan cache (:mod:`repro.engine.session`) can key on the
        fingerprint instead of the instance.  Computed once per instance.
        """
        cached = getattr(self, "_plan_fingerprint", None)
        if cached is None:
            signature: list[tuple] = []
            for step in self.steps:
                if isinstance(step, PauseStep):
                    signature.append(("pause", step.duration_ns, step.label))
                    continue
                signature.append(
                    (
                        "element",
                        step.element.order.value,
                        tuple(
                            (op.kind.value, op.data)
                            for op in step.element.operations
                        ),
                        step.background,
                        step.label,
                    )
                )
            cached = (self.name, self.bits, tuple(signature))
            self._plan_fingerprint = cached
        return cached

    def operations_per_word(self) -> int:
        """Total March operations applied to each address (the "10n" count)."""
        return sum(step.element.op_count for step in self.march_steps)

    def reads_per_word(self) -> int:
        """Read operations applied to each address."""
        return sum(step.element.read_count for step in self.march_steps)

    def writes_per_word(self) -> int:
        """Write operations (normal + NWRC) applied to each address."""
        return sum(step.element.write_count for step in self.march_steps)

    def writing_elements(self) -> int:
        """Number of elements that need a background loaded into the SPC."""
        return sum(1 for step in self.march_steps if step.element.writes_anything)

    def backgrounds_used(self) -> list[int]:
        """Distinct background words in first-use order."""
        seen: list[int] = []
        for step in self.march_steps:
            if step.background not in seen:
                seen.append(step.background)
        return seen

    def notation(self) -> str:
        """Full algorithm in classical notation, one step per line."""
        return "\n".join(step.notation() for step in self.steps)

    def __repr__(self) -> str:
        return (
            f"MarchAlgorithm(name={self.name!r}, bits={self.bits}, "
            f"steps={len(self.steps)}, ops/word={self.operations_per_word()})"
        )
