"""Data-background generation.

March C- uses a single solid background.  March CW [13] adds
``ceil(log2 c)`` *column-stripe* backgrounds: background ``i`` sets bit ``j``
to bit ``i`` of the binary representation of ``j``.  Any two distinct
columns differ in at least one of those backgrounds, which is exactly the
property needed to expose intra-word coupling and column-decoder faults
(two shorted or swapped columns are indistinguishable whenever they carry
equal data).
"""

from __future__ import annotations

import math

from repro.util.bitops import checkerboard, mask
from repro.util.validation import require_positive


def solid_background(bits: int) -> int:
    """The all-ones background (logical 1 = 11...1, logical 0 = 00...0)."""
    require_positive(bits, "bits")
    return mask(bits)


def checkerboard_background(bits: int, phase: int = 1) -> int:
    """The alternating 1010.../0101... background."""
    require_positive(bits, "bits")
    return checkerboard(bits, phase)


def log2_backgrounds(bits: int) -> list[int]:
    """The ``ceil(log2 c)`` column-stripe backgrounds of March CW.

    >>> [f"{b:04b}" for b in log2_backgrounds(4)]
    ['1010', '1100']

    Background ``i`` has bit ``j`` equal to ``(j >> i) & 1``, so columns with
    different indices differ in at least one background.
    """
    require_positive(bits, "bits")
    count = max(1, math.ceil(math.log2(bits))) if bits > 1 else 0
    backgrounds = []
    for i in range(count):
        word = 0
        for j in range(bits):
            if (j >> i) & 1:
                word |= 1 << j
        backgrounds.append(word)
    return backgrounds


def all_backgrounds_cw(bits: int) -> list[int]:
    """Solid background followed by the March CW extension backgrounds."""
    return [solid_background(bits)] + log2_backgrounds(bits)
