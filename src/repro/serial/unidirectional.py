"""The single-directional serial interface of [9, 10].

Every serial cycle on an address is a read-modify-write through the actual
memory cells: the addressed word is read, each bit is rewritten with its
lower neighbour's (possibly faulty) value, bit 0 takes the serial input, and
the old MSB is emitted as the serial output.

Because both the applied data and the observed responses travel *through*
every cell of the word, a single defective cell corrupts everything behind
it in the shift direction -- the serial fault-masking problem that
motivated the bi-directional interface of [7, 8] and, ultimately, the
paper's SPC/PSC replacement.
"""

from __future__ import annotations

from repro.memory.sram import SRAM
from repro.util.bitops import bit_of, mask
from repro.util.validation import require


class UnidirectionalSerialInterface:
    """Right-shift-only serial access to one memory."""

    def __init__(self, memory: SRAM) -> None:
        self.memory = memory
        #: Serial cycles consumed (one per read-modify-write).
        self.cycles = 0

    @property
    def bits(self) -> int:
        """Word width of the underlying memory."""
        return self.memory.bits

    def serial_cycle(self, address: int, serial_in: int) -> int:
        """One right-shift cycle; returns the serial output bit.

        The read and the shifted write both pass through the memory's
        functional access path, so cell faults perturb the stream exactly
        as they would in silicon.
        """
        require(serial_in in (0, 1), f"serial_in must be 0 or 1, got {serial_in!r}")
        word = self.memory.read(address)
        out = bit_of(word, self.bits - 1)
        shifted = ((word << 1) | serial_in) & mask(self.bits)
        self.memory.write(address, shifted)
        self.cycles += 1
        return out

    def fill_word(self, address: int, pattern: int) -> list[int]:
        """Shift ``pattern`` into one word (MSB first); returns the outputs.

        After ``c`` cycles a fault-free word stores exactly ``pattern``.
        """
        outputs = []
        for i in range(self.bits - 1, -1, -1):
            outputs.append(self.serial_cycle(address, bit_of(pattern, i)))
        return outputs

    def fill_all(self, pattern: int, ascending: bool = True) -> list[list[int]]:
        """Serially write ``pattern`` into every word; returns all outputs.

        One full fill costs ``n * c`` serial cycles -- the paper's unit of
        DiagRSMarch complexity (each of the 17k + 9 element passes in
        Eq. (1) is one such sweep).
        """
        addresses = range(self.memory.words) if ascending else range(
            self.memory.words - 1, -1, -1
        )
        return [self.fill_word(address, pattern) for address in addresses]
