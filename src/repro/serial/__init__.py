"""Bit-serial memory access interfaces (the baselines' data path).

The schemes of [9, 10] and [7, 8] thread the test data path *through* the
memory cells: every serial cycle is a read-modify-write in which each cell
passes its (possibly faulty) value to its neighbour.  This is what makes
the interfaces cheap to route -- and what creates the serial fault-masking
and one-fault-per-element-localization limits the paper's SPC/PSC pair
removes.

* :class:`UnidirectionalSerialInterface` -- the [9, 10] scheme (right shift
  only; upstream faults mask downstream cells),
* :class:`BidirectionalSerialInterface` -- the [7, 8] scheme (Fig. 2 of the
  paper; both directions; extremal faults localizable, at most one per
  direction per element),
* :mod:`repro.serial.masking` -- closed-form reachability/masking analysis
  cross-validated against the bit-accurate interfaces.
"""

from repro.serial.bidirectional import BidirectionalSerialInterface
from repro.serial.masking import (
    clean_write_cells_bidirectional,
    clean_write_cells_unidirectional,
    localizable_bits_bidirectional,
    localizable_bit_unidirectional,
)
from repro.serial.shift_register import ShiftDirection, ShiftRegister
from repro.serial.unidirectional import UnidirectionalSerialInterface

__all__ = [
    "BidirectionalSerialInterface",
    "ShiftDirection",
    "ShiftRegister",
    "UnidirectionalSerialInterface",
    "clean_write_cells_bidirectional",
    "clean_write_cells_unidirectional",
    "localizable_bit_unidirectional",
    "localizable_bits_bidirectional",
]
