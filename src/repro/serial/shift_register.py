"""Generic shift-register primitive used by scan paths, SPCs and PSCs."""

from __future__ import annotations

import enum

from repro.util.bitops import bit_of, mask
from repro.util.validation import require, require_positive


class ShiftDirection(enum.Enum):
    """Direction of a serial shift.

    ``RIGHT`` moves data from bit 0 toward bit ``length - 1`` (serial input
    enters at bit 0, serial output leaves from the MSB end); ``LEFT`` is the
    mirror image.
    """

    RIGHT = "right"
    LEFT = "left"


class ShiftRegister:
    """A ``length``-bit register supporting serial shifts and parallel IO."""

    def __init__(self, length: int, initial: int = 0) -> None:
        require_positive(length, "length")
        require(0 <= initial <= mask(length), f"initial {initial:#x} too wide")
        self.length = length
        self._value = initial

    @property
    def value(self) -> int:
        """Parallel view of the register contents (bit 0 = stage 0)."""
        return self._value

    def load(self, word: int) -> None:
        """Parallel load (capture)."""
        require(0 <= word <= mask(self.length), f"word {word:#x} too wide")
        self._value = word

    def shift(self, serial_in: int, direction: ShiftDirection = ShiftDirection.RIGHT) -> int:
        """One shift cycle; returns the bit that falls out the far end."""
        require(serial_in in (0, 1), f"serial_in must be 0 or 1, got {serial_in!r}")
        if direction is ShiftDirection.RIGHT:
            out = bit_of(self._value, self.length - 1)
            self._value = ((self._value << 1) | serial_in) & mask(self.length)
        else:
            out = bit_of(self._value, 0)
            self._value = (self._value >> 1) | (serial_in << (self.length - 1))
        return out

    def shift_word_in(
        self,
        word: int,
        direction: ShiftDirection = ShiftDirection.RIGHT,
        msb_first: bool = True,
    ) -> list[int]:
        """Shift a full ``length``-bit word in; returns the bits shifted out.

        With ``direction=RIGHT`` and ``msb_first=True`` the register ends up
        holding exactly ``word`` (bit i of the word lands in stage i), which
        is the MSB-first delivery convention of the paper's SPC (Sec. 3.2).
        """
        require(0 <= word <= mask(self.length), f"word {word:#x} too wide")
        bit_order = range(self.length - 1, -1, -1) if msb_first else range(self.length)
        return [self.shift(bit_of(word, i), direction) for i in bit_order]

    def shift_word_out(
        self, direction: ShiftDirection = ShiftDirection.RIGHT, fill: int = 0
    ) -> list[int]:
        """Shift the full contents out; returns the emitted bit sequence."""
        return [self.shift(fill, direction) for _ in range(self.length)]

    def __repr__(self) -> str:
        return f"ShiftRegister(length={self.length}, value={self._value:#x})"
