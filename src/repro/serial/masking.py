"""Closed-form masking/reachability analysis for serial interfaces.

For a word whose defective cells sit at bit positions ``faulty_bits``:

* a **right** shift delivers clean data only to bits strictly below the
  lowest defective cell (data entering at bit 0 crosses every cell below
  its destination);
* a **left** shift delivers clean data only to bits strictly above the
  highest defective cell;
* the observation stream of a right shift pinpoints the *highest*
  defective bit (its corrupted value is the first to emerge at the MSB
  end), a left shift pinpoints the *lowest*.

These closed forms are cross-validated against the bit-accurate interfaces
in the test suite; the baseline scheme's "at most two faults localized per
M1 iteration" behaviour (Sec. 2 of the paper) is their direct consequence.
"""

from __future__ import annotations

from typing import Iterable

from repro.serial.shift_register import ShiftDirection
from repro.util.validation import require


def _checked(faulty_bits: Iterable[int], bits: int) -> list[int]:
    positions = sorted(set(faulty_bits))
    for position in positions:
        require(0 <= position < bits, f"faulty bit {position} out of range")
    return positions


def clean_write_cells_unidirectional(faulty_bits: Iterable[int], bits: int) -> set[int]:
    """Cells that receive uncorrupted data from a right-shift-only write."""
    positions = _checked(faulty_bits, bits)
    if not positions:
        return set(range(bits))
    return set(range(positions[0]))


def clean_write_cells_bidirectional(faulty_bits: Iterable[int], bits: int) -> set[int]:
    """Cells that receive uncorrupted data from at least one direction.

    Everything below the lowest fault (right shift) or above the highest
    fault (left shift); cells strictly *between* two defective cells remain
    unreachable until the extremal faults are repaired -- which is why the
    [7, 8] scheme must iterate and repair.
    """
    positions = _checked(faulty_bits, bits)
    if not positions:
        return set(range(bits))
    return set(range(positions[0])) | set(range(positions[-1] + 1, bits))


def localizable_bit_unidirectional(faulty_bits: Iterable[int], bits: int) -> int | None:
    """The single bit a right-shift observation stream can pinpoint."""
    positions = _checked(faulty_bits, bits)
    return positions[-1] if positions else None


def localizable_bits_bidirectional(faulty_bits: Iterable[int], bits: int) -> set[int]:
    """The (at most two) bits the paired shift directions can pinpoint."""
    positions = _checked(faulty_bits, bits)
    if not positions:
        return set()
    return {positions[0], positions[-1]}


def first_mismatch_bit(
    observed: list[int], expected: list[int], direction: ShiftDirection, bits: int
) -> int | None:
    """Map the first mismatching stream cycle back to a cell bit position.

    In a right shift, the value emitted at cycle ``s`` left cell
    ``bits - 1 - s``; in a left shift it left cell ``s``.
    """
    require(len(observed) == len(expected), "stream lengths differ")
    for cycle, (got, want) in enumerate(zip(observed, expected)):
        if got != want:
            if direction is ShiftDirection.RIGHT:
                return bits - 1 - cycle
            return cycle
    return None
