"""The bi-directional serial interface of [7, 8] (Fig. 2 of the paper).

Each memory word can shift either left or right: multiplexers select, per
cell, whether the test data input comes from the left neighbour, the right
neighbour, or the normal data input.  Shifting in both directions gives
every cell (outside the span between the extremal defective cells) a clean
data path, which removes the *detection* masking of the single-directional
interface -- but the serial observation stream still only pinpoints the
first mismatch per direction, so one March element localizes at most one
fault, and an iterate-repair loop (k iterations) is needed to walk the
fault list two at a time.
"""

from __future__ import annotations

from repro.memory.sram import SRAM
from repro.serial.shift_register import ShiftDirection
from repro.util.bitops import bit_of, mask
from repro.util.validation import require


class BidirectionalSerialInterface:
    """Left- or right-shift serial access to one memory."""

    def __init__(self, memory: SRAM) -> None:
        self.memory = memory
        #: Serial cycles consumed (one per read-modify-write).
        self.cycles = 0

    @property
    def bits(self) -> int:
        """Word width of the underlying memory."""
        return self.memory.bits

    def serial_cycle(
        self,
        address: int,
        serial_in: int,
        direction: ShiftDirection = ShiftDirection.RIGHT,
    ) -> int:
        """One shift cycle in either direction; returns the output bit."""
        require(serial_in in (0, 1), f"serial_in must be 0 or 1, got {serial_in!r}")
        word = self.memory.read(address)
        if direction is ShiftDirection.RIGHT:
            out = bit_of(word, self.bits - 1)
            shifted = ((word << 1) | serial_in) & mask(self.bits)
        else:
            out = bit_of(word, 0)
            shifted = (word >> 1) | (serial_in << (self.bits - 1))
        self.memory.write(address, shifted)
        self.cycles += 1
        return out

    def fill_word(
        self,
        address: int,
        pattern: int,
        direction: ShiftDirection = ShiftDirection.RIGHT,
    ) -> list[int]:
        """Shift ``pattern`` into one word; returns the emitted bits.

        Right shifts deliver the pattern MSB-first (data enters at bit 0
        and migrates upward); left shifts deliver it LSB-first.  Either
        way a fault-free word ends up storing exactly ``pattern``.
        """
        if direction is ShiftDirection.RIGHT:
            bit_order = range(self.bits - 1, -1, -1)
        else:
            bit_order = range(self.bits)
        return [
            self.serial_cycle(address, bit_of(pattern, i), direction)
            for i in bit_order
        ]

    def fill_all(
        self,
        pattern: int,
        direction: ShiftDirection = ShiftDirection.RIGHT,
        ascending: bool = True,
    ) -> list[list[int]]:
        """Serially write ``pattern`` into every word (one nc-cycle sweep)."""
        addresses = range(self.memory.words) if ascending else range(
            self.memory.words - 1, -1, -1
        )
        return [self.fill_word(address, pattern, direction) for address in addresses]

    def read_sweep(
        self,
        pattern: int,
        direction: ShiftDirection = ShiftDirection.RIGHT,
        ascending: bool = True,
    ) -> dict[int, list[int]]:
        """Observe every word while refilling it with ``pattern``.

        Returns the per-address output streams.  The caller compares them
        against a good-machine model; the first mismatch in stream order is
        the only trustworthy localization (everything later may have been
        corrupted in flight).
        """
        addresses = range(self.memory.words) if ascending else range(
            self.memory.words - 1, -1, -1
        )
        return {
            address: self.fill_word(address, pattern, direction)
            for address in addresses
        }
