"""Multi-session production flows: test -> repair -> retest -> burn-in.

One scenario *campaign* is a chained sequence of diagnosis sessions on a
single SoC build, mirroring a production test flow:

1. **test** -- the proposed-scheme diagnosis session on the clustered
   fault population (plus the baseline session on an identical twin bank,
   so the measured reduction factor R is reported under clustering);
2. **repair** -- word-spare allocation from the latest session's failures;
3. **retest** -- re-diagnosis; repair/retest rounds repeat until the bank
   comes back clean or ``max_retest_rounds`` is exhausted (*retest
   convergence*);
4. **burn-in** -- an intermittent/soft-error population is layered onto
   the surviving bank (:mod:`repro.faults.intermittent`) and a final
   re-diagnosis hunts latent and transient mechanisms.

Every manufacturing fault that no session of the flow ever localized is
an **escape**; the escape rate, convergence round count and intermittent
detection counters are the scenario-level aggregates the fleet report
accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.scheme import BaselineReport, HuangJoneScheme
from repro.core.campaign import DiagnosisCampaign
from repro.core.redundancy import RedundancyBudget
from repro.core.repair import BisrController, RepairController
from repro.core.report import ProposedReport
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.aggregate import CampaignSummary
from repro.faults.base import Fault
from repro.faults.intermittent import sample_intermittent_population
from repro.faults.population import sample_population
from repro.memory.geometry import CellRef
from repro.memory.sram import SRAM
from repro.scenarios.cluster import assign_rates
from repro.scenarios.spec import ScenarioSpec
from repro.util.records import Record
from repro.util.rng import derive_seed, mix_seed, name_seed
from repro.util.units import format_duration_ns

#: Stream labels separating the per-campaign derived seeds.
_FAULT_STREAM = 0xFA
_BURN_IN_STREAM = 0xB1


@dataclass(frozen=True)
class StageOutcome(Record):
    """One executed stage of a scenario flow."""

    stage: str
    #: Repair/retest round the stage belongs to (0 = initial test).
    round: int
    #: Failing reads of a diagnosis stage (None for repair stages).
    failures: int | None = None
    #: Session time of a diagnosis stage.
    time_ns: float | None = None
    #: Words remapped by a word-spare repair stage.
    repaired_words: int | None = None
    #: Faults detached by a repair stage.
    detached_faults: int | None = None
    #: Spare rows committed by a BISR repair stage.
    repaired_rows: int | None = None
    #: Spare columns committed by a BISR repair stage.
    repaired_cols: int | None = None


@dataclass
class ScenarioCampaignReport(Record):
    """Everything one scenario campaign produced."""

    scenario: str
    soc_name: str
    index: int
    seed: int
    #: Defect rate the cluster field assigned to each memory.
    assigned_rates: dict[str, float] = field(default_factory=dict)
    injected_faults: int = 0
    stages: list[StageOutcome] = field(default_factory=list)
    proposed: ProposedReport | None = None
    baseline: BaselineReport | None = None
    retest_rounds: int = 0
    retest_converged: bool = False
    escaped_faults: int = 0
    intermittent_faults: int = 0
    intermittent_detected: int = 0
    localization_rate: float = 0.0
    #: Whether the flow's sessions ran behind an on-die ECC layer.
    ecc_enabled: bool = False
    #: Decoder corrections / masked mismatches / uncorrectable reads
    #: summed over every session of the flow.
    ecc_corrected_reads: int = 0
    ecc_masked_reads: int = 0
    ecc_uncorrectable_reads: int = 0
    #: Escaped manufacturing faults whose victims the decoder corrected
    #: somewhere in the flow -- escapes attributable to ECC masking.
    ecc_masked_escaped: int = 0
    #: BISR repair yield (covered / repair-needing memories); ``None``
    #: for word-spare flows or when no memory needed repair.
    repair_yield: float | None = None
    #: Total spare rows/columns the BISR allocator committed.
    repaired_rows: int = 0
    repaired_cols: int = 0

    @property
    def ecc_masked_escape_rate(self) -> float | None:
        """Fraction of injected faults that escaped *because of* ECC.

        ``None`` without an ECC layer (the distinction raw flows cannot
        express); 0.0 when ECC ran but hid nothing that escaped.
        """
        if not self.ecc_enabled:
            return None
        if self.injected_faults == 0:
            return 0.0
        return self.ecc_masked_escaped / self.injected_faults

    @property
    def reduction_factor(self) -> float | None:
        """Measured baseline/proposed time ratio under clustering."""
        if self.baseline is None or self.proposed is None:
            return None
        return self.baseline.time_ns / self.proposed.time_ns

    @property
    def escape_rate(self) -> float:
        """Manufacturing faults the whole flow failed to localize."""
        if self.injected_faults == 0:
            return 0.0
        return self.escaped_faults / self.injected_faults

    @property
    def mean_assigned_rate(self) -> float:
        """Mean clustered defect rate over the bank."""
        if not self.assigned_rates:
            return 0.0
        return sum(self.assigned_rates.values()) / len(self.assigned_rates)

    def summary_lines(self) -> list[str]:
        """Human-readable flow summary."""
        lines = [
            f"scenario {self.scenario!r} campaign {self.index} on "
            f"{self.soc_name}: {self.injected_faults} faults, mean rate "
            f"{self.mean_assigned_rate:.3%}",
        ]
        for stage in self.stages:
            if stage.failures is not None:
                lines.append(
                    f"  {stage.stage:<8}: {stage.failures} failing reads "
                    f"({format_duration_ns(stage.time_ns or 0.0)})"
                )
            elif stage.repaired_words is not None:
                lines.append(
                    f"  {stage.stage:<8}: {stage.repaired_words} words "
                    f"repaired, {stage.detached_faults} faults detached"
                )
            else:
                lines.append(
                    f"  {stage.stage:<8}: {stage.repaired_rows} spare rows + "
                    f"{stage.repaired_cols} spare cols, "
                    f"{stage.detached_faults} faults detached"
                )
        verdict = "converged" if self.retest_converged else "NOT converged"
        lines.append(
            f"  flow     : {verdict} after {self.retest_rounds} repair "
            f"round(s), escape rate {self.escape_rate:.1%}"
        )
        if self.ecc_enabled:
            lines.append(
                f"  ecc      : {self.ecc_corrected_reads} corrected reads "
                f"({self.ecc_masked_reads} masked, "
                f"{self.ecc_uncorrectable_reads} uncorrectable), "
                f"masked-escape rate {self.ecc_masked_escape_rate:.1%}"
            )
        if self.repair_yield is not None:
            lines.append(
                f"  bisr     : yield {self.repair_yield:.1%} "
                f"({self.repaired_rows} rows + {self.repaired_cols} cols)"
            )
        if self.reduction_factor is not None:
            lines.append(f"  reduction: {self.reduction_factor:.1f}x")
        if self.intermittent_faults:
            lines.append(
                f"  burn-in  : {self.intermittent_detected}/"
                f"{self.intermittent_faults} intermittent faults detected"
            )
        return lines


def clustered_sampler(spec: ScenarioSpec, rates: dict[str, float], seed: int):
    """Population sampler drawing each memory's rate from the field.

    The per-memory stream derives from the campaign seed and the memory
    *name* (never the bank position), so relabeling or reordering the
    bank leaves every instance's population unchanged.
    """
    profile = spec.build_profile()

    def sampler(index: int, memory: SRAM) -> list[Fault]:
        return sample_population(
            memory.geometry,
            rates[memory.name],
            profile=profile,
            rng=derive_seed(seed, _FAULT_STREAM, name_seed(memory.name)),
        ).faults

    return sampler


def burn_in_population(
    spec: ScenarioSpec, memory: SRAM, seed: int
) -> list[Fault]:
    """The intermittent population one memory receives at burn-in."""
    return list(
        sample_intermittent_population(
            memory.geometry,
            spec.intermittent_rate,
            spec.upset_probability,
            seed=mix_seed(seed, _BURN_IN_STREAM, name_seed(memory.name)),
        )
    )


def run_scenario_campaign(
    spec: ScenarioSpec, index: int
) -> ScenarioCampaignReport:
    """Execute one full scenario flow and report it."""
    seed = spec.campaign_seed(index)
    soc = spec.build_soc()
    rates = assign_rates(
        spec.cluster_field(index), spec.build_floorplan(soc)
    )
    campaign = DiagnosisCampaign(
        soc,
        defect_rate=spec.base_defect_rate,
        seed=seed,
        spares_per_memory=spec.spares_per_memory,
        backend=spec.backend,
        profile=spec.build_profile(),
        baseline_bit_accurate=spec.baseline_bit_accurate,
        sampler=clustered_sampler(spec, rates, seed),
    )
    bank, injector = campaign.faulty_bank()
    scheme = FastDiagnosisScheme(
        bank, period_ns=spec.period_ns, ecc=spec.build_ecc()
    )
    report = ScenarioCampaignReport(
        scenario=spec.name,
        soc_name=soc.name,
        index=index,
        seed=seed,
        assigned_rates=rates,
        injected_faults=injector.total,
        ecc_enabled=spec.ecc is not None,
    )
    # Union of the cells the decoder corrected anywhere in the flow --
    # the candidates for ECC-masked escapes.
    ecc_corrected: dict[str, set[CellRef]] = {m.name: set() for m in bank}

    def fold_ecc(session: ProposedReport) -> None:
        if not session.ecc:
            return
        for name, summary in session.ecc.items():
            ecc_corrected[name] |= summary.corrected_cellrefs()
        report.ecc_corrected_reads += session.ecc_corrected_reads
        report.ecc_masked_reads += session.ecc_masked_reads
        report.ecc_uncorrectable_reads += session.ecc_uncorrectable_reads

    # Stage 1: initial test (+ the baseline twin for measured R).
    proposed = campaign.diagnose_proposed(scheme)
    report.proposed = proposed
    fold_ecc(proposed)
    report.stages.append(
        StageOutcome(
            "test", 0, failures=proposed.total_failures, time_ns=proposed.time_ns
        )
    )
    detected: dict[str, set[CellRef]] = {
        memory.name: proposed.detected_cells(memory.name) for memory in bank
    }
    if spec.include_baseline:
        baseline_bank, baseline_injector = campaign.faulty_bank()
        report.baseline = campaign.diagnose_baseline(
            HuangJoneScheme(baseline_bank, period_ns=spec.period_ns),
            baseline_injector,
        )

    # Stage 2/3: repair -> retest until clean or out of rounds.  With a
    # row/column budget the BISR allocator replaces word-spare remapping.
    bisr: BisrController | None = None
    if spec.use_bisr:
        bisr = BisrController(
            bank, RedundancyBudget(spec.spare_rows, spec.spare_cols)
        )
        controller: BisrController | RepairController = bisr
    else:
        controller = RepairController(bank, spec.spares_per_memory)
    last = proposed
    converged = proposed.passed
    while not converged and report.retest_rounds < spec.max_retest_rounds:
        repair = controller.apply(last)
        report.retest_rounds += 1
        if bisr is not None:
            progress = repair.total_new_spares
            report.repaired_rows += repair.total_new_rows
            report.repaired_cols += repair.total_new_cols
            report.stages.append(
                StageOutcome(
                    "repair",
                    report.retest_rounds,
                    detached_faults=repair.detached_faults,
                    repaired_rows=repair.total_new_rows,
                    repaired_cols=repair.total_new_cols,
                )
            )
        else:
            progress = repair.total_repaired_words
            report.stages.append(
                StageOutcome(
                    "repair",
                    report.retest_rounds,
                    repaired_words=repair.total_repaired_words,
                    detached_faults=repair.detached_faults,
                )
            )
        if progress == 0:
            # Spares exhausted or peripheral defects: another retest
            # cannot change the outcome, so the flow stalls unconverged.
            break
        last = campaign.diagnose_proposed(scheme)
        fold_ecc(last)
        for memory in bank:
            detected[memory.name] |= last.detected_cells(memory.name)
        report.stages.append(
            StageOutcome(
                "retest",
                report.retest_rounds,
                failures=last.total_failures,
                time_ns=last.time_ns,
            )
        )
        converged = last.passed
    report.retest_converged = converged
    if bisr is not None:
        report.repair_yield = bisr.repair_yield()

    # Stage 4: burn-in re-diagnosis with the intermittent layer attached.
    # The stage gets its own round number (it follows every repair/retest
    # round) and its *own* detection set: an intermittent fault only
    # counts as detected when the burn-in session itself saw one of its
    # victims, not when a manufacturing fault already failed that cell in
    # an earlier stage.
    intermittent: dict[str, list[Fault]] = {}
    burn_detected: dict[str, set[CellRef]] = {}
    if spec.burn_in:
        for memory in bank:
            population = burn_in_population(spec, memory, seed)
            intermittent[memory.name] = population
            for fault in population:
                fault.attach(memory)
        burn = campaign.diagnose_proposed(scheme)
        fold_ecc(burn)
        report.stages.append(
            StageOutcome(
                "burn-in",
                report.retest_rounds + 1,
                failures=burn.total_failures,
                time_ns=burn.time_ns,
            )
        )
        for memory in bank:
            burn_detected[memory.name] = burn.detected_cells(memory.name)
            detected[memory.name] |= burn_detected[memory.name]

    # Escape accounting: manufacturing faults never localized by any
    # session of the flow, and intermittent detection at burn-in.  Under
    # ECC, an escape whose victims the decoder corrected somewhere in the
    # flow is an *ECC-masked* escape -- the defect fired, the on-die
    # correction hid it from every session.
    total = 0
    escaped = 0
    masked_escaped = 0
    for name in injector.memories():
        seen = detected.get(name, set())
        corrected = ecc_corrected.get(name, set())
        for fault in injector.faults_for(name):
            total += 1
            victims = set(fault.victims)
            if not seen & victims:
                escaped += 1
                if corrected & victims:
                    masked_escaped += 1
    report.escaped_faults = escaped
    report.ecc_masked_escaped = masked_escaped
    report.localization_rate = 1.0 if total == 0 else 1.0 - escaped / total
    report.intermittent_faults = sum(len(f) for f in intermittent.values())
    report.intermittent_detected = sum(
        1
        for name, faults in intermittent.items()
        for fault in faults
        if burn_detected.get(name, set()) & set(fault.victims)
    )
    return report


def summarize_scenario_campaign(
    report: ScenarioCampaignReport,
) -> CampaignSummary:
    """Reduce a scenario campaign to its fleet summary."""
    proposed = report.proposed
    baseline = report.baseline
    return CampaignSummary(
        index=report.index,
        seed=report.seed,
        soc_name=report.soc_name,
        injected_faults=report.injected_faults,
        localization_rate=report.localization_rate,
        total_failures=proposed.total_failures if proposed else 0,
        proposed_time_ns=proposed.time_ns if proposed else None,
        baseline_time_ns=baseline.time_ns if baseline else None,
        baseline_iterations=baseline.iterations if baseline else None,
        reduction_factor=report.reduction_factor,
        scenario=report.scenario,
        assigned_rate_mean=report.mean_assigned_rate,
        escaped_faults=report.escaped_faults,
        escape_rate=report.escape_rate,
        retest_rounds=report.retest_rounds,
        retest_converged=report.retest_converged,
        intermittent_faults=report.intermittent_faults,
        intermittent_detected=report.intermittent_detected,
        ecc_masked_escaped=(
            report.ecc_masked_escaped if report.ecc_enabled else None
        ),
        ecc_masked_escape_rate=report.ecc_masked_escape_rate,
        ecc_corrected_reads=(
            report.ecc_corrected_reads if report.ecc_enabled else None
        ),
        ecc_uncorrectable_reads=(
            report.ecc_uncorrectable_reads if report.ecc_enabled else None
        ),
        repair_yield=report.repair_yield,
        repaired_rows=report.repaired_rows or None,
        repaired_cols=report.repaired_cols or None,
    )


def run_scenario_chunk(
    spec: ScenarioSpec, indices: tuple[int, ...]
) -> list[CampaignSummary]:
    """Worker entry point: run a chunk of scenario campaigns."""
    return [
        summarize_scenario_campaign(run_scenario_campaign(spec, index))
        for index in indices
    ]
