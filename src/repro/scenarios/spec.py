"""Declarative scenario specifications (the fleet-of-flows analogue).

A :class:`ScenarioSpec` is to :mod:`repro.scenarios` what
:class:`~repro.engine.fleet.FleetSpec` is to the plain fleet: a frozen,
primitives-only record describing a reproducible *population* of
multi-session production flows.  On top of the fleet-shape fields it
composes the three scenario axes:

* **spatial clustering** -- a :class:`~repro.scenarios.cluster.ClusterField`
  per campaign (centers derived from the master seed, placements from
  memory names), assigning each memory its own manufacturing defect rate;
* **intermittent faults** -- a per-cell rate of soft-error mechanisms
  (:mod:`repro.faults.intermittent`) injected at the burn-in stage;
* **production flow** -- the test -> repair -> retest -> burn-in chain
  executed by :mod:`repro.scenarios.flow`, bounded by
  ``max_retest_rounds``.

Only primitives live here so the spec pickles cheaply to fleet workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.defects import DefectProfile, DefectType
from repro.memory.geometry import MemoryGeometry
from repro.scenarios.cluster import (
    DEFAULT_MAX_RATE,
    ClusterField,
    sample_cluster_centers,
)
from repro.soc.case_study import case_study_soc
from repro.soc.chip import SoCConfig
from repro.soc.floorplan import Floorplan
from repro.util.records import Record
from repro.util.rng import derive_seed
from repro.util.validation import require, require_in_range, require_positive


@dataclass(frozen=True)
class ScenarioSpec(Record):
    """A reproducible population of multi-session scenario campaigns."""

    #: Scenario label carried into summaries and reports.
    name: str = "clustered"
    soc: str = "case-study"
    memories: int = 8
    heterogeneous: bool = True
    period_ns: float = 10.0
    campaigns: int = 8
    master_seed: int = 0
    spares_per_memory: int = 32
    backend: str = "auto"
    include_baseline: bool = True
    baseline_bit_accurate: bool = False
    #: Optional uniform geometry override (every memory ``words x bits``).
    geometry: tuple[int, int] | None = None
    #: Optional explicit bank: ``(words, bits, name)`` triples.  Overrides
    #: ``soc``/``memories``/``geometry`` -- the handle the metamorphic
    #: suite uses to permute memory order as a pure spec transformation.
    shapes: tuple[tuple[int, int, str], ...] | None = None
    #: Optional defect-class mix (one weight per DefectType, declaration
    #: order), as in :class:`~repro.engine.fleet.FleetSpec`.
    defect_weights: tuple[float, float, float, float] | None = None

    # Spatial clustering -------------------------------------------------
    die_size: float = 100.0
    base_defect_rate: float = 0.002
    cluster_count: int = 2
    cluster_radius: float = 25.0
    cluster_peak_rate: float = 0.03
    max_defect_rate: float = DEFAULT_MAX_RATE
    #: Explicit cluster centers shared by every campaign (``None`` samples
    #: fresh centers per campaign from the master seed).
    cluster_centers: tuple[tuple[float, float], ...] | None = None
    #: Seed of the name-keyed floorplan placements.
    placement_seed: int = 0

    # Intermittent / soft-error layer ------------------------------------
    #: Fraction of cells carrying an intermittent mechanism at burn-in.
    intermittent_rate: float = 0.0
    #: Per-access upset probability of each intermittent fault.
    upset_probability: float = 0.05

    # Production flow ----------------------------------------------------
    #: Repair -> retest rounds to attempt after the first test session.
    max_retest_rounds: int = 3
    #: Whether to run the burn-in re-diagnosis stage.
    burn_in: bool = True

    # ECC + BISR co-simulation -------------------------------------------
    #: On-die ECC scheme applied to every word read of every diagnosis
    #: session (``None`` = raw observation, ``"secded"`` = extended
    #: Hamming).  Failures and escapes are then *post-correction*.
    ecc: str | None = None
    #: Spare rows per memory for the BISR allocator.  When either
    #: ``spare_rows`` or ``spare_cols`` is nonzero, the flow's repair
    #: stage uses row/column redundancy (must-repair + exact/greedy
    #: allocation) instead of word-spare remapping.
    spare_rows: int = 0
    #: Spare columns per memory for the BISR allocator.
    spare_cols: int = 0

    def __post_init__(self) -> None:
        require(bool(self.name), "scenario needs a name")
        require(
            self.soc in ("case-study", "buffer-cluster"),
            f"unknown SoC {self.soc!r}",
        )
        require_positive(self.campaigns, "campaigns")
        require_in_range(self.base_defect_rate, 0.0, 1.0, "base_defect_rate")
        require_in_range(self.cluster_peak_rate, 0.0, 1.0, "cluster_peak_rate")
        require_in_range(self.max_defect_rate, 0.0, 1.0, "max_defect_rate")
        require_in_range(self.intermittent_rate, 0.0, 1.0, "intermittent_rate")
        require_in_range(self.upset_probability, 0.0, 1.0, "upset_probability")
        require(
            self.base_defect_rate <= self.max_defect_rate,
            "base_defect_rate must not exceed max_defect_rate",
        )
        require_positive(self.cluster_radius, "cluster_radius")
        require_positive(self.die_size, "die_size")
        require(self.cluster_count >= 0, "cluster_count must be >= 0")
        require(self.max_retest_rounds >= 0, "max_retest_rounds must be >= 0")
        if self.geometry is not None:
            require(
                len(self.geometry) == 2, "geometry must be a (words, bits) pair"
            )
        if self.shapes is not None:
            require(bool(self.shapes), "shapes needs at least one memory")
            require(
                all(len(shape) == 3 for shape in self.shapes),
                "shapes entries must be (words, bits, name) triples",
            )
            names = [name for _, _, name in self.shapes]
            require(
                len(set(names)) == len(names),
                "shapes memory names must be unique",
            )
        if self.defect_weights is not None:
            require(
                len(self.defect_weights) == len(DefectType),
                f"defect_weights needs one weight per defect class "
                f"({len(DefectType)}), got {len(self.defect_weights)}",
            )
        if self.ecc is not None:
            require(
                self.ecc == "secded",
                f"unknown ECC scheme {self.ecc!r}; expected 'secded'",
            )
        require(self.spare_rows >= 0, "spare_rows must be >= 0")
        require(self.spare_cols >= 0, "spare_cols must be >= 0")

    # ------------------------------------------------------------------ #
    # Materialization                                                    #
    # ------------------------------------------------------------------ #
    def build_soc(self) -> SoCConfig:
        """Materialize the SoC configuration this scenario diagnoses."""
        if self.shapes is not None:
            return SoCConfig(
                name=f"scenario-{self.name}",
                geometries=[
                    MemoryGeometry(words, bits, name)
                    for words, bits, name in self.shapes
                ],
                period_ns=self.period_ns,
            )
        if self.geometry is not None:
            words, bits = self.geometry
            return SoCConfig(
                name=f"uniform-{words}x{bits}",
                geometries=[
                    MemoryGeometry(words, bits, f"esram_{i}")
                    for i in range(self.memories)
                ],
                period_ns=self.period_ns,
            )
        if self.soc == "buffer-cluster":
            return SoCConfig.buffer_cluster(period_ns=self.period_ns)
        return case_study_soc(
            memories=self.memories,
            heterogeneous=self.heterogeneous,
            period_ns=self.period_ns,
        )

    def build_ecc(self):
        """Materialize the ECC config (``None`` = raw observation)."""
        if self.ecc is None:
            return None
        from repro.ecc.observer import EccConfig

        return EccConfig(scheme=self.ecc)

    @property
    def use_bisr(self) -> bool:
        """Whether the repair stage runs the row/column BISR allocator."""
        return self.spare_rows > 0 or self.spare_cols > 0

    def build_profile(self) -> DefectProfile | None:
        """Materialize the defect-class profile (``None`` = paper default)."""
        if self.defect_weights is None:
            return None
        return DefectProfile(weights=dict(zip(DefectType, self.defect_weights)))

    def build_floorplan(self, soc: SoCConfig | None = None) -> Floorplan:
        """The name-keyed floorplan every campaign of the scenario shares."""
        return Floorplan.name_seeded(
            soc or self.build_soc(), die_size=self.die_size, seed=self.placement_seed
        )

    def cluster_field(self, campaign_index: int) -> ClusterField:
        """The defect-intensity field of campaign ``campaign_index``."""
        centers = self.cluster_centers
        if centers is None:
            centers = sample_cluster_centers(
                self.cluster_count,
                self.die_size,
                self.master_seed,
                campaign_index,
            )
        return ClusterField(
            centers=tuple(centers),
            base_rate=self.base_defect_rate,
            peak_rate=self.cluster_peak_rate,
            radius=self.cluster_radius,
            max_rate=self.max_defect_rate,
        )

    def campaign_seed(self, index: int) -> int:
        """Deterministic seed of campaign ``index`` (worker-independent)."""
        return derive_seed(self.master_seed, index)


#: Named scenario presets for the CLI and smoke jobs.
SCENARIO_PRESETS: dict[str, dict] = {
    # Clustered manufacturing defects, full production flow.
    "clustered": dict(
        name="clustered",
        cluster_count=2,
        cluster_radius=25.0,
        cluster_peak_rate=0.03,
        base_defect_rate=0.002,
        intermittent_rate=0.0,
    ),
    # Clustered defects plus a soft-error burn-in layer.
    "burn-in-soft-error": dict(
        name="burn-in-soft-error",
        cluster_count=1,
        cluster_radius=30.0,
        cluster_peak_rate=0.02,
        base_defect_rate=0.001,
        intermittent_rate=0.002,
        upset_probability=0.2,
    ),
    # Uniform rate, intermittent-only: isolates the transient regime.
    "intermittent-only": dict(
        name="intermittent-only",
        cluster_count=0,
        base_defect_rate=0.0,
        intermittent_rate=0.004,
        upset_probability=0.3,
        include_baseline=False,
    ),
}


def preset_spec(preset: str, **overrides) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a named preset plus overrides."""
    require(
        preset in SCENARIO_PRESETS,
        f"unknown scenario preset {preset!r}; "
        f"known: {', '.join(sorted(SCENARIO_PRESETS))}",
    )
    return ScenarioSpec(**{**SCENARIO_PRESETS[preset], **overrides})
