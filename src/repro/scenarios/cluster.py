"""Spatially-correlated defect placement over a die floorplan.

The paper's evaluation (and :class:`~repro.engine.fleet.FleetSpec`)
assumes one uniform defect rate for every memory; real manufacturing
defects cluster.  This module models that regime as a *defect intensity
field*: a small number of cluster centers on the die, each contributing a
peak rate that decays exponentially with Manhattan distance (the same
wire-length proxy :mod:`repro.soc.floorplan` uses), on top of a uniform
base rate.  Memories placed near a center -- and therefore near each
other -- share elevated defect rates, which is exactly the correlation
structure the scenario workloads exercise.

Everything is deterministic: centers derive from the scenario master seed
and campaign index, placements from memory *names* (see
:meth:`repro.soc.floorplan.Floorplan.name_seeded`), so results are
independent of worker count, chunking and bank ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.soc.floorplan import Floorplan, Placement
from repro.util.records import Record
from repro.util.rng import SplitMix64Stream, mix_seed
from repro.util.validation import require, require_in_range, require_positive

#: Stream label for cluster-center sampling (keeps the center draw
#: independent of every other per-campaign stream).
_CENTER_STREAM = 0xC1

#: Highest defect rate the field may assign to a memory.  Keeps the
#: implied fault count below the sampler's faults <= cells bound even
#: when several cluster centers stack on one placement.
DEFAULT_MAX_RATE = 0.2


@dataclass(frozen=True)
class ClusterField(Record):
    """A defect-intensity field: base rate plus decaying cluster peaks.

    The rate at die position ``(x, y)`` is::

        min(max_rate, base_rate + sum_i peak_rate * exp(-d_i / radius))

    with ``d_i`` the Manhattan distance to cluster center ``i``.  The
    field is monotone in ``radius``: growing the decay radius never
    lowers the rate anywhere (a property test pins this).
    """

    centers: tuple[tuple[float, float], ...]
    base_rate: float
    peak_rate: float
    radius: float
    max_rate: float = DEFAULT_MAX_RATE

    def __post_init__(self) -> None:
        require_in_range(self.base_rate, 0.0, 1.0, "base_rate")
        require_in_range(self.peak_rate, 0.0, 1.0, "peak_rate")
        require_in_range(self.max_rate, 0.0, 1.0, "max_rate")
        require_positive(self.radius, "radius")
        require(
            self.base_rate <= self.max_rate,
            "base_rate must not exceed max_rate",
        )

    def rate_at(self, x: float, y: float) -> float:
        """Defect rate the field assigns to a die position."""
        rate = self.base_rate
        for cx, cy in self.centers:
            distance = abs(x - cx) + abs(y - cy)
            rate += self.peak_rate * math.exp(-distance / self.radius)
        return min(rate, self.max_rate)

    def rate_for(self, placement: Placement) -> float:
        """Defect rate of one placed memory."""
        return self.rate_at(placement.x, placement.y)

    def mean_rate(self, placements: list[Placement]) -> float:
        """Mean assigned rate over a set of placements."""
        require(bool(placements), "mean_rate needs at least one placement")
        return sum(self.rate_for(p) for p in placements) / len(placements)


def sample_cluster_centers(
    count: int,
    die_size: float,
    master_seed: int,
    campaign_index: int,
) -> tuple[tuple[float, float], ...]:
    """Draw cluster centers uniformly on the die, deterministically.

    The stream depends only on ``(master_seed, campaign_index)`` -- never
    on worker layout -- so a campaign's cluster geometry is reproducible
    no matter how the fleet is scheduled.
    """
    require(count >= 0, "count must be >= 0")
    require_positive(die_size, "die_size")
    stream = SplitMix64Stream(
        mix_seed(master_seed, _CENTER_STREAM, campaign_index)
    )
    return tuple(
        (stream.next_float() * die_size, stream.next_float() * die_size)
        for _ in range(count)
    )


def assign_rates(
    field: ClusterField, floorplan: Floorplan
) -> dict[str, float]:
    """Per-memory defect rates: the field evaluated at each placement.

    Keyed by memory name so downstream sampling is independent of bank
    order; two floorplans that agree on distances to the centers (e.g.
    after a die symmetry applied to placements *and* centers) produce
    identical assignments.
    """
    return {
        placement.memory_name: field.rate_for(placement)
        for placement in floorplan.placements
    }


def arrival_weights(
    field: ClusterField, floorplan: Floorplan
) -> dict[str, float]:
    """Normalized per-memory event-arrival weights (sum to 1).

    The streaming event timeline places each SEU/intermittent arrival on
    one memory with probability proportional to the intensity field at
    that memory's placement -- the same clustered geometry that drives
    defect rates also shapes *burst* arrivals.  A degenerate all-zero
    field falls back to uniform weights so the timeline never divides by
    zero.
    """
    rates = assign_rates(field, floorplan)
    require(bool(rates), "arrival_weights needs at least one placement")
    total = sum(rates.values())
    if total <= 0.0:
        uniform = 1.0 / len(rates)
        return {name: uniform for name in rates}
    return {name: rate / total for name, rate in rates.items()}
