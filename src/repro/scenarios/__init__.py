"""Scenario engine: fleet workloads beyond the paper's i.i.d. regime.

The paper's evaluation assumes independent, uniformly distributed defects
per SRAM.  This package opens the workloads where that assumption breaks:

* :mod:`repro.scenarios.cluster` -- spatially-correlated defect placement
  driven by die-floorplan distances (cluster centers with a decay
  radius, so neighbouring memories share elevated defect rates);
* :mod:`repro.scenarios.spec` -- the declarative, frozen
  :class:`ScenarioSpec` describing a reproducible campaign population
  (clustering x intermittent layer x production flow);
* :mod:`repro.scenarios.flow` -- chained multi-session campaigns
  (test -> repair -> retest -> burn-in re-diagnosis) with escape-rate and
  convergence accounting;
* :mod:`repro.scenarios.runner` -- execution over the shared
  :class:`~repro.engine.fleet.FleetScheduler` with per-scenario derived
  seeds and streaming aggregation.

Intermittent/soft-error fault models live in the fault library proper
(:mod:`repro.faults.intermittent`) so they compose with every scheme.
"""

from repro.scenarios.cluster import (
    ClusterField,
    assign_rates,
    sample_cluster_centers,
)
from repro.scenarios.flow import (
    ScenarioCampaignReport,
    StageOutcome,
    run_scenario_campaign,
    run_scenario_chunk,
    summarize_scenario_campaign,
)
from repro.scenarios.runner import run_scenario_fleet, scenario_scheduler
from repro.scenarios.spec import SCENARIO_PRESETS, ScenarioSpec, preset_spec

__all__ = [
    "SCENARIO_PRESETS",
    "ClusterField",
    "ScenarioCampaignReport",
    "ScenarioSpec",
    "StageOutcome",
    "assign_rates",
    "preset_spec",
    "run_scenario_campaign",
    "run_scenario_chunk",
    "run_scenario_fleet",
    "sample_cluster_centers",
    "scenario_scheduler",
    "summarize_scenario_campaign",
]
