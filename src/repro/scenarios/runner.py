"""Scenario fleets: fan scenario flows out over the fleet scheduler.

Scenario campaigns are scheduled exactly like plain fleet campaigns --
deterministic per-campaign seeds derived from the master seed, chunked
over a multiprocessing pool, summaries streamed into a
:class:`~repro.engine.aggregate.FleetReport` in campaign order -- by
plugging :func:`repro.scenarios.flow.run_scenario_chunk` into the
generalized :class:`~repro.engine.fleet.FleetScheduler`.  The resulting
report carries the scenario-level aggregates (escape rate, retest
convergence, clustered defect rates, intermittent detection) next to the
familiar fleet statistics (localization, measured R).
"""

from __future__ import annotations

import os
from typing import Callable

from repro.engine.aggregate import FleetReport
from repro.engine.checkpoint import CheckpointStore
from repro.engine.fleet import FleetScheduler
from repro.engine.supervisor import ChunkRetryPolicy
from repro.scenarios.flow import run_scenario_chunk
from repro.scenarios.spec import ScenarioSpec


def scenario_scheduler(
    spec: ScenarioSpec,
    workers: int | None = None,
    chunk_size: int | None = None,
    checkpoint: "CheckpointStore | str | os.PathLike | None" = None,
    resume: bool = False,
    telemetry: bool = False,
    retry: "ChunkRetryPolicy | None" = None,
    on_chunk_failure: str = "raise",
) -> FleetScheduler:
    """A fleet scheduler wired to execute scenario flows."""
    return FleetScheduler(
        spec,
        workers=workers,
        chunk_size=chunk_size,
        chunk_runner=run_scenario_chunk,
        checkpoint=checkpoint,
        resume=resume,
        telemetry=telemetry,
        retry=retry,
        on_chunk_failure=on_chunk_failure,
    )


def run_scenario_fleet(
    spec: ScenarioSpec,
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    checkpoint: "CheckpointStore | str | os.PathLike | None" = None,
    resume: bool = False,
    telemetry: bool = False,
    retry: "ChunkRetryPolicy | None" = None,
    on_chunk_failure: str = "raise",
) -> FleetReport:
    """Run every scenario campaign and aggregate the fleet report.

    ``checkpoint``/``resume`` behave exactly as in
    :class:`~repro.engine.fleet.FleetScheduler`: finished chunks persist
    immediately and a resumed run skips them, reproducing the
    uninterrupted report's deterministic content.  ``telemetry=True``
    attaches the merged telemetry report, exactly as for plain fleets.
    """
    return scenario_scheduler(
        spec,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint=checkpoint,
        resume=resume,
        telemetry=telemetry,
        retry=retry,
        on_chunk_failure=on_chunk_failure,
    ).run(progress)
