"""Supervised chunk execution: dead-worker detection, retry, quarantine.

``multiprocessing.Pool`` is fail-silent in exactly the wrong way for a
long-running fleet: a worker that dies mid-task (segfault, OOM kill,
``os._exit``) takes its queued task down with it and
``imap_unordered`` simply never yields the result -- the parent blocks
forever.  The :class:`ChunkSupervisor` replaces the pool with one
short-lived process per chunk attempt, each reporting over its own
pipe, so the parent can distinguish the three failure shapes that
matter:

* ``exception`` -- the chunk runner raised; the worker reports the
  error type and message over the pipe before exiting;
* ``crash`` -- the worker died without reporting (pipe hit EOF); the
  exit code is recorded and a replacement process is spawned;
* ``timeout`` -- the chunk exceeded the policy's per-chunk deadline;
  the worker is terminated.

Failed chunks are retried under a :class:`ChunkRetryPolicy` --
exponential backoff whose jitter derives from the repo's counter-based
splitmix64 discipline (:func:`repro.util.rng.mix_seed` keyed on
``(seed, chunk, attempt)``), never from wall-clock entropy -- so a
chaos-injected run replays bit-for-bit.  A chunk that exhausts its
attempts is *poison*: strict mode raises a structured
:class:`ChunkExecutionError` carrying the full attempt history, while
quarantine mode records a :class:`ChunkFailure` and lets the rest of
the fleet complete.

Chunks are pure functions of ``(spec, indices)``, so a retried chunk
reproduces the exact bytes the first attempt would have produced --
retries change scheduling, never results.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Iterator

from repro.util.records import Record
from repro.util.rng import mix_seed
from repro.util.validation import require, require_positive

__all__ = [
    "ChunkExecutionError",
    "ChunkFailure",
    "ChunkRetryPolicy",
    "ChunkSupervisor",
    "current_attempt",
]

#: Domain-separation label for retry jitter draws (``"RETR"``), keeping
#: the backoff stream independent of every other splitmix64 consumer.
_JITTER_LABEL = 0x52455452

#: Parent poll granularity: the supervisor re-checks deadlines and the
#: retry schedule at least this often while workers run.
_POLL_S = 0.1

#: Attempt number of the chunk currently executing in this process
#: (0-based).  Set by the supervisor's worker entry point (and by the
#: scheduler's inline path) before the chunk runner is invoked, so
#: attempt-aware runners -- the chaos harness foremost -- can key
#: injected faults on the attempt without threading it through the
#: ``(spec, indices)`` chunk contract.
_CURRENT_ATTEMPT = 0


def current_attempt() -> int:
    """0-based attempt number of the chunk running in this process."""
    return _CURRENT_ATTEMPT


def set_current_attempt(attempt: int) -> None:
    """Record the attempt number for :func:`current_attempt` readers."""
    global _CURRENT_ATTEMPT
    _CURRENT_ATTEMPT = int(attempt)


@dataclass(frozen=True)
class ChunkRetryPolicy(Record):
    """Retry/backoff/deadline policy for one fleet execution.

    ``max_attempts`` counts every execution of a chunk, so ``1`` means
    fail-fast (no retries).  Backoff for retry ``k`` (1-based) is
    ``min(backoff_base_s * backoff_factor**(k-1), backoff_max_s)``
    stretched by a deterministic jitter in ``[0, jitter]`` drawn from
    ``mix_seed(seed, chunk, k)`` -- no wall-clock randomness, so two
    runs of the same chaos scenario sleep the same schedule.
    ``chunk_timeout_s`` (``None`` = unlimited) bounds one attempt's
    wall-clock time under the supervisor; inline (``workers <= 1``)
    execution cannot preempt a chunk and ignores it.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.5
    chunk_timeout_s: float | None = None

    def __post_init__(self) -> None:
        require_positive(self.max_attempts, "max_attempts")
        require(self.backoff_base_s >= 0.0, "backoff_base_s must be >= 0")
        require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        require(self.backoff_max_s >= 0.0, "backoff_max_s must be >= 0")
        require(self.jitter >= 0.0, "jitter must be >= 0")
        if self.chunk_timeout_s is not None:
            require(self.chunk_timeout_s > 0.0, "chunk_timeout_s must be > 0")

    def delay_s(self, seed: int, chunk_index: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of ``chunk_index``."""
        require(attempt >= 1, "attempt must be >= 1")
        delay = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        if self.jitter > 0.0 and delay > 0.0:
            unit = (
                mix_seed(seed, _JITTER_LABEL, chunk_index, attempt) >> 11
            ) / float(1 << 53)
            delay *= 1.0 + self.jitter * unit
        return delay


@dataclass(frozen=True)
class ChunkFailure(Record):
    """Attempt history of one chunk that exhausted its retry budget."""

    chunk_index: int
    campaign_indices: tuple[int, ...]
    #: One entry per attempt, in attempt order: ``exception`` (runner
    #: raised), ``crash`` (worker died silently), ``timeout`` (deadline).
    error_kinds: tuple[str, ...]
    #: Human-readable detail per attempt (error message, exit code, ...).
    details: tuple[str, ...]

    def block_entry(self) -> dict:
        """Deterministic entry for a report's ``failures`` block."""
        return {
            "chunk": self.chunk_index,
            "campaigns": list(self.campaign_indices),
            "error_kinds": list(self.error_kinds),
        }


class ChunkExecutionError(RuntimeError):
    """A chunk failed every attempt its retry policy allowed.

    Subclasses :class:`RuntimeError` (and embeds the original error
    messages) so callers that matched the unwrapped worker exception
    keep working; the structured history lives on :attr:`failure`.
    """

    def __init__(self, failure: ChunkFailure) -> None:
        self.failure = failure
        indices = failure.campaign_indices
        span = (
            f"{indices[0]}..{indices[-1]}" if indices else "none"
        )
        history = "; ".join(
            f"attempt {number} [{kind}] {detail}"
            for number, (kind, detail) in enumerate(
                zip(failure.error_kinds, failure.details), start=1
            )
        )
        super().__init__(
            f"chunk {failure.chunk_index} (campaigns {span}) failed after "
            f"{len(failure.error_kinds)} attempt(s): {history}"
        )


def _supervised_worker(conn, task: Callable, item, attempt: int) -> None:
    """Worker entry point: run one chunk attempt, report over ``conn``.

    Module-level (and argument-closed) so it pickles under the spawn
    start method.  Reports ``("ok", summaries, snapshot)`` or
    ``("error", type_name, message)``; a worker that dies before
    sending anything is detected by the parent as EOF on the pipe.
    """
    set_current_attempt(attempt)
    try:
        try:
            _chunk_index, summaries, snapshot = task(item)
        except Exception as error:  # noqa: BLE001 -- shipped to the parent
            conn.send(("error", type(error).__name__, str(error)))
        else:
            conn.send(("ok", summaries, snapshot))
    finally:
        conn.close()


@dataclass
class _Running:
    """One in-flight worker process and its reporting pipe."""

    chunk_index: int
    indices: tuple[int, ...]
    attempt: int
    process: object
    conn: object
    deadline: float | None = None


@dataclass
class ChunkSupervisor:
    """Run pending chunks under supervision; see the module docstring.

    ``task`` maps one ``(chunk_index, indices)`` item to a
    ``(chunk_index, summaries, snapshot)`` triple (the scheduler passes
    a pickled-by-reference partial of its chunk runner).  Consumption
    happens through :meth:`results`, which yields completion-order
    triples; a quarantined chunk yields ``summaries=None``.  The
    counters (:attr:`retries`, :attr:`respawns`, :attr:`quarantined`)
    and the :attr:`failures` list update as results stream out.
    """

    context: object
    workers: int
    task: Callable
    policy: ChunkRetryPolicy
    #: Seed for deterministic backoff jitter (the fleet's master seed).
    jitter_seed: int = 0
    #: Quarantine poison chunks instead of raising.
    quarantine: bool = False
    failures: list = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    quarantined: int = 0

    def results(
        self, pending: list[tuple[int, tuple[int, ...]]]
    ) -> Iterator[tuple[int, "list | None", dict | None]]:
        """Yield ``(chunk_index, summaries, snapshot)`` in completion order."""
        require(self.workers >= 1, "workers must be >= 1")
        # Retry schedule: a heap of (not-before, tiebreak, chunk, indices,
        # attempt).  Fresh chunks are runnable immediately in submission
        # order; retries join with their backoff deadline.
        sequence = 0
        todo: list[tuple[float, int, int, tuple[int, ...], int]] = []
        for chunk_index, indices in pending:
            heapq.heappush(todo, (0.0, sequence, chunk_index, indices, 0))
            sequence += 1
        running: dict[object, _Running] = {}
        history: dict[int, list[tuple[str, str]]] = {}
        try:
            while todo or running:
                now = time.monotonic()
                while todo and len(running) < self.workers and todo[0][0] <= now:
                    _, _, chunk_index, indices, attempt = heapq.heappop(todo)
                    self._spawn(running, chunk_index, indices, attempt)
                timeout = self._poll_timeout(todo, running, now)
                if not running:
                    time.sleep(timeout)
                    continue
                ready = _connection_wait(list(running), timeout=timeout)
                for conn in ready:
                    entry = running.pop(conn)
                    outcome = self._collect(entry)
                    if outcome[0] == "ok":
                        yield entry.chunk_index, outcome[1], outcome[2]
                    else:
                        sequence = yield from self._handle_failure(
                            todo, history, entry, outcome[1], outcome[2], sequence
                        )
                now = time.monotonic()
                for conn, entry in list(running.items()):
                    if entry.deadline is not None and now >= entry.deadline:
                        running.pop(conn)
                        self._stop(entry)
                        detail = (
                            f"chunk exceeded the {self.policy.chunk_timeout_s:g}s "
                            f"deadline; worker terminated"
                        )
                        sequence = yield from self._handle_failure(
                            todo, history, entry, "timeout", detail, sequence
                        )
        finally:
            # Early close (GeneratorExit) and strict-mode raises both land
            # here: no in-flight worker may outlive the supervisor.
            for entry in running.values():
                entry.process.terminate()
            for entry in running.values():
                self._reap(entry)

    def _spawn(
        self,
        running: dict,
        chunk_index: int,
        indices: tuple[int, ...],
        attempt: int,
    ) -> None:
        parent_conn, child_conn = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=_supervised_worker,
            args=(child_conn, self.task, (chunk_index, indices), attempt),
            daemon=True,
        )
        process.start()
        # Drop the parent's handle on the child end so a dead worker
        # surfaces as EOF instead of a silently half-open pipe.
        child_conn.close()
        deadline = None
        if self.policy.chunk_timeout_s is not None:
            deadline = time.monotonic() + self.policy.chunk_timeout_s
        running[parent_conn] = _Running(
            chunk_index, indices, attempt, process, parent_conn, deadline
        )

    def _poll_timeout(self, todo: list, running: dict, now: float) -> float:
        horizon = _POLL_S
        if todo:
            horizon = min(horizon, todo[0][0] - now)
        for entry in running.values():
            if entry.deadline is not None:
                horizon = min(horizon, entry.deadline - now)
        return max(0.0, horizon)

    def _collect(self, entry: _Running) -> tuple:
        """Read one finished worker's report; classify silent deaths."""
        try:
            message = entry.conn.recv()
        except (EOFError, OSError):
            message = None
        entry.process.join()
        entry.conn.close()
        if message is not None and message[0] == "ok":
            return message
        if message is not None:
            return "error", "exception", f"{message[1]}: {message[2]}"
        self.respawns += 1
        return (
            "error",
            "crash",
            f"worker exited with code {entry.process.exitcode} "
            f"before reporting a result",
        )

    def _handle_failure(
        self,
        todo: list,
        history: dict,
        entry: _Running,
        kind: str,
        detail: str,
        sequence: int,
    ):
        attempts = history.setdefault(entry.chunk_index, [])
        attempts.append((kind, detail))
        if len(attempts) < self.policy.max_attempts:
            self.retries += 1
            delay = self.policy.delay_s(
                self.jitter_seed, entry.chunk_index, len(attempts)
            )
            heapq.heappush(
                todo,
                (
                    time.monotonic() + delay,
                    sequence,
                    entry.chunk_index,
                    entry.indices,
                    len(attempts),
                ),
            )
            return sequence + 1
        failure = ChunkFailure(
            chunk_index=entry.chunk_index,
            campaign_indices=tuple(entry.indices),
            error_kinds=tuple(kind for kind, _ in attempts),
            details=tuple(detail for _, detail in attempts),
        )
        if not self.quarantine:
            raise ChunkExecutionError(failure)
        self.failures.append(failure)
        self.quarantined += 1
        yield entry.chunk_index, None, None
        return sequence

    def _stop(self, entry: _Running) -> None:
        entry.process.terminate()
        self._reap(entry)

    @staticmethod
    def _reap(entry: _Running) -> None:
        entry.process.join(5.0)
        if entry.process.is_alive():  # pragma: no cover -- SIGTERM ignored
            entry.process.kill()
            entry.process.join()
        entry.conn.close()
