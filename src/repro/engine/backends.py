"""Pluggable march-simulation backends and their registry.

A *backend* runs one :class:`~repro.march.algorithm.MarchAlgorithm` against
one (possibly faulty) :class:`~repro.memory.SRAM` and returns the same
:class:`~repro.march.simulator.MarchResult` the reference simulator would --
failure records, clock cycles and final memory state included.  Two
backends ship:

``reference``
    The existing pure-Python :class:`~repro.march.simulator.MarchSimulator`,
    cell-by-cell and hook-accurate.  Always available.

``numpy``
    Bit-parallel: packs the word array into ``uint64`` lanes and applies
    march elements as whole-array ops, replaying only fault-hooked words
    through the behavioural path (see :mod:`repro.engine.kernel`).
    Bit-exact against the reference by construction and validated across
    the fault library in the test suite.  Falls back to the reference for
    configurations the vector path cannot represent (decoder/column-mux
    faults, access tracing, stop-on-first-failure).

``batched``
    The fleet tier (:mod:`repro.engine.batched`, registered on import of
    :mod:`repro.engine`): identical to ``numpy`` for raw single-memory
    runs, but diagnosis sessions stack all same-geometry memories of the
    bank into one ``(n_mem, words, lanes)`` array and sweep each march
    element fleet-wide.  The fleet scheduler upgrades ``auto`` to it when
    geometry bucketing pays off.

The registry maps names to backend factories so later PRs (and user code)
can plug in further implementations::

    from repro.engine import get_backend, register_backend

    backend = get_backend("auto")      # numpy when available
    result = backend.run(memory, march_cw_nw(memory.bits))
"""

from __future__ import annotations

from typing import Callable

from repro.engine.packing import HAVE_NUMPY, require_numpy
from repro.march.algorithm import MarchAlgorithm, PauseStep
from repro.march.element import AddressOrder
from repro.march.simulator import MarchResult, MarchSimulator
from repro.memory.sram import SRAM
from repro.util.validation import require


def vector_capable(memory: SRAM) -> bool:
    """Whether the bit-parallel paths can represent ``memory`` natively.

    The single source of truth for the vector precondition: an ideal
    address decoder and column mux, and no access tracing.  Shared by the
    numpy backend's ``supports`` checks, the per-memory session runner and
    the batched tier's geometry planner, so a new capability condition
    only needs to land here.
    """
    return (
        not memory.trace
        and not memory.decoder.is_faulty
        and not memory.column_mux.is_faulty
    )


class MarchBackend:
    """Interface every march-simulation backend implements."""

    #: Registry name, set by subclasses.
    name = "abstract"

    def run(self, memory: SRAM, algorithm: MarchAlgorithm) -> MarchResult:
        """Apply ``algorithm`` to ``memory`` and collect failures."""
        raise NotImplementedError

    def supports(self, memory: SRAM) -> bool:
        """Whether this backend can run ``memory`` natively (no fallback)."""
        return True

    def supports_baseline(self, memory: SRAM) -> bool:
        """Whether the baseline serial replay can run ``memory`` natively.

        The baseline session runner
        (:mod:`repro.engine.baseline_session`) probes memories through the
        bi-directional serial interface rather than word-wide march ops;
        backends that cannot model that access path return ``False`` and
        the runner localizes those memories through the pure-Python scheme
        instead.
        """
        return False

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend's dependencies are importable."""
        return True


class ReferenceBackend(MarchBackend):
    """The pure-Python cell-by-cell reference simulator."""

    name = "reference"

    def __init__(self, stop_on_first_failure: bool = False) -> None:
        self._simulator = MarchSimulator(stop_on_first_failure)

    def run(self, memory: SRAM, algorithm: MarchAlgorithm) -> MarchResult:
        return self._simulator.run(memory, algorithm)

    def supports_baseline(self, memory: SRAM) -> bool:
        return True


class NumpyBackend(MarchBackend):
    """Bit-parallel backend packing word columns into uint64 lane arrays."""

    name = "numpy"

    def __init__(self, stop_on_first_failure: bool = False) -> None:
        # Selecting this backend *explicitly* without numpy is an error;
        # only the "auto" selector degrades silently.
        require_numpy("the numpy march backend")
        #: Early-stop semantics change mid-element side effects, so the
        #: vector path refuses them and delegates to the reference.
        self.stop_on_first_failure = stop_on_first_failure
        self._fallback = ReferenceBackend(stop_on_first_failure)

    @classmethod
    def is_available(cls) -> bool:
        return HAVE_NUMPY

    def supports(self, memory: SRAM) -> bool:
        return not self.stop_on_first_failure and vector_capable(memory)

    def supports_baseline(self, memory: SRAM) -> bool:
        # The sparse serial replay assumes an ideal address/column path and
        # no access tracing; early-stop has no serial-path meaning, so it
        # does not disqualify a memory here.
        return vector_capable(memory)

    def run(self, memory: SRAM, algorithm: MarchAlgorithm) -> MarchResult:
        if not self.supports(memory):
            return self._fallback.run(memory, algorithm)
        from repro.engine.kernel import (
            ElementPlan,
            OpPlan,
            pack_memory,
            run_element,
            sync_clean_rows,
        )

        require(
            algorithm.bits == memory.bits,
            f"algorithm width {algorithm.bits} != memory width {memory.bits}",
        )
        words, bits = memory.words, memory.bits
        state, clean_mask, dirty_mask, lanes = pack_memory(memory)

        result = MarchResult(algorithm.name, memory.name)
        start_cycles = memory.timebase.cycles
        start_ns = memory.now_ns
        for step_index, step in enumerate(algorithm.steps):
            if isinstance(step, PauseStep):
                memory.pause(step.duration_ns)
                continue
            element = step.element
            ops = tuple(
                OpPlan(
                    op=op,
                    operation=op.notation(),
                    write_word=None if op.is_read else op.word_for(step.background, bits),
                    expected_plain=op.word_for(step.background, bits) if op.is_read else None,
                    expected_wrapped=op.word_for(step.background, bits) if op.is_read else None,
                    tick_cost=1,
                )
                for op in element.operations
            )
            plan = ElementPlan(
                step_index=step_index,
                step_label=step.label or element.notation(),
                record_background=step.background,
                deliver_ticks=0,
                ascending=element.order is not AddressOrder.DOWN,
                sweep_length=words,
                ops=ops,
            )
            result.failures.extend(
                run_element(memory, state, clean_mask, dirty_mask, plan, lanes)
            )

        sync_clean_rows(memory, state, clean_mask)
        result.cycles = memory.timebase.cycles - start_cycles
        result.elapsed_ns = memory.now_ns - start_ns
        return result


# --------------------------------------------------------------------- #
# Registry                                                              #
# --------------------------------------------------------------------- #
_REGISTRY: dict[str, Callable[..., MarchBackend]] = {}


def register_backend(
    name: str, factory: Callable[..., MarchBackend], overwrite: bool = False
) -> None:
    """Register a backend factory under ``name``."""
    require(bool(name), "backend name must be non-empty")
    require(
        overwrite or name not in _REGISTRY,
        f"backend {name!r} is already registered",
    )
    _REGISTRY[name] = factory


def available_backends() -> dict[str, bool]:
    """Registered backend names mapped to their availability."""
    return {
        name: bool(getattr(factory, "is_available", lambda: True)())
        for name, factory in sorted(_REGISTRY.items())
    }


def get_backend(name: str = "auto", **kwargs) -> MarchBackend:
    """Instantiate a registered backend by name.

    ``auto`` selects the numpy backend when numpy is importable and the
    reference otherwise, so callers can opt into speed without a hard
    dependency.
    """
    if name == "auto":
        name = "numpy" if HAVE_NUMPY else "reference"
    require(name in _REGISTRY, f"unknown backend {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def resolve_backend(backend: str | MarchBackend | None) -> MarchBackend:
    """Coerce a backend spec (name, instance or None) into an instance."""
    if backend is None:
        return get_backend("auto")
    if isinstance(backend, MarchBackend):
        return backend
    return get_backend(backend)


register_backend("reference", ReferenceBackend)
register_backend("numpy", NumpyBackend)
register_backend("fast", NumpyBackend)
