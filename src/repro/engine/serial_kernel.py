"""Sparse replay of the baseline's serial sweeps (multi-iteration kernel).

The Huang-Jone bit-accurate mode drags every cell of every word through
the bi-directional serial interface: one probe is two full sweeps (fill +
observe-while-refill) of ``2 * n * c`` behavioural accesses each, and the
iterate-repair loop repeats three probes per shift direction for up to k
iterations.  Almost all of that work is spent on *clean* words -- words no
fault hook can touch (:meth:`repro.memory.SRAM.hooked_words`) -- whose
behaviour is closed-form:

* a serial fill leaves exactly the target pattern stored;
* the observation stream a clean word emits while being refilled is the
  bit sequence of the pattern it held, MSB-first for right shifts and
  LSB-first for left shifts.

So the fast path replays only the fault-hooked words through the real
:class:`~repro.serial.bidirectional.BidirectionalSerialInterface` -- with
the shared time base fast-forwarded to the cycle each word's visit starts
at in the reference, so time-dependent faults observe identical clocks --
and accounts for every clean word arithmetically.  Clean words cannot
contribute a stream mismatch (their emissions equal the good-machine
model by construction), so mismatch scanning over the dirty words alone
is exact.
"""

from __future__ import annotations

from repro.engine.packing import np
from repro.serial.bidirectional import BidirectionalSerialInterface
from repro.serial.shift_register import ShiftDirection
from repro.memory.sram import SRAM
from repro.telemetry.core import tracer as _tracer

__all__ = [
    "expected_stream",
    "serial_fill_sweep",
    "serial_observe_sweep",
    "sync_clean_serial_words",
]

#: Behavioural cycles one serial cycle consumes (one read + one write).
TICKS_PER_SERIAL_CYCLE = 2


def expected_stream(pattern: int, bits: int, direction: ShiftDirection):
    """Observation stream a fault-free word holding ``pattern`` emits.

    During a serial refill, cycle ``j`` of a right shift emits bit
    ``bits - 1 - j`` of the previously stored word; a left shift emits bit
    ``j``.  Returned as a uint8 array for vector comparison.
    """
    if direction is ShiftDirection.RIGHT:
        order = range(bits - 1, -1, -1)
    else:
        order = range(bits)
    return np.array([(pattern >> i) & 1 for i in order], dtype=np.uint8)


def serial_fill_sweep(
    memory: SRAM,
    dirty_rows: list[int],
    pattern: int,
    direction: ShiftDirection,
) -> None:
    """One ascending serial fill sweep, replaying only the dirty rows.

    Equivalent to ``BidirectionalSerialInterface(memory).fill_all(pattern,
    direction)`` on a memory whose clean rows are ideal: each dirty row is
    shifted behaviourally at its exact reference cycle offset and the
    clean rows' share of the sweep is pure clocking.  Clean-row *state* is
    not updated here -- it is closed-form (``pattern``) and only the last
    sweep's value is observable, so callers sync it once per probe via
    :func:`sync_clean_serial_words`.
    """
    tr = _tracer()
    if tr.enabled and dirty_rows:
        tr.counters.add("serial.fill_words", len(dirty_rows))
    per_word = TICKS_PER_SERIAL_CYCLE * memory.bits
    timebase = memory.timebase
    base = timebase.cycles
    interface = BidirectionalSerialInterface(memory)
    for row in dirty_rows:
        timebase.tick(base + row * per_word - timebase.cycles)
        interface.fill_word(row, pattern, direction)
    timebase.tick(base + memory.words * per_word - timebase.cycles)


def serial_observe_sweep(
    memory: SRAM,
    dirty_rows: list[int],
    refill: int,
    direction: ShiftDirection,
    expected,
) -> tuple[int, int] | None:
    """One ascending observe-while-refill sweep over the dirty rows.

    Returns the first stream mismatch as ``(address, cycle)`` -- first by
    address, then by serial cycle, exactly the reference's scan order --
    or ``None``.  ``expected`` is the fault-free stream from
    :func:`expected_stream`.  Every dirty row is replayed even after a
    mismatch (the reference completes its sweeps too, and skipping would
    leave stale state behind for the next probe's state-dependent
    faults).
    """
    tr = _tracer()
    if tr.enabled and dirty_rows:
        tr.counters.add("serial.observe_words", len(dirty_rows))
    per_word = TICKS_PER_SERIAL_CYCLE * memory.bits
    timebase = memory.timebase
    base = timebase.cycles
    interface = BidirectionalSerialInterface(memory)
    mismatch: tuple[int, int] | None = None
    for row in dirty_rows:
        timebase.tick(base + row * per_word - timebase.cycles)
        observed = interface.fill_word(row, refill, direction)
        if mismatch is None:
            hits = np.nonzero(np.array(observed, dtype=np.uint8) != expected)[0]
            if hits.size:
                mismatch = (row, int(hits[0]))
    timebase.tick(base + memory.words * per_word - timebase.cycles)
    return mismatch


def sync_clean_serial_words(memory: SRAM, pattern: int) -> None:
    """Store ``pattern`` into every clean word (the closed-form fill result)."""
    dirty = memory.hooked_words()
    for row in range(memory.words):
        if row not in dirty:
            memory.force_store_word(row, pattern)
