"""High-throughput batch diagnosis engine.

The engine is the execution layer above the paper's single-session models:

* :mod:`repro.engine.backends` -- registry of interchangeable march
  simulation backends (pure-Python reference, numpy bit-parallel);
* :mod:`repro.engine.batched` -- the fleet tier: same-geometry memories
  stacked into one ``(n_mem, words, lanes)`` array, each march element a
  single fleet-wide vector op, selected by the geometry-bucketing planner;
* :mod:`repro.engine.session` -- fast, bit-exact execution of a full
  proposed-scheme diagnosis session;
* :mod:`repro.engine.baseline_session` -- fast, bit-exact execution of the
  baseline's iterative DIAG-RSMARCH diagnosis flow (sparse serial replay
  via :mod:`repro.engine.serial_kernel`);
* :mod:`repro.engine.fleet` -- campaign fan-out over a multiprocessing
  worker pool with deterministic per-campaign seeding;
* :mod:`repro.engine.checkpoint` -- content-addressed persistence of
  finished chunks, making fleet and scenario runs resumable;
* :mod:`repro.engine.aggregate` -- streaming reduction of campaign results
  into fleet-level statistics.

Every layer is instrumented with :mod:`repro.telemetry` sites (spans and
counters behind one ``if tracer.enabled`` gate); scheduling a fleet with
``telemetry=True`` attaches the merged per-lane attribution and
scheduler stats to the returned report.
"""

from repro.engine.aggregate import (
    CampaignSummary,
    FleetReport,
    StreamingStats,
)
from repro.engine.backends import (
    MarchBackend,
    NumpyBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.engine.batched import (
    BatchedBackend,
    GeometryBucket,
    geometry_buckets,
    plan_session_buckets,
    run_batched_session,
)
from repro.engine.checkpoint import (
    CheckpointError,
    CheckpointStore,
    RingCheckpointStore,
)
from repro.engine.fault_table import (
    BucketLanes,
    CompiledFaultTable,
    lower_bucket,
    partition_faults,
)
from repro.engine.fleet import (
    FleetScheduler,
    FleetSpec,
    plan_spec_backend,
    run_campaign,
    run_fleet,
)
from repro.engine.supervisor import (
    ChunkExecutionError,
    ChunkFailure,
    ChunkRetryPolicy,
)
from repro.engine.baseline_session import run_baseline_session
from repro.engine.packing import HAVE_NUMPY
from repro.engine.session import plan_cache_stats, reset_plan_cache, run_session

__all__ = [
    "BatchedBackend",
    "BucketLanes",
    "CampaignSummary",
    "CheckpointError",
    "CheckpointStore",
    "RingCheckpointStore",
    "ChunkExecutionError",
    "ChunkFailure",
    "ChunkRetryPolicy",
    "CompiledFaultTable",
    "FleetReport",
    "FleetScheduler",
    "FleetSpec",
    "GeometryBucket",
    "HAVE_NUMPY",
    "MarchBackend",
    "NumpyBackend",
    "ReferenceBackend",
    "StreamingStats",
    "available_backends",
    "geometry_buckets",
    "get_backend",
    "lower_bucket",
    "partition_faults",
    "plan_cache_stats",
    "plan_session_buckets",
    "plan_spec_backend",
    "register_backend",
    "reset_plan_cache",
    "resolve_backend",
    "run_batched_session",
    "run_baseline_session",
    "run_campaign",
    "run_fleet",
    "run_session",
]
