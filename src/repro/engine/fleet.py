"""Fleet scheduler: fan a campaign spec out over a worker pool.

The unit of work is one :class:`~repro.core.campaign.DiagnosisCampaign`
(inject -> diagnose -> repair -> verify on one SoC build).  A
:class:`FleetSpec` describes a whole *population* of such campaigns --
same SoC shape and defect rate, one derived seed per campaign -- and the
:class:`FleetScheduler` executes them:

* campaign seeds derive deterministically from the master seed via
  :func:`repro.util.rng.derive_seed`, so results are identical no matter
  how many workers run or which worker picks up which chunk;
* campaigns are grouped into chunks that a ``multiprocessing`` pool
  consumes (``workers <= 1`` runs inline, which is also the fallback when
  a pool cannot be spawned); the pool is closed and joined on every exit
  path, including worker failures and consumers abandoning the stream;
* finished chunks stream into a :class:`~repro.engine.aggregate.FleetReport`
  in campaign order (out-of-order chunks are buffered briefly), keeping
  aggregation deterministic and memory bounded;
* an ``auto`` backend is resolved once per run through the
  geometry-bucketing planner (:mod:`repro.engine.batched`): SoCs where
  several memories share a geometry upgrade to the fleet-batched backend,
  everything else keeps the per-memory numpy/reference choice;
* with a :class:`~repro.engine.checkpoint.CheckpointStore` attached,
  every finished chunk is persisted immediately and ``resume=True`` skips
  chunks the store already holds, reproducing the uninterrupted run's
  deterministic report content exactly.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Iterator

from repro.core.campaign import DiagnosisCampaign
from repro.engine.aggregate import CampaignSummary, FleetReport
from repro.engine.checkpoint import CheckpointError, CheckpointStore, spec_digest
from repro.engine.packing import HAVE_NUMPY
from repro.engine.supervisor import (
    ChunkExecutionError,
    ChunkFailure,
    ChunkRetryPolicy,
    ChunkSupervisor,
    set_current_attempt,
)
from repro.faults.defects import DefectProfile, DefectType
from repro.memory.geometry import MemoryGeometry
from repro.soc.case_study import case_study_soc
from repro.soc.chip import SoCConfig
from repro.telemetry.core import Tracer, activate, deactivate, set_tracer
from repro.telemetry.core import tracer as _tracer
from repro.telemetry.report import TelemetryReport
from repro.util.records import Record
from repro.util.rng import derive_seed
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class FleetSpec(Record):
    """A reproducible population of diagnosis campaigns.

    Only primitives live here so the spec pickles cheaply to workers; each
    worker materializes its own :class:`~repro.soc.chip.SoCConfig`.
    """

    soc: str = "case-study"
    memories: int = 8
    heterogeneous: bool = True
    period_ns: float = 10.0
    campaigns: int = 8
    defect_rate: float = 0.005
    master_seed: int = 0
    spares_per_memory: int = 32
    include_baseline: bool = True
    repair: bool = True
    backend: str = "auto"
    #: Optional uniform geometry override: every memory becomes a
    #: ``(words, bits)`` instance (the X2 geometry matrix axis).
    geometry: tuple[int, int] | None = None
    #: Optional defect-class mix, one weight per
    #: :class:`~repro.faults.defects.DefectType` in declaration order
    #: (node-short, access-open, cell-bridge, pullup-open); ``None`` keeps
    #: the paper's equal-likelihood profile (the X3 fault-mix axis).
    defect_weights: tuple[float, float, float, float] | None = None
    #: Run baseline sessions in bit-accurate serial-replay mode (exact but
    #: ``O(k n c)``; meant for small geometries).
    baseline_bit_accurate: bool = False

    def __post_init__(self) -> None:
        require(self.soc in ("case-study", "buffer-cluster"), f"unknown SoC {self.soc!r}")
        require_positive(self.campaigns, "campaigns")
        require(0.0 <= self.defect_rate <= 1.0, "defect_rate must be in [0, 1]")
        if self.geometry is not None:
            require(
                len(self.geometry) == 2,
                "geometry must be a (words, bits) pair",
            )
        if self.defect_weights is not None:
            require(
                len(self.defect_weights) == len(DefectType),
                f"defect_weights needs one weight per defect class "
                f"({len(DefectType)}), got {len(self.defect_weights)}",
            )

    def build_soc(self) -> SoCConfig:
        """Materialize the SoC configuration this fleet diagnoses."""
        if self.geometry is not None:
            words, bits = self.geometry
            return SoCConfig(
                name=f"uniform-{words}x{bits}",
                geometries=[
                    MemoryGeometry(words, bits, f"esram_{i}")
                    for i in range(self.memories)
                ],
                period_ns=self.period_ns,
            )
        if self.soc == "buffer-cluster":
            return SoCConfig.buffer_cluster(period_ns=self.period_ns)
        return case_study_soc(
            memories=self.memories,
            heterogeneous=self.heterogeneous,
            period_ns=self.period_ns,
        )

    def build_profile(self) -> DefectProfile | None:
        """Materialize the defect profile (``None`` = paper default)."""
        if self.defect_weights is None:
            return None
        return DefectProfile(
            weights=dict(zip(DefectType, self.defect_weights))
        )

    def campaign_seed(self, index: int) -> int:
        """Deterministic seed of campaign ``index`` (worker-independent)."""
        return derive_seed(self.master_seed, index)


def run_campaign(spec: FleetSpec, index: int) -> CampaignSummary:
    """Execute one campaign of the fleet and summarize it."""
    from repro.engine.session import plan_cache_stats

    seed = spec.campaign_seed(index)
    campaign = DiagnosisCampaign(
        spec.build_soc(),
        defect_rate=spec.defect_rate,
        seed=seed,
        spares_per_memory=spec.spares_per_memory,
        backend=spec.backend,
        profile=spec.build_profile(),
        baseline_bit_accurate=spec.baseline_bit_accurate,
    )
    hits_before, misses_before = plan_cache_stats()
    report = campaign.run(
        include_baseline=spec.include_baseline, repair=spec.repair
    )
    hits_after, misses_after = plan_cache_stats()
    return CampaignSummary.from_report(
        index,
        seed,
        report,
        plan_cache_hits=hits_after - hits_before,
        plan_cache_misses=misses_after - misses_before,
    )


def run_chunk(spec: FleetSpec, indices: tuple[int, ...]) -> list[CampaignSummary]:
    """Worker entry point: run a chunk of campaigns sequentially."""
    return [run_campaign(spec, index) for index in indices]


def chunked_indices(campaigns: int, chunk_size: int) -> list[tuple[int, ...]]:
    """Split campaign indices into contiguous chunks."""
    require_positive(chunk_size, "chunk_size")
    return [
        tuple(range(start, min(start + chunk_size, campaigns)))
        for start in range(0, campaigns, chunk_size)
    ]


class IncompleteChunkStream(ValueError):
    """The completion stream ended before every submitted chunk arrived."""


def reorder_chunks(
    completions: Iterable[tuple[int, "list[CampaignSummary]"]],
    total_chunks: int,
) -> Iterator["list[CampaignSummary]"]:
    """Re-emit completion-order chunk results in submission order.

    Workers finish chunks in whatever order the pool schedules them;
    aggregation must stay campaign-ordered to be deterministic.  This
    buffer holds only the results that completed ahead of the
    head-of-line chunk and flushes them as soon as the gap fills, so
    parent-side memory stays bounded by the pool's natural skew.

    Raises if a chunk index arrives twice or never arrives -- a worker
    protocol violation that must not be silently aggregated over.
    """
    require(total_chunks >= 0, "total_chunks must be >= 0")
    buffered: dict[int, list[CampaignSummary]] = {}
    next_index = 0
    for chunk_index, summaries in completions:
        require(
            0 <= chunk_index < total_chunks,
            f"chunk index {chunk_index} outside [0, {total_chunks})",
        )
        require(
            chunk_index >= next_index and chunk_index not in buffered,
            f"chunk {chunk_index} completed twice",
        )
        buffered[chunk_index] = summaries
        while next_index in buffered:
            yield buffered.pop(next_index)
            next_index += 1
    if next_index != total_chunks or buffered:
        raise IncompleteChunkStream(
            f"missing chunk results: got {next_index} of {total_chunks} "
            f"contiguous chunks ({len(buffered)} stranded out of order)"
        )


def _run_indexed_chunk(
    chunk_runner: "ChunkRunner",
    spec,
    telemetry_enabled: bool,
    item: tuple[int, tuple[int, ...]],
) -> tuple[int, list[CampaignSummary], dict | None]:
    """Pool task: run one chunk and tag it with its submission index.

    With telemetry enabled the worker activates a *fresh* tracer for the
    chunk (fork inherits the parent's tracer object; reusing it would
    double-count the parent's spans in every snapshot), traces the chunk
    as one ``fleet.chunk`` span and ships the tracer snapshot back with
    the summaries for the scheduler to merge.
    """
    chunk_index, indices = item
    if not telemetry_enabled:
        return chunk_index, chunk_runner(spec, indices), None
    tracer = activate()
    try:
        started = time.perf_counter_ns()
        with tracer.span(
            "fleet.chunk", "fleet", chunk=chunk_index, campaigns=len(indices)
        ):
            summaries = chunk_runner(spec, indices)
        tracer.counters.add(
            "fleet.worker_busy.ns", time.perf_counter_ns() - started
        )
        return chunk_index, summaries, tracer.snapshot()
    finally:
        deactivate()


#: A chunk runner maps ``(spec, campaign_indices)`` to summaries; it must
#: be a picklable module-level callable so worker pools can import it.
ChunkRunner = Callable[..., "list[CampaignSummary]"]


def plan_spec_backend(spec):
    """Resolve a spec's ``auto`` backend through the geometry planner.

    Returns the spec itself unless it asks for ``auto``, numpy is
    importable and the SoC has at least one geometry bucket of two or
    more memories -- in which case a copy requesting the fleet-batched
    backend is returned (bit-exact, so only throughput changes).  Spec-like
    objects without a ``backend``/``build_soc`` contract pass through
    untouched.
    """
    if (
        getattr(spec, "backend", None) != "auto"
        or not HAVE_NUMPY
        or not dataclasses.is_dataclass(spec)
        or not hasattr(spec, "build_soc")
    ):
        return spec
    from repro.engine.batched import batched_backend_pays_off

    if batched_backend_pays_off(spec.build_soc().geometries):
        return dataclasses.replace(spec, backend="batched")
    return spec


class FleetScheduler:
    """Executes a campaign population over a local worker pool.

    The default configuration runs :class:`FleetSpec` campaigns via
    :func:`run_chunk`; any spec-like object exposing ``campaigns`` can be
    scheduled by passing a custom ``chunk_runner`` (the scenario engine
    schedules :class:`~repro.scenarios.spec.ScenarioSpec` flows this way),
    so seeding, chunking, pooling, checkpointing and ordered aggregation
    exist once.

    ``checkpoint`` (a directory path or a prepared
    :class:`~repro.engine.checkpoint.CheckpointStore`) persists every
    finished chunk; ``resume=True`` additionally loads chunks the store
    already holds instead of recomputing them.  Stale or corrupt stores
    raise :class:`~repro.engine.checkpoint.CheckpointError` up front.

    ``telemetry=True`` traces the run -- engine spans and counters in
    every worker, scheduler-level utilization and queue-wait accounting
    in the parent -- and attaches the merged
    :class:`~repro.telemetry.report.TelemetryReport` to the returned
    report.  Telemetry is deliberately *not* part of the spec: it changes
    no result byte and no checkpoint byte, so a run may toggle it freely
    across interrupt/resume cycles.
    """

    def __init__(
        self,
        spec,
        workers: int | None = None,
        chunk_size: int | None = None,
        chunk_runner: ChunkRunner | None = None,
        checkpoint: "CheckpointStore | str | os.PathLike | None" = None,
        resume: bool = False,
        telemetry: bool = False,
        retry: ChunkRetryPolicy | None = None,
        on_chunk_failure: str = "raise",
    ) -> None:
        # An ``auto`` backend is pinned here, before chunks fan out, so
        # every worker -- and the checkpoint digest -- sees one concrete
        # backend choice.
        self.spec = plan_spec_backend(spec)
        self.chunk_runner: ChunkRunner = chunk_runner or run_chunk
        self.workers = self._resolve_workers(workers)
        self.telemetry = bool(telemetry)
        require(
            on_chunk_failure in ("raise", "quarantine"),
            f"on_chunk_failure must be 'raise' or 'quarantine', "
            f"got {on_chunk_failure!r}",
        )
        self.on_chunk_failure = on_chunk_failure
        self.retry = retry if retry is not None else ChunkRetryPolicy()
        #: :class:`~repro.engine.supervisor.ChunkFailure` records of the
        #: chunks quarantined by the last run/stream (empty when strict
        #: mode is active or nothing failed).
        self.last_failures: list[ChunkFailure] = []
        self._telemetry_report: TelemetryReport | None = None
        #: Telemetry merged by the last :meth:`stream` consumption (also
        #: set on early close); ``None`` until a stream ends.
        self.last_telemetry: TelemetryReport | None = None
        if chunk_size is None and checkpoint is not None:
            # The implicit default below depends on the worker count (and
            # so on the machine); a resume must reproduce the original
            # chunk partition, so adopt the store's recorded chunk size.
            if isinstance(checkpoint, CheckpointStore):
                chunk_size = checkpoint.chunk_size
            else:
                manifest = CheckpointStore.peek_manifest(checkpoint)
                if manifest is not None and isinstance(
                    manifest.get("chunk_size"), int
                ):
                    chunk_size = manifest["chunk_size"]
        if chunk_size is None:
            # Aim for a few chunks per worker so stragglers rebalance.
            chunk_size = max(1, self.spec.campaigns // max(1, self.workers * 4))
        require_positive(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.resume = resume
        if checkpoint is None:
            require(not resume, "resume=True requires a checkpoint store")
            self.checkpoint: CheckpointStore | None = None
        elif isinstance(checkpoint, CheckpointStore):
            # A prepared store must still belong to *this* run: loading
            # another spec's chunks would silently aggregate wrong data.
            total = len(chunked_indices(self.spec.campaigns, self.chunk_size))
            expected = spec_digest(self.spec, self.chunk_size, total)
            if checkpoint.digest != expected:
                raise CheckpointError(
                    f"checkpoint store digest {checkpoint.digest!r} does not "
                    f"match this scheduler's spec/chunking digest "
                    f"{expected!r}; build the store from the same spec"
                )
            self.checkpoint = checkpoint
        else:
            total = len(chunked_indices(self.spec.campaigns, self.chunk_size))
            self.checkpoint = CheckpointStore(
                checkpoint, self.spec, self.chunk_size, total
            )

    @staticmethod
    def _resolve_workers(workers: int | None) -> int:
        if workers is None:
            return max(1, (os.cpu_count() or 2) - 1)
        require(workers >= 0, "workers must be >= 0")
        return max(1, workers)

    def run(
        self, progress: Callable[[int, int], None] | None = None
    ) -> FleetReport:
        """Run every campaign and return the aggregated fleet report.

        ``progress`` (optional) is called with ``(done, total)`` after each
        chunk completes.
        """
        chunks = chunked_indices(self.spec.campaigns, self.chunk_size)
        report = FleetReport()
        parent_tracer: Tracer | None = None
        previous_tracer = None
        if self.telemetry:
            # The parent traces checkpoint reads, inline chunks and its
            # own queue waits; workers ship their snapshots via the chunk
            # protocol.  The previous tracer is restored on every exit so
            # nested/bench-driven runs compose.
            self._telemetry_report = TelemetryReport()
            parent_tracer = Tracer()
            previous_tracer = set_tracer(parent_tracer)
        started = time.perf_counter()
        done = 0
        stream = self._stream_chunks(chunks)
        try:
            for chunk in stream:
                for summary in chunk:
                    report.add(summary)
                done += len(chunk)
                if progress is not None:
                    progress(done, self.spec.campaigns)
        finally:
            # Deterministically unwind the stream (and with it the worker
            # pool) even when aggregation or the progress callback raises.
            stream.close()
            if previous_tracer is not None:
                set_tracer(previous_tracer)
        report.elapsed_s = time.perf_counter() - started
        if self.last_failures:
            report.failures = [
                failure.block_entry()
                for failure in sorted(
                    self.last_failures, key=lambda f: f.chunk_index
                )
            ]
        if parent_tracer is not None:
            telemetry_report = self._telemetry_report
            self._telemetry_report = None
            counters = parent_tracer.counters
            counters.add("fleet.workers", self.workers)
            counters.add("fleet.elapsed.ns", int(report.elapsed_s * 1e9))
            telemetry_report.merge_tracer(parent_tracer)
            # Promote the plan-cache traffic into the telemetry channel
            # (the FleetReport fields stay as aliases for --json users).
            telemetry_report.counters.add("plan_cache.hits", report.plan_cache_hits)
            telemetry_report.counters.add(
                "plan_cache.misses", report.plan_cache_misses
            )
            report.telemetry = telemetry_report
        return report

    def stream(
        self, progress: Callable[[int, int], None] | None = None
    ) -> Iterator[list[CampaignSummary]]:
        """Yield chunk results in submission order, one chunk at a time.

        The iterator form of :meth:`run`: no terminal report is built,
        so long-running consumers (the streaming monitor) aggregate
        however they like and may stop whenever they like --
        ``break``-ing out (or calling ``close()``) is the *normal* way
        to end consumption, and tears the worker pool down immediately
        without draining in-flight chunks and without orphaning
        workers.  Checkpointing and resume behave exactly as in
        :meth:`run`.  With ``telemetry=True`` the merged
        :class:`~repro.telemetry.report.TelemetryReport` is published on
        ``self.last_telemetry`` once the stream ends (fully consumed or
        closed early).
        """
        chunks = chunked_indices(self.spec.campaigns, self.chunk_size)
        parent_tracer: Tracer | None = None
        previous_tracer = None
        if self.telemetry:
            self._telemetry_report = TelemetryReport()
            parent_tracer = Tracer()
            previous_tracer = set_tracer(parent_tracer)
        self.last_telemetry = None
        started = time.perf_counter()
        done = 0
        inner = self._stream_chunks(chunks)
        try:
            for chunk in inner:
                yield chunk
                done += len(chunk)
                if progress is not None:
                    progress(done, self.spec.campaigns)
        finally:
            inner.close()
            if previous_tracer is not None:
                set_tracer(previous_tracer)
            if parent_tracer is not None:
                telemetry_report = self._telemetry_report
                self._telemetry_report = None
                counters = parent_tracer.counters
                counters.add("fleet.workers", self.workers)
                counters.add(
                    "fleet.elapsed.ns",
                    int((time.perf_counter() - started) * 1e9),
                )
                telemetry_report.merge_tracer(parent_tracer)
                self.last_telemetry = telemetry_report

    def _stream_chunks(
        self, chunks: list[tuple[int, ...]]
    ) -> Iterator[list[CampaignSummary]]:
        """Yield chunk results in submission order (deterministic)."""
        self.last_failures = []
        tr = _tracer()
        loaded: set[int] = set()
        recovered: list[int] = []
        if self.checkpoint is not None and self.resume:
            loaded = set(self.checkpoint.completed_chunks())
            if self.on_chunk_failure == "quarantine":
                # Recovery path: a corrupt or stale chunk file fails the
                # whole resume in strict mode; in quarantine mode the bad
                # file is set aside and just that chunk re-runs.  Chunks
                # are pure functions of (spec, indices), so the re-run
                # reproduces the lost bytes exactly.
                for index in sorted(loaded):
                    try:
                        self.checkpoint.load(index, expected_indices=chunks[index])
                    except CheckpointError:
                        self.checkpoint.quarantine_chunk(index)
                        loaded.discard(index)
                        recovered.append(index)
        pending = [
            (index, chunk)
            for index, chunk in enumerate(chunks)
            if index not in loaded
        ]
        if tr.enabled:
            tr.counters.add("fleet.chunks", len(chunks))
            tr.counters.add("fleet.chunks_resumed", len(loaded))
            # Fault-tolerance counters always exist under telemetry so
            # metrics consumers need not special-case the happy path.
            tr.counters.add("fleet.retries", 0)
            tr.counters.add("fleet.respawns", 0)
            tr.counters.add("fleet.quarantined", 0)
            tr.counters.add("fleet.chunks_recovered", len(recovered))
        ranks = {index: rank for rank, (index, _) in enumerate(pending)}
        executor = self._execute_pending(pending, chunks)
        # Pending results arrive in completion order; reorder_chunks
        # (over the dense pending ranks) restores their submission order
        # lazily, and persisted chunks are read only when the head of
        # line reaches them -- so the pool spins up immediately and
        # parent-side buffering stays bounded by pool skew, however the
        # loaded and freshly-run chunks interleave.  Worker telemetry
        # snapshots are merged here, in completion order (merging is
        # order-insensitive), before the ordering buffer.
        report = self._telemetry_report

        def completions():
            for index, summaries, snapshot in executor:
                if snapshot is not None and report is not None:
                    report.merge_snapshot(snapshot)
                yield ranks[index], summaries

        pending_ordered = reorder_chunks(completions(), len(pending))
        delivered = [0]

        def next_pending(index, chunk):
            # A pool that stops producing before every submitted chunk
            # came back is a worker-protocol violation; surface it with
            # the head-of-line chunk and the delivery counts instead of
            # reorder_chunks' context-free completeness error (or, worse,
            # PEP 479's opaque "generator raised StopIteration").
            try:
                result = next(pending_ordered)
            except (StopIteration, IncompleteChunkStream) as error:
                raise RuntimeError(
                    f"worker pool ended early: completed {delivered[0]} of "
                    f"{len(pending)} expected chunk results; head-of-line "
                    f"chunk {index} (campaigns {chunk[0]}..{chunk[-1]}) "
                    f"never arrived"
                ) from error
            delivered[0] += 1
            return result

        try:
            for index, chunk in enumerate(chunks):
                if index in loaded:
                    yield self.checkpoint.load(index, expected_indices=chunk)
                elif tr.enabled:
                    # Parent time blocked on the pool (for inline runs
                    # this equals execution time; with a pool it is the
                    # scheduler's idle wait for the head-of-line chunk).
                    wait_started = time.perf_counter_ns()
                    result = next_pending(index, chunk)
                    tr.counters.add(
                        "fleet.queue_wait.ns",
                        time.perf_counter_ns() - wait_started,
                    )
                    yield result
                else:
                    yield next_pending(index, chunk)
            # Only reached on full consumption: a consumer that breaks
            # out of the stream raises GeneratorExit at the ``yield``
            # above and skips straight to ``finally`` -- early close is a
            # supported exit, never a completeness violation.
            for _ in pending_ordered:  # runs reorder_chunks' completeness check
                raise ValueError("chunk stream yielded more chunks than submitted")
        finally:
            # Teardown order matters for early close: shut the executor
            # first (GeneratorExit lands in its pool loop, which
            # *terminates* the pool rather than draining remaining
            # results), then drop the ordering buffer.  An abandoned
            # stream therefore never blocks on in-flight chunks and
            # never orphans workers.
            executor.close()
            pending_ordered.close()

    def _execute_pending(
        self,
        pending: list[tuple[int, tuple[int, ...]]],
        chunks: list[tuple[int, ...]],
    ) -> Iterator[tuple[int, list[CampaignSummary], dict | None]]:
        """Run the not-yet-persisted chunks, saving each as it completes.

        Yields completion-order ``(chunk_index, summaries, snapshot)``
        triples; a quarantined chunk yields an empty summary list and is
        deliberately *not* persisted, so a later resume re-runs it.
        """
        if not pending:
            return
        if self.workers <= 1 or len(pending) <= 1:
            yield from self._execute_inline(pending)
            return
        context = self._pool_context()
        worker = partial(
            _run_indexed_chunk, self.chunk_runner, self.spec, self.telemetry
        )
        # One supervised process per chunk attempt (instead of a shared
        # Pool): a worker that segfaults, OOMs or ``os._exit``s surfaces
        # as pipe EOF and is respawned, rather than hanging the parent
        # on a result that will never come.  Checkpoints are written
        # here, in completion order, so an interrupt loses at most the
        # chunks still in flight.
        supervisor = ChunkSupervisor(
            context=context,
            workers=min(self.workers, len(pending)),
            task=worker,
            policy=self.retry,
            jitter_seed=getattr(self.spec, "master_seed", 0),
            quarantine=self.on_chunk_failure == "quarantine",
            failures=self.last_failures,
        )
        try:
            for index, summaries, snapshot in supervisor.results(pending):
                if summaries is None:
                    yield index, [], snapshot
                    continue
                self._persist(index, chunks[index], summaries)
                yield index, summaries, snapshot
        finally:
            tr = _tracer()
            if tr.enabled:
                tr.counters.add("fleet.retries", supervisor.retries)
                tr.counters.add("fleet.respawns", supervisor.respawns)
                tr.counters.add("fleet.quarantined", supervisor.quarantined)

    def _execute_inline(
        self, pending: list[tuple[int, tuple[int, ...]]]
    ) -> Iterator[tuple[int, "list[CampaignSummary] | None", dict | None]]:
        """Single-process execution with the same retry/quarantine story.

        Inline chunks run under the parent's tracer directly (no
        snapshot shipping), so spans nest into the parent timeline.
        Crash and hang supervision need a separate process, so inline
        mode retries only *exceptions* and ignores ``chunk_timeout_s``;
        ``KeyboardInterrupt`` always propagates.
        """
        tr = _tracer()
        for index, chunk in pending:
            attempts: list[tuple[str, str]] = []
            while True:
                set_current_attempt(len(attempts))
                try:
                    if tr.enabled:
                        busy_started = time.perf_counter_ns()
                        with tr.span(
                            "fleet.chunk", "fleet",
                            chunk=index, campaigns=len(chunk),
                        ):
                            summaries = self.chunk_runner(self.spec, chunk)
                        tr.counters.add(
                            "fleet.worker_busy.ns",
                            time.perf_counter_ns() - busy_started,
                        )
                    else:
                        summaries = self.chunk_runner(self.spec, chunk)
                except Exception as error:  # noqa: BLE001 -- retried below
                    attempts.append(
                        ("exception", f"{type(error).__name__}: {error}")
                    )
                    if len(attempts) < self.retry.max_attempts:
                        if tr.enabled:
                            tr.counters.add("fleet.retries", 1)
                        time.sleep(
                            self.retry.delay_s(
                                getattr(self.spec, "master_seed", 0),
                                index,
                                len(attempts),
                            )
                        )
                        continue
                    failure = ChunkFailure(
                        chunk_index=index,
                        campaign_indices=tuple(chunk),
                        error_kinds=tuple(kind for kind, _ in attempts),
                        details=tuple(detail for _, detail in attempts),
                    )
                    if self.on_chunk_failure != "quarantine":
                        raise ChunkExecutionError(failure) from error
                    self.last_failures.append(failure)
                    if tr.enabled:
                        tr.counters.add("fleet.quarantined", 1)
                    summaries = None
                finally:
                    set_current_attempt(0)
                break
            if summaries is None:
                yield index, [], None
                continue
            self._persist(index, chunk, summaries)
            yield index, summaries, None

    def _persist(
        self,
        index: int,
        chunk: tuple[int, ...],
        summaries: list[CampaignSummary],
    ) -> None:
        if self.checkpoint is not None:
            self.checkpoint.save(index, chunk, summaries)

    @staticmethod
    def _pool_context():
        methods = multiprocessing.get_all_start_methods()
        override = os.environ.get("REPRO_START_METHOD")
        if override:
            # Fork-unsafe environments (threaded embedders, macOS system
            # frameworks) can force spawn/forkserver without code changes.
            require(
                override in methods,
                f"REPRO_START_METHOD={override!r} is not a supported start "
                f"method on this platform (available: {', '.join(methods)})",
            )
            return multiprocessing.get_context(override)
        # fork avoids re-importing the package per worker where available.
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_fleet(
    spec: FleetSpec,
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    checkpoint: "CheckpointStore | str | os.PathLike | None" = None,
    resume: bool = False,
    telemetry: bool = False,
    retry: ChunkRetryPolicy | None = None,
    on_chunk_failure: str = "raise",
    chunk_runner: ChunkRunner | None = None,
) -> FleetReport:
    """Convenience wrapper: schedule ``spec`` and aggregate the results."""
    return FleetScheduler(
        spec,
        workers=workers,
        chunk_size=chunk_size,
        chunk_runner=chunk_runner,
        checkpoint=checkpoint,
        resume=resume,
        telemetry=telemetry,
        retry=retry,
        on_chunk_failure=on_chunk_failure,
    ).run(progress)
