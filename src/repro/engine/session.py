"""Fast execution of a full proposed-scheme diagnosis session.

:meth:`repro.core.scheme.FastDiagnosisScheme.diagnose` walks every
controller address and operation in Python for every memory -- exact but
slow.  The session runner here produces the *same*
:class:`~repro.core.report.ProposedReport` (cycles, deliveries, NWRC count
and per-memory failure records, bit for bit and in the same list order)
by exploiting two structural facts:

* the cycle schedule of a session is closed-form -- it depends only on the
  algorithm and controller dimensions, never on the data read back;
* the memories never interact: each memory's observations depend only on
  its own faults, its local address wrap and the delivered backgrounds.

So the runner accounts the schedule arithmetically and simulates each
memory independently through the bit-parallel kernel
(:mod:`repro.engine.kernel`), replaying only fault-hooked words through
the behavioural access path.  Memories the vector path cannot represent
(decoder/column-mux faults, tracing) take a per-memory pure-Python path
that mirrors the reference loop exactly, and whole-session features the
fast path does not model (``bit_accurate``, ``early_abort``, protocol
monitors, missing numpy) delegate to ``scheme.diagnose`` itself.
"""

from __future__ import annotations

from repro.core.report import ProposedReport
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.backends import (
    MarchBackend,
    NumpyBackend,
    ReferenceBackend,
    resolve_backend,
)
from repro.engine.kernel import (
    ElementPlan,
    OpPlan,
    pack_memory,
    run_element,
    run_element_slow,
    sync_clean_rows,
)
from repro.engine.packing import HAVE_NUMPY
from repro.march.algorithm import MarchAlgorithm, PauseStep
from repro.march.element import AddressOrder
from repro.march.simulator import FailureRecord
from repro.memory.sram import SRAM
from repro.util.bitops import mask
from repro.util.validation import require


def run_session(
    scheme: FastDiagnosisScheme,
    backend: str | MarchBackend | None = "auto",
    bit_accurate: bool = False,
    early_abort: bool = False,
) -> ProposedReport:
    """Run one diagnosis session through the selected backend.

    With the reference backend (or any session feature the fast path does
    not model) this is exactly ``scheme.diagnose()``; with the numpy
    backend the same report is produced bit-identically but the per-word
    work is vectorized.  Session execution only knows these two
    strategies, so other (custom-registered) backend types are rejected
    rather than silently substituted -- use them through
    :meth:`~repro.engine.backends.MarchBackend.run` for raw march runs.
    """
    resolved = resolve_backend(backend)
    fast = (
        isinstance(resolved, NumpyBackend)
        and HAVE_NUMPY
        and not bit_accurate
        and not early_abort
        and scheme.monitor is None
        # Without the routed NWRTM wire the reference raises on the first
        # NWRC op; delegating keeps that behaviour (error included) exact.
        and scheme.control.drf_screening
    )
    if fast:
        return _run_fast_session(scheme)
    require(
        isinstance(resolved, (NumpyBackend, ReferenceBackend)),
        f"run_session supports the 'reference' and 'numpy' backends, "
        f"got {type(resolved).__name__}",
    )
    return scheme.diagnose(bit_accurate=bit_accurate, early_abort=early_abort)


def _run_fast_session(scheme: FastDiagnosisScheme) -> ProposedReport:
    algorithm = scheme.algorithm_factory(scheme.controller_bits)
    require(
        algorithm.bits == scheme.controller_bits,
        "algorithm must be generated for the controller width",
    )
    for comparator in scheme.comparators.values():
        comparator.reset()
    report = ProposedReport(
        algorithm_name=algorithm.name,
        controller_words=scheme.controller_words,
        controller_bits=scheme.controller_bits,
        period_ns=scheme.period_ns,
        failures={memory.name: [] for memory in scheme.bank},
    )

    # Closed-form schedule accounting (identical to the reference's
    # per-operation increments, summed).
    controller_words = scheme.controller_words
    controller_bits = scheme.controller_bits
    deliveries = 0
    nwrc_ops = 0
    for step in algorithm.steps:
        if isinstance(step, PauseStep):
            report.pause_ns += step.duration_ns
            continue
        element = step.element
        # Keep the element-start handshake counter in sync with the
        # reference (one trigger per March element).
        scheme.trigger.fire()
        scheme.trigger.element_done()
        if element.writes_anything:
            report.cycles += controller_bits
            deliveries += 1
        for op in element.operations:
            if op.is_read:
                report.cycles += controller_words * (1 + controller_bits)
            else:
                report.cycles += controller_words
                if op.is_nwrc:
                    nwrc_ops += controller_words

    for memory in scheme.bank:
        failures = _run_memory_session(scheme, memory, algorithm)
        report.failures[memory.name] = failures
        comparator = scheme.comparators[memory.name]
        comparator.failures.extend(failures)
        comparator.comparisons += controller_words * algorithm.reads_per_word()
        psc = scheme.pscs[memory.name]
        psc.captures += controller_words * algorithm.reads_per_word()
        psc.cycles += controller_words * algorithm.reads_per_word() * memory.bits

    scheme.background_gen.cycles += deliveries * controller_bits
    scheme.background_gen.deliveries += deliveries
    scheme.nwrtm.nwrc_ops += nwrc_ops
    report.deliveries = scheme.background_gen.deliveries
    report.nwrc_ops = scheme.nwrtm.nwrc_ops
    return report


def _run_memory_session(
    scheme: FastDiagnosisScheme, memory: SRAM, algorithm: MarchAlgorithm
) -> list[FailureRecord]:
    """Simulate one memory through the whole session, fast where possible."""
    bits = memory.bits
    comparator = scheme.comparators[memory.name]
    spc = scheme.spcs[memory.name]
    word_mask = mask(bits)
    vector = (
        not memory.trace
        and not memory.decoder.is_faulty
        and not memory.column_mux.is_faulty
    )
    if vector:
        state, clean_mask, dirty_mask, lanes = pack_memory(memory)

    failures: list[FailureRecord] = []
    for step_index, step in enumerate(algorithm.steps):
        if isinstance(step, PauseStep):
            memory.pause(step.duration_ns)
            continue
        element = step.element
        adapted = spc.expected_pattern(step.background, scheme.controller_bits)
        correct = step.background & word_mask
        ops = tuple(
            OpPlan(
                op=op,
                operation=op.notation(),
                write_word=None if op.is_read else op.word_for(adapted, bits),
                expected_plain=(
                    comparator.expected_word(element, op_index, correct, wrapped=False)
                    if op.is_read
                    else None
                ),
                expected_wrapped=(
                    comparator.expected_word(element, op_index, correct, wrapped=True)
                    if op.is_read
                    else None
                ),
                tick_cost=1 + scheme.controller_bits if op.is_read else 1,
            )
            for op_index, op in enumerate(element.operations)
        )
        plan = ElementPlan(
            step_index=step_index,
            step_label=step.label or element.notation(),
            record_background=correct,
            deliver_ticks=scheme.controller_bits if element.writes_anything else 0,
            ascending=element.order is not AddressOrder.DOWN,
            sweep_length=scheme.controller_words,
            ops=ops,
        )
        if vector:
            failures.extend(
                run_element(memory, state, clean_mask, dirty_mask, plan, lanes)
            )
        else:
            failures.extend(run_element_slow(memory, plan))

    if vector:
        sync_clean_rows(memory, state, clean_mask)
    return failures
