"""Fast execution of a full proposed-scheme diagnosis session.

:meth:`repro.core.scheme.FastDiagnosisScheme.diagnose` walks every
controller address and operation in Python for every memory -- exact but
slow.  The session runner here produces the *same*
:class:`~repro.core.report.ProposedReport` (cycles, deliveries, NWRC count
and per-memory failure records, bit for bit and in the same list order)
by exploiting two structural facts:

* the cycle schedule of a session is closed-form -- it depends only on the
  algorithm and controller dimensions, never on the data read back;
* the memories never interact: each memory's observations depend only on
  its own faults, its local address wrap and the delivered backgrounds.

So the runner accounts the schedule arithmetically and simulates each
memory independently through the bit-parallel kernel
(:mod:`repro.engine.kernel`), replaying only fault-hooked words through
the behavioural access path.  Memories the vector path cannot represent
(decoder/column-mux faults, tracing) take a per-memory pure-Python path
that mirrors the reference loop exactly, and whole-session features the
fast path does not model (``bit_accurate``, ``early_abort``, protocol
monitors, missing numpy) delegate to ``scheme.diagnose`` itself.

The fleet-batched tier (:mod:`repro.engine.batched`) shares this module's
plan building and schedule accounting but sweeps *stacks* of same-geometry
memories per vector op; ``run_session`` dispatches to it when the resolved
backend is the batched one.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.report import ProposedReport
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.backends import (
    MarchBackend,
    NumpyBackend,
    ReferenceBackend,
    resolve_backend,
    vector_capable,
)
from repro.engine.kernel import (
    ElementPlan,
    OpPlan,
    pack_memory,
    run_element,
    run_element_slow,
    sync_clean_rows,
)
from repro.engine.packing import HAVE_NUMPY
from repro.march.algorithm import MarchAlgorithm, PauseStep
from repro.march.element import AddressOrder
from repro.march.simulator import FailureRecord
from repro.memory.sram import SRAM
from repro.telemetry.core import tracer as _tracer
from repro.util.bitops import mask
from repro.util.validation import require


def run_session(
    scheme: FastDiagnosisScheme,
    backend: str | MarchBackend | None = "auto",
    bit_accurate: bool = False,
    early_abort: bool = False,
) -> ProposedReport:
    """Run one diagnosis session through the selected backend.

    With the reference backend (or any session feature the fast path does
    not model) this is exactly ``scheme.diagnose()``; with the numpy
    backend the same report is produced bit-identically but the per-word
    work is vectorized, and with the batched backend same-geometry
    memories are additionally swept as one stacked array per vector op.
    Session execution only knows these strategies, so other
    (custom-registered) backend types are rejected rather than silently
    substituted -- use them through
    :meth:`~repro.engine.backends.MarchBackend.run` for raw march runs.
    """
    resolved = resolve_backend(backend)
    fast = (
        isinstance(resolved, NumpyBackend)
        and HAVE_NUMPY
        and not bit_accurate
        and not early_abort
        and scheme.monitor is None
        # Without the routed NWRTM wire the reference raises on the first
        # NWRC op; delegating keeps that behaviour (error included) exact.
        and scheme.control.drf_screening
    )
    if fast:
        # Imported lazily: batched builds on this module's helpers.
        from repro.engine.batched import BatchedBackend, run_batched_session

        if isinstance(resolved, BatchedBackend):
            return run_batched_session(scheme)
        return _run_fast_session(scheme)
    require(
        isinstance(resolved, (NumpyBackend, ReferenceBackend)),
        f"run_session supports the 'reference', 'numpy' and 'batched' "
        f"backends, got {type(resolved).__name__}",
    )
    return scheme.diagnose(bit_accurate=bit_accurate, early_abort=early_abort)


def begin_session(scheme: FastDiagnosisScheme):
    """Common session shell: validate, reset, account the schedule.

    Returns ``(algorithm, report, deliveries, nwrc_ops)`` with the
    closed-form cycle schedule (identical to the reference's
    per-operation increments, summed) already folded into ``report`` and
    the element-start handshake counters fired.  Shared by the per-memory
    fast session below and the fleet-batched session runner.
    """
    algorithm = scheme.algorithm_factory(scheme.controller_bits)
    require(
        algorithm.bits == scheme.controller_bits,
        "algorithm must be generated for the controller width",
    )
    for comparator in scheme.comparators.values():
        comparator.reset()
    scheme.begin_ecc()
    report = ProposedReport(
        algorithm_name=algorithm.name,
        controller_words=scheme.controller_words,
        controller_bits=scheme.controller_bits,
        period_ns=scheme.period_ns,
        failures={memory.name: [] for memory in scheme.bank},
    )

    controller_words = scheme.controller_words
    controller_bits = scheme.controller_bits
    deliveries = 0
    nwrc_ops = 0
    for step in algorithm.steps:
        if isinstance(step, PauseStep):
            report.pause_ns += step.duration_ns
            continue
        element = step.element
        # Keep the element-start handshake counter in sync with the
        # reference (one trigger per March element).
        scheme.trigger.fire()
        scheme.trigger.element_done()
        if element.writes_anything:
            report.cycles += controller_bits
            deliveries += 1
        for op in element.operations:
            if op.is_read:
                report.cycles += controller_words * (1 + controller_bits)
            else:
                report.cycles += controller_words
                if op.is_nwrc:
                    nwrc_ops += controller_words
    return algorithm, report, deliveries, nwrc_ops


def finish_session(
    scheme: FastDiagnosisScheme,
    report: ProposedReport,
    deliveries: int,
    nwrc_ops: int,
) -> ProposedReport:
    """Fold the shared controller counters and close the report."""
    scheme.background_gen.cycles += deliveries * scheme.controller_bits
    scheme.background_gen.deliveries += deliveries
    scheme.nwrtm.nwrc_ops += nwrc_ops
    report.deliveries = scheme.background_gen.deliveries
    report.nwrc_ops = scheme.nwrtm.nwrc_ops
    report.ecc = scheme.ecc_summaries()
    return report


def finalize_memory_counters(
    scheme: FastDiagnosisScheme,
    memory: SRAM,
    failures: list[FailureRecord],
    reads_per_word: int,
) -> None:
    """Per-memory comparator/PSC bookkeeping, identical to the reference."""
    comparator = scheme.comparators[memory.name]
    comparator.failures.extend(failures)
    comparator.comparisons += scheme.controller_words * reads_per_word
    psc = scheme.pscs[memory.name]
    psc.captures += scheme.controller_words * reads_per_word
    psc.cycles += scheme.controller_words * reads_per_word * memory.bits


# --------------------------------------------------------------------- #
# Session plan cache                                                    #
# --------------------------------------------------------------------- #
#: LRU of session plan lists keyed on (march fingerprint, widths).  Plans
#: are pure values (frozen dataclasses over ints/strings), so sharing one
#: list across campaigns -- and across the memories of a bucket -- is
#: safe; the bound keeps long heterogeneous sweeps from hoarding memory.
_PLAN_CACHE: "OrderedDict[tuple, list]" = OrderedDict()
_PLAN_CACHE_MAX = 128
_plan_cache_hits = 0
_plan_cache_misses = 0


def plan_cache_stats() -> tuple[int, int]:
    """Cumulative (hits, misses) of this process's session plan cache."""
    return _plan_cache_hits, _plan_cache_misses


def reset_plan_cache() -> None:
    """Clear the plan cache and its counters (test isolation helper)."""
    global _plan_cache_hits, _plan_cache_misses
    _PLAN_CACHE.clear()
    _plan_cache_hits = 0
    _plan_cache_misses = 0


def session_step_plans(
    scheme: FastDiagnosisScheme, memory: SRAM, algorithm: MarchAlgorithm
) -> list[PauseStep | ElementPlan]:
    """Resolve every algorithm step against one memory's width.

    Plans depend only on the memory's ``(words, bits)`` and the controller
    dimensions (SPC adaptation and comparator expectations are pure
    functions of the widths and the delivery order), so one memory's plan
    list is valid for every same-geometry memory in the bank -- the fact
    the batched tier builds each geometry bucket's plans exactly once
    from.  Lists are additionally memoized across sessions *and
    campaigns* in a process-wide LRU keyed on the algorithm's structural
    fingerprint plus every width the plan embeds; the fleet scheduler
    surfaces the hit rate in its report.
    """
    global _plan_cache_hits, _plan_cache_misses
    key = (
        algorithm.plan_fingerprint(),
        memory.bits,
        scheme.controller_words,
        scheme.controller_bits,
        scheme.msb_first,
    )
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        _plan_cache_hits += 1
        _PLAN_CACHE.move_to_end(key)
        return cached
    _plan_cache_misses += 1
    plans = _build_step_plans(scheme, memory, algorithm)
    _PLAN_CACHE[key] = plans
    if len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return plans


def _build_step_plans(
    scheme: FastDiagnosisScheme, memory: SRAM, algorithm: MarchAlgorithm
) -> list[PauseStep | ElementPlan]:
    bits = memory.bits
    comparator = scheme.comparators[memory.name]
    spc = scheme.spcs[memory.name]
    word_mask = mask(bits)
    plans: list[PauseStep | ElementPlan] = []
    for step_index, step in enumerate(algorithm.steps):
        if isinstance(step, PauseStep):
            plans.append(step)
            continue
        element = step.element
        adapted = spc.expected_pattern(step.background, scheme.controller_bits)
        correct = step.background & word_mask
        ops = tuple(
            OpPlan(
                op=op,
                operation=op.notation(),
                write_word=None if op.is_read else op.word_for(adapted, bits),
                expected_plain=(
                    comparator.expected_word(element, op_index, correct, wrapped=False)
                    if op.is_read
                    else None
                ),
                expected_wrapped=(
                    comparator.expected_word(element, op_index, correct, wrapped=True)
                    if op.is_read
                    else None
                ),
                tick_cost=1 + scheme.controller_bits if op.is_read else 1,
            )
            for op_index, op in enumerate(element.operations)
        )
        plans.append(
            ElementPlan(
                step_index=step_index,
                step_label=step.label or element.notation(),
                record_background=correct,
                deliver_ticks=scheme.controller_bits if element.writes_anything else 0,
                ascending=element.order is not AddressOrder.DOWN,
                sweep_length=scheme.controller_words,
                ops=ops,
            )
        )
    return plans


def _run_fast_session(scheme: FastDiagnosisScheme) -> ProposedReport:
    algorithm, report, deliveries, nwrc_ops = begin_session(scheme)
    reads_per_word = algorithm.reads_per_word()
    for memory in scheme.bank:
        failures = _run_memory_session(scheme, memory, algorithm)
        report.failures[memory.name] = failures
        finalize_memory_counters(scheme, memory, failures, reads_per_word)
    return finish_session(scheme, report, deliveries, nwrc_ops)


def _run_memory_session(
    scheme: FastDiagnosisScheme, memory: SRAM, algorithm: MarchAlgorithm
) -> list[FailureRecord]:
    """Simulate one memory through the whole session, fast where possible."""
    vector = vector_capable(memory)
    if vector:
        state, clean_mask, dirty_mask, lanes = pack_memory(memory)
    ecc = scheme.ecc_observers.get(memory.name)

    tr = _tracer()
    failures: list[FailureRecord] = []
    for plan in session_step_plans(scheme, memory, algorithm):
        if isinstance(plan, PauseStep):
            memory.pause(plan.duration_ns)
            continue
        if tr.enabled:
            with tr.span(
                "march.element", "march", step=plan.step_label, memory=memory.name
            ):
                if vector:
                    failures.extend(
                        run_element(
                            memory, state, clean_mask, dirty_mask, plan, lanes, ecc
                        )
                    )
                else:
                    failures.extend(run_element_slow(memory, plan, ecc))
        elif vector:
            failures.extend(
                run_element(memory, state, clean_mask, dirty_mask, plan, lanes, ecc)
            )
        else:
            failures.extend(run_element_slow(memory, plan, ecc))

    if vector:
        sync_clean_rows(memory, state, clean_mask)
    return failures
