"""Streaming aggregation of campaign results into fleet-level statistics.

A fleet run may execute thousands of campaigns across a worker pool;
holding every :class:`~repro.core.campaign.CampaignReport` (with its full
failure-record sessions) in the parent process would defeat the point.
Workers therefore reduce each campaign to a compact
:class:`CampaignSummary`, and the :class:`FleetAggregator` folds summaries
into running statistics (Welford mean/variance, extrema, histogram
buckets) the moment they arrive, so parent-side memory stays O(1) in the
number of campaigns.

Zero-denominator convention (shared by the windowed streaming
aggregates in :mod:`repro.streaming`):

* **count-ratio rates** (yield, detection, escape, convergence,
  cache-hit rates) return ``None`` when the denominator is 0 -- the rate
  is *unknown*, and reporting 0.0 or 1.0 would bias downstream
  aggregation of sparse windows;
* **throughput over wall-clock time** (``campaigns_per_sec``,
  windows/sec) returns ``0.0`` when no time was recorded -- sub-clock
  sweeps round to "no measurable throughput" rather than dividing by
  zero, and wall-clock fields are run metadata anyway (excluded from
  deterministic content).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.campaign import CampaignReport
from repro.util.records import Record
from repro.util.validation import require


@dataclass(frozen=True)
class CampaignSummary(Record):
    """The fleet-relevant scalars of one finished campaign."""

    index: int
    seed: int
    soc_name: str
    injected_faults: int
    localization_rate: float
    total_failures: int
    proposed_time_ns: float | None = None
    baseline_time_ns: float | None = None
    baseline_iterations: int | None = None
    reduction_factor: float | None = None
    repaired_words: int | None = None
    fully_repaired: bool | None = None
    verification_passed: bool | None = None
    # Scenario-flow fields (None for plain fleet campaigns; populated by
    # :mod:`repro.scenarios.flow` for multi-session production flows).
    #: Scenario label the campaign belongs to.
    scenario: str | None = None
    #: Mean clustered defect rate the field assigned to the bank.
    assigned_rate_mean: float | None = None
    #: Manufacturing faults no session of the flow localized.
    escaped_faults: int | None = None
    escape_rate: float | None = None
    #: Repair -> retest rounds executed after the initial test.
    retest_rounds: int | None = None
    #: Whether the retest loop reached a clean session.
    retest_converged: bool | None = None
    #: Intermittent faults injected at burn-in / detected there.
    intermittent_faults: int | None = None
    intermittent_detected: int | None = None
    #: Escapes attributable to ECC masking (None without an ECC layer).
    ecc_masked_escaped: int | None = None
    ecc_masked_escape_rate: float | None = None
    #: Decoder activity summed over the flow's sessions.
    ecc_corrected_reads: int | None = None
    ecc_uncorrectable_reads: int | None = None
    #: BISR repair yield and committed spares (None for word-spare flows).
    repair_yield: float | None = None
    repaired_rows: int | None = None
    repaired_cols: int | None = None
    #: Session plan-cache traffic attributed to this campaign (run-side
    #: performance metadata; excluded from deterministic report content).
    plan_cache_hits: int | None = None
    plan_cache_misses: int | None = None

    @classmethod
    def from_report(
        cls,
        index: int,
        seed: int,
        report: CampaignReport,
        plan_cache_hits: int | None = None,
        plan_cache_misses: int | None = None,
    ) -> "CampaignSummary":
        """Reduce a full campaign report to its fleet summary."""
        proposed = report.proposed
        baseline = report.baseline
        repair = report.repair
        return cls(
            plan_cache_hits=plan_cache_hits,
            plan_cache_misses=plan_cache_misses,
            index=index,
            seed=seed,
            soc_name=report.soc_name,
            injected_faults=report.injected_faults,
            localization_rate=report.localization_rate,
            total_failures=proposed.total_failures if proposed else 0,
            proposed_time_ns=proposed.time_ns if proposed else None,
            baseline_time_ns=baseline.time_ns if baseline else None,
            baseline_iterations=baseline.iterations if baseline else None,
            reduction_factor=report.reduction_factor,
            repaired_words=repair.total_repaired_words if repair else None,
            fully_repaired=repair.fully_repaired if repair else None,
            verification_passed=report.verification_passed,
        )


@dataclass
class StreamingStats(Record):
    """Welford-style running mean/variance with extrema; mergeable."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation in."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "StreamingStats") -> None:
        """Fold another accumulator in (parallel-merge form of Welford).

        Empty operands are identity elements on either side (merging
        empty windows must neither divide by zero nor poison the mean
        with NaN from the ``inf - inf`` extrema), and the combined mean
        is computed in the *symmetric* weighted form rather than as an
        update against ``self``: every float operation is commutative in
        its operands, so ``a.merge(b)`` and ``b.merge(a)`` agree
        bit-for-bit -- windowed aggregation stays byte-deterministic no
        matter which side of a merge a window lands on.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * (self.count * other.count / total)
        self.mean = (self.count * self.mean + other.count * other.mean) / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two observations).

        ``m2`` is clamped at 0: catastrophic cancellation in a long
        merge chain of near-identical means can leave it a hair negative,
        and propagating that into ``std`` would raise in ``math.sqrt``.
        """
        if self.count < 2:
            return 0.0
        return max(self.m2, 0.0) / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def to_dict(self) -> dict:
        """JSON-friendly summary (None extrema when empty)."""
        return {
            "count": self.count,
            "mean": self.mean if self.count else None,
            "std": self.std if self.count else None,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    def state_dict(self) -> dict:
        """Exact internal state, JSON-safe (for checkpoint resume).

        Python floats round-trip exactly through JSON (``repr`` emits the
        shortest string that parses back to the same double), so a
        restored accumulator continues producing bit-identical merges.
        The infinite extrema of an empty accumulator are stored as
        ``None`` -- strict JSON has no ``Infinity`` literal.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": None if math.isinf(self.minimum) else self.minimum,
            "max": None if math.isinf(self.maximum) else self.maximum,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingStats":
        """Rebuild an accumulator from :meth:`state_dict` output."""
        return cls(
            count=int(state["count"]),
            mean=float(state["mean"]),
            m2=float(state["m2"]),
            minimum=math.inf if state["min"] is None else float(state["min"]),
            maximum=-math.inf if state["max"] is None else float(state["max"]),
        )


#: Upper edges of the reduction-factor histogram buckets (the last bucket
#: is open-ended).  Chosen around the paper's headline R values (84/145).
REDUCTION_BUCKETS: tuple[float, ...] = (10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0)


def bucket_label(index: int) -> str:
    """Human-readable label of one histogram bucket."""
    require(0 <= index <= len(REDUCTION_BUCKETS), f"bucket {index} out of range")
    if index == 0:
        return f"<{REDUCTION_BUCKETS[0]:g}"
    if index == len(REDUCTION_BUCKETS):
        return f">={REDUCTION_BUCKETS[-1]:g}"
    return f"{REDUCTION_BUCKETS[index - 1]:g}-{REDUCTION_BUCKETS[index]:g}"


@dataclass
class FleetReport(Record):
    """Fleet-level statistics over many campaigns."""

    campaigns: int = 0
    total_faults: int = 0
    total_failures: int = 0
    localization: StreamingStats = field(default_factory=StreamingStats)
    reduction: StreamingStats = field(default_factory=StreamingStats)
    proposed_time_ns: StreamingStats = field(default_factory=StreamingStats)
    baseline_time_ns: StreamingStats = field(default_factory=StreamingStats)
    baseline_iterations: StreamingStats = field(default_factory=StreamingStats)
    reduction_histogram: list[int] = field(
        default_factory=lambda: [0] * (len(REDUCTION_BUCKETS) + 1)
    )
    repaired_words: int = 0
    fully_repaired_count: int = 0
    verified_pass_count: int = 0
    verified_total: int = 0
    elapsed_s: float = 0.0
    # Scenario-flow aggregates (all zero/empty for plain fleets).
    scenario_campaigns: int = 0
    escape_rate: StreamingStats = field(default_factory=StreamingStats)
    assigned_rate: StreamingStats = field(default_factory=StreamingStats)
    retest_rounds: StreamingStats = field(default_factory=StreamingStats)
    retest_converged_count: int = 0
    intermittent_injected: int = 0
    intermittent_detected: int = 0
    # ECC + BISR aggregates (zero/empty unless campaigns ran with them).
    ecc_campaigns: int = 0
    ecc_masked_escape: StreamingStats = field(default_factory=StreamingStats)
    ecc_masked_escaped_total: int = 0
    ecc_corrected_total: int = 0
    ecc_uncorrectable_total: int = 0
    repair_yield_stats: StreamingStats = field(default_factory=StreamingStats)
    repaired_rows_total: int = 0
    repaired_cols_total: int = 0
    # Session plan-cache traffic (run metadata, like ``elapsed_s``: the
    # counts depend on worker layout and resume state, never on results).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Merged engine telemetry (:class:`repro.telemetry.TelemetryReport`)
    #: when the run was scheduled with telemetry enabled.  Run metadata:
    #: excluded from ``deterministic_dict()`` and never checkpointed.
    telemetry: object | None = None
    #: Quarantined-chunk records from a degraded-mode run
    #: (``on_chunk_failure="quarantine"``): one
    #: ``{"chunk", "campaigns", "error_kinds"}`` entry per poison chunk,
    #: sorted by chunk index.  Part of the *deterministic* content --
    #: chaos injection is seeded, so the same disturbed run always loses
    #: the same chunks -- and empty (absent from JSON) on a clean run,
    #: keeping undisturbed payloads byte-identical to earlier releases.
    failures: list = field(default_factory=list)

    @property
    def campaigns_per_sec(self) -> float:
        """Fleet throughput (0 when no time was recorded)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.campaigns / self.elapsed_s

    @property
    def yield_rate(self) -> float | None:
        """Fraction of verified campaigns that passed post-repair."""
        if self.verified_total == 0:
            return None
        return self.verified_pass_count / self.verified_total

    def add(self, summary: CampaignSummary) -> None:
        """Fold one campaign summary into the fleet statistics."""
        self.campaigns += 1
        self.total_faults += summary.injected_faults
        self.total_failures += summary.total_failures
        self.localization.add(summary.localization_rate)
        if summary.proposed_time_ns is not None:
            self.proposed_time_ns.add(summary.proposed_time_ns)
        if summary.baseline_time_ns is not None:
            self.baseline_time_ns.add(summary.baseline_time_ns)
        if summary.baseline_iterations is not None:
            self.baseline_iterations.add(summary.baseline_iterations)
        if summary.reduction_factor is not None:
            self.reduction.add(summary.reduction_factor)
            bucket = 0
            while (
                bucket < len(REDUCTION_BUCKETS)
                and summary.reduction_factor >= REDUCTION_BUCKETS[bucket]
            ):
                bucket += 1
            self.reduction_histogram[bucket] += 1
        if summary.repaired_words is not None:
            self.repaired_words += summary.repaired_words
        if summary.fully_repaired:
            self.fully_repaired_count += 1
        if summary.verification_passed is not None:
            self.verified_total += 1
            if summary.verification_passed:
                self.verified_pass_count += 1
        if summary.plan_cache_hits is not None:
            self.plan_cache_hits += summary.plan_cache_hits
        if summary.plan_cache_misses is not None:
            self.plan_cache_misses += summary.plan_cache_misses
        if summary.scenario is not None:
            self.scenario_campaigns += 1
            if summary.escape_rate is not None:
                self.escape_rate.add(summary.escape_rate)
            if summary.assigned_rate_mean is not None:
                self.assigned_rate.add(summary.assigned_rate_mean)
            if summary.retest_rounds is not None:
                self.retest_rounds.add(summary.retest_rounds)
            if summary.retest_converged:
                self.retest_converged_count += 1
            self.intermittent_injected += summary.intermittent_faults or 0
            self.intermittent_detected += summary.intermittent_detected or 0
            if summary.ecc_masked_escape_rate is not None:
                self.ecc_campaigns += 1
                self.ecc_masked_escape.add(summary.ecc_masked_escape_rate)
                self.ecc_masked_escaped_total += summary.ecc_masked_escaped or 0
                self.ecc_corrected_total += summary.ecc_corrected_reads or 0
                self.ecc_uncorrectable_total += (
                    summary.ecc_uncorrectable_reads or 0
                )
            if summary.repair_yield is not None:
                self.repair_yield_stats.add(summary.repair_yield)
            self.repaired_rows_total += summary.repaired_rows or 0
            self.repaired_cols_total += summary.repaired_cols or 0

    @property
    def retest_convergence(self) -> float | None:
        """Fraction of scenario campaigns whose retest loop converged."""
        if self.scenario_campaigns == 0:
            return None
        return self.retest_converged_count / self.scenario_campaigns

    @property
    def intermittent_detection_rate(self) -> float | None:
        """Fraction of injected intermittent faults seen at burn-in."""
        if self.intermittent_injected == 0:
            return None
        return self.intermittent_detected / self.intermittent_injected

    @property
    def plan_cache_hit_rate(self) -> float | None:
        """Fraction of session plan lookups served from the LRU cache."""
        lookups = self.plan_cache_hits + self.plan_cache_misses
        if lookups == 0:
            return None
        return self.plan_cache_hits / lookups

    def to_json_dict(self) -> dict:
        """Serializable rendering for the CLI's ``--json`` mode."""
        payload = {
            "campaigns": self.campaigns,
            "elapsed_s": self.elapsed_s,
            "campaigns_per_sec": self.campaigns_per_sec,
            "total_faults": self.total_faults,
            "total_failures": self.total_failures,
            "localization": self.localization.to_dict(),
            "reduction_factor": self.reduction.to_dict(),
            "proposed_time_ns": self.proposed_time_ns.to_dict(),
            "baseline_time_ns": self.baseline_time_ns.to_dict(),
            "baseline_iterations": self.baseline_iterations.to_dict(),
            "reduction_histogram": {
                bucket_label(i): count
                for i, count in enumerate(self.reduction_histogram)
            },
            "repaired_words": self.repaired_words,
            "fully_repaired_count": self.fully_repaired_count,
            "yield_rate": self.yield_rate,
            "plan_cache": {
                "hits": self.plan_cache_hits,
                "misses": self.plan_cache_misses,
                "hit_rate": self.plan_cache_hit_rate,
            },
        }
        if self.failures:
            payload["failures"] = [dict(entry) for entry in self.failures]
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_json_dict()
        if self.scenario_campaigns:
            payload["scenario"] = {
                "campaigns": self.scenario_campaigns,
                "escape_rate": self.escape_rate.to_dict(),
                "assigned_defect_rate": self.assigned_rate.to_dict(),
                "retest_rounds": self.retest_rounds.to_dict(),
                "retest_convergence": self.retest_convergence,
                "intermittent_injected": self.intermittent_injected,
                "intermittent_detected": self.intermittent_detected,
                "intermittent_detection_rate": self.intermittent_detection_rate,
            }
            if self.ecc_campaigns:
                payload["scenario"]["ecc"] = {
                    "campaigns": self.ecc_campaigns,
                    "masked_escape_rate": self.ecc_masked_escape.to_dict(),
                    "masked_escaped": self.ecc_masked_escaped_total,
                    "corrected_reads": self.ecc_corrected_total,
                    "uncorrectable_reads": self.ecc_uncorrectable_total,
                }
            if self.repair_yield_stats.count or self.repaired_rows_total or self.repaired_cols_total:
                payload["scenario"]["repair_yield"] = (
                    self.repair_yield_stats.to_dict()
                )
                payload["scenario"]["repaired_rows"] = self.repaired_rows_total
                payload["scenario"]["repaired_cols"] = self.repaired_cols_total
        return payload

    def deterministic_dict(self) -> dict:
        """The report's *result* content, without wall-clock measurements.

        ``elapsed_s``/``campaigns_per_sec``/``plan_cache``/``telemetry``
        describe the run, not the fleet (cache traffic depends on worker
        layout and on how many chunks a resume skipped; telemetry is the
        run's own performance measurement); everything else is a pure
        function of the spec.  This is the payload the checkpoint/resume
        contract guarantees byte-for-byte: a resumed run and an
        uninterrupted run agree on it exactly.
        """
        payload = self.to_json_dict()
        payload.pop("elapsed_s")
        payload.pop("campaigns_per_sec")
        payload.pop("plan_cache")
        payload.pop("telemetry", None)
        return payload

    def canonical_json(self) -> str:
        """Canonical byte-comparable rendering of the deterministic content."""
        import json

        return json.dumps(
            self.deterministic_dict(), sort_keys=True, separators=(",", ":")
        )

    def summary_lines(self) -> list[str]:
        """Human-readable fleet summary for the CLI."""
        lines = [
            f"fleet: {self.campaigns} campaigns in {self.elapsed_s:.2f} s "
            f"({self.campaigns_per_sec:.2f}/s)",
            f"  faults injected : {self.total_faults} "
            f"({self.total_failures} failing reads)",
        ]
        if self.localization.count:
            lines.append(
                f"  localization    : mean {self.localization.mean:.1%} "
                f"(min {self.localization.minimum:.1%}, "
                f"max {self.localization.maximum:.1%})"
            )
        if self.baseline_iterations.count:
            lines.append(
                f"  baseline k      : mean {self.baseline_iterations.mean:.1f} "
                f"(min {self.baseline_iterations.minimum:.0f}, "
                f"max {self.baseline_iterations.maximum:.0f})"
            )
        if self.reduction.count:
            lines.append(
                f"  reduction R     : mean {self.reduction.mean:.1f}x "
                f"+/- {self.reduction.std:.1f} "
                f"(min {self.reduction.minimum:.1f}, "
                f"max {self.reduction.maximum:.1f})"
            )
            histogram = ", ".join(
                f"{bucket_label(i)}: {count}"
                for i, count in enumerate(self.reduction_histogram)
                if count
            )
            lines.append(f"  R histogram     : {histogram}")
        if self.repaired_words or self.verified_total:
            lines.append(
                f"  repair          : {self.repaired_words} words, "
                f"{self.fully_repaired_count}/{self.campaigns} fully repaired"
            )
        if self.yield_rate is not None:
            lines.append(
                f"  yield           : {self.yield_rate:.1%} "
                f"({self.verified_pass_count}/{self.verified_total} verified clean)"
            )
        if self.plan_cache_hit_rate is not None:
            lines.append(
                f"  plan cache      : {self.plan_cache_hit_rate:.1%} hit rate "
                f"({self.plan_cache_hits} hits, "
                f"{self.plan_cache_misses} misses)"
            )
        if self.failures:
            lost = sum(len(entry["campaigns"]) for entry in self.failures)
            kinds = sorted(
                {kind for entry in self.failures for kind in entry["error_kinds"]}
            )
            lines.append(
                f"  QUARANTINED     : {len(self.failures)} chunks "
                f"({lost} campaigns lost; {', '.join(kinds)})"
            )
        if self.scenario_campaigns:
            flows = f"  scenario flows  : {self.scenario_campaigns} campaigns"
            if self.retest_rounds.count:
                flows += (
                    f", retest convergence {self.retest_convergence:.1%} "
                    f"(mean {self.retest_rounds.mean:.1f} rounds)"
                )
            lines.append(flows)
            if self.escape_rate.count:
                lines.append(
                    f"  escape rate     : mean {self.escape_rate.mean:.1%} "
                    f"(max {self.escape_rate.maximum:.1%})"
                )
            if self.ecc_campaigns:
                # The diagnosis gap: an analytic raw-observation model
                # predicts escape_rate - masked_escape_rate; the masked
                # share is what the on-die correction hides from it.
                lines.append(
                    f"  ecc             : {self.ecc_corrected_total} corrected "
                    f"reads ({self.ecc_uncorrectable_total} uncorrectable) "
                    f"over {self.ecc_campaigns} campaigns"
                )
                lines.append(
                    f"  masked escapes  : mean rate "
                    f"{self.ecc_masked_escape.mean:.2%} "
                    f"({self.ecc_masked_escaped_total} faults) -- gap by which "
                    f"raw-observation analysis overestimates localization"
                )
            if self.repair_yield_stats.count:
                lines.append(
                    f"  bisr yield      : mean {self.repair_yield_stats.mean:.1%} "
                    f"(min {self.repair_yield_stats.minimum:.1%}), "
                    f"{self.repaired_rows_total} spare rows + "
                    f"{self.repaired_cols_total} cols committed"
                )
            if self.assigned_rate.count:
                lines.append(
                    f"  clustered rate  : mean {self.assigned_rate.mean:.3%} "
                    f"(min {self.assigned_rate.minimum:.3%}, "
                    f"max {self.assigned_rate.maximum:.3%})"
                )
            if self.intermittent_detection_rate is not None:
                lines.append(
                    f"  intermittent    : {self.intermittent_detected}/"
                    f"{self.intermittent_injected} detected at burn-in "
                    f"({self.intermittent_detection_rate:.1%})"
                )
        return lines
