"""Compiled fault tables: vectorized evaluation of deterministic cell faults.

The behavioural replay lane (:func:`repro.engine.kernel.replay_dirty_positions`)
is exact for *every* fault class but costs one Python dispatch per access --
which makes dense-defect diagnostic campaigns replay-bound: the batched
tier's fleet-wide block ops win ~4x in sparse screening and decay toward 1x
as the defect rate grows.  This module removes that tail for the
*deterministic* majority of the fault library.

At session-plan time each memory's cell faults are partitioned by the
lowering protocol (:meth:`repro.faults.base.Fault.vector_lowerable` /
:meth:`~repro.faults.base.Fault.lower`):

* **Lowerable faults** (stuck-at, transition, incorrect/destructive/
  deceptive reads, write disturbs, NWRC-weak cells, inter-word coupling)
  compile into structured numpy columns -- per-fault ``(row, lane,
  bitmask, kind, aux-cell, parameters)`` -- grouped into per-row mask
  planes and per-entry coupling groups.  A whole march element is then
  evaluated over *all* fault-hooked rows of a geometry bucket (stacked
  ``(n_mem, words, lanes)`` state) as a handful of select/mask vector ops
  per operation, inside the same wrap-around block decomposition the
  clean-row path uses.
* **Stateful-but-analytic faults** also lower: intermittent/soft-error
  upsets key their Bernoulli decisions on a *counter-based* hash (draw
  ``k`` of fault ``f`` is a pure function of ``(f.seed, k)``,
  :func:`repro.util.rng.counter_hash`), so the per-visit upset masks are
  computed directly from the plan's per-cell access counts -- SEU
  persistence falls out of committing each visit's flips to the packed
  state before the next gather, the XOR-prefix over visit masks.
  Retention decay is evaluated by computing the elapsed time between the
  last fragile write and each read analytically from the element plan's
  visit clock offsets (:attr:`~repro.engine.kernel.ElementPlan.access_ticks`)
  and the time base's cycle model; the final draw counters / decay
  clocks are published back to the fault objects after the session.
* **Non-lowerable faults** (legacy sequential-stream intermittent faults
  behind the ``legacy_stream`` compat flag, intra-word coupling with its
  intra-visit transition interleaving) keep the exact behavioural replay
  lane.

Lane cohesion makes the split sound: coupling links its victim and
aggressor words, so a word with any behavioural hook *taints* every word
reachable through coupling edges, and any cell touched by two faults
(whose hooks would chain in attachment order) keeps all involved faults
behavioural.  The result is bit-exact against the reference by
construction and validated by the round-trip property suite and the
three-way differential fuzz matrix.

Inter-word coupling is expressible because the aggressor word and the
victim word sit at *different* sweep positions: within one block every
row is visited exactly once, so the victim observes either the
aggressor's pre-block state or its post-element trajectory, decided by a
static visit-order bit, and inversion/idempotent flips collapse to a
parity/any aggregate applied before or after the block's op loop.
Address-decoder and column-mux faults are not expressible (they rewire
whole access paths); memories carrying them keep the reference fallback,
exactly as before.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.packing import lanes_for, lanes_to_word, np
from repro.telemetry.core import tracer as _tracer
from repro.faults.base import (
    KIND_CF_ID,
    KIND_CF_IN,
    KIND_CF_ST,
    KIND_DRDF,
    KIND_DRF,
    KIND_INT_READ,
    KIND_IRF,
    KIND_RDF,
    KIND_SEU,
    KIND_STUCK,
    KIND_TF,
    KIND_WDF,
    KIND_WEAK,
    LoweredFault,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.kernel import ElementPlan
    from repro.memory.sram import SRAM

# splitmix64 constants, mirrored from repro.util.rng for the vectorized
# counter hash below (kept as Python ints so importing this module does
# not require numpy to be usable at definition time).
_GAMMA64 = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_FLOAT_SCALE = 1.0 / float(1 << 53)


def _mix64(z):
    """Vectorized splitmix64 finalizer over uint64 arrays (mod-2^64)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_A)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_B)
    return z ^ (z >> np.uint64(31))


def _counter_bernoulli_mask(seeds, counters, probabilities):
    """Vectorized :func:`repro.util.rng.counter_bernoulli` over parallel arrays.

    Bit-identical to the scalar helper: numpy uint64 arithmetic wraps
    mod 2^64 exactly like the masked Python-int version, and scaling the
    53-bit draw by ``2**-53`` is an exact power-of-two operation, so the
    float compared against ``probabilities`` matches the scalar division.
    """
    gamma = np.uint64(_GAMMA64)
    state = (seeds ^ (counters * gamma)) + gamma
    draw = _mix64(_mix64(state) + gamma)
    return (draw >> np.uint64(11)).astype(np.float64) * _FLOAT_SCALE < probabilities


def partition_faults(memory: "SRAM") -> tuple[list[LoweredFault], set[int]]:
    """Split one memory's cell faults into table and replay populations.

    Returns ``(lowered, replay_words)``: the lowered records of every
    fault the table may evaluate, and the word indices that must stay on
    the behavioural replay lane.  Beyond each fault's own
    ``vector_lowerable()`` vote, two structural constraints apply:

    * **cell uniqueness** -- a cell touched by two faults keeps every
      involved fault behavioural, because their hooks chain sequentially
      in attachment order;
    * **lane cohesion** -- coupling ties its victim word to its aggressor
      word (transitions on one mutate the other), so taint propagates
      across coupling edges until both endpoints share a lane.
    """
    faults = memory.cell_faults
    participation: dict[tuple[int, int], int] = {}
    for fault in faults:
        for cell in fault.cells:
            key = (cell.word, cell.bit)
            participation[key] = participation.get(key, 0) + 1

    candidates: list = []
    tainted: set[int] = set()
    edges: list[tuple[int, ...]] = []
    for fault in faults:
        words = {cell.word for cell in fault.cells}
        if fault.aggressors:
            edges.append(tuple(words))
        lowerable = fault.vector_lowerable() and all(
            participation[(cell.word, cell.bit)] == 1 for cell in fault.cells
        )
        if lowerable:
            candidates.append(fault)
        else:
            tainted |= words

    changed = True
    while changed:
        changed = False
        for words in edges:
            if any(word in tainted for word in words) and not tainted.issuperset(
                words
            ):
                tainted.update(words)
                changed = True

    lowered = [
        fault.lower()
        for fault in candidates
        if all(cell.word not in tainted for cell in fault.cells)
    ]
    return lowered, tainted


@dataclass
class BucketLanes:
    """Three-way row partition of one geometry bucket.

    ``replay_masks`` rows take the behavioural replay lane (authoritative
    state in the memory objects), ``table_masks`` rows are evaluated by
    the compiled fault table, and ``clean_masks`` rows (including
    untainted aggressor-only rows, whose accesses are ideal) take the
    plain block-op path.  Table and clean rows are authoritative in the
    packed state and must be synced back after the session.
    """

    replay_masks: "np.ndarray"
    table_masks: "np.ndarray"
    clean_masks: "np.ndarray"
    table: "CompiledFaultTable | None"

    @property
    def vector_masks(self) -> "np.ndarray":
        """Rows whose packed state is authoritative (clean + table)."""
        return ~self.replay_masks


def lower_bucket(memories: "list[SRAM]") -> BucketLanes:
    """Partition a same-geometry bucket and compile its fault table."""
    tr = _tracer()
    if tr.enabled:
        started = time.perf_counter_ns()
    n_mem = len(memories)
    words = memories[0].words
    bits = memories[0].bits
    replay = np.zeros((n_mem, words), dtype=bool)
    table_rows = np.zeros((n_mem, words), dtype=bool)
    lowered_by_member: list[list[LoweredFault]] = []
    for member, memory in enumerate(memories):
        lowered, tainted = partition_faults(memory)
        for word in tainted:
            replay[member, word] = True
        for spec in lowered:
            table_rows[member, spec.victim.word] = True
        lowered_by_member.append(lowered)
    table = None
    if any(lowered_by_member):
        table = CompiledFaultTable(lowered_by_member, words, bits)
    if tr.enabled:
        counters = tr.counters
        counters.add("table.compile.ns", time.perf_counter_ns() - started)
        counters.add(
            "table.lowered_faults", sum(len(l) for l in lowered_by_member)
        )
    return BucketLanes(replay, table_rows, ~(replay | table_rows), table)


class _CouplingGroup:
    """Structure-of-arrays for one coupling kind's lowered entries.

    ``vic_flat``/``agg_flat`` index the bucket state flattened to
    ``(n_mem * words, lanes)`` -- one gather/scatter index instead of a
    (member, word) pair.
    """

    def __init__(self, entries, row_index, lanes_of, words):
        self.size = len(entries)
        if not self.size:
            return
        self.vic_row = np.array(
            [row_index[(m, s.victim.word)] for m, s in entries], dtype=np.int64
        )
        self.vic_flat = np.array(
            [m * words + s.victim.word for m, s in entries], dtype=np.int64
        )
        self.vic_word = np.array([s.victim.word for _, s in entries], dtype=np.int64)
        self.vic_lane = np.array(
            [lanes_of(s.victim.bit)[0] for _, s in entries], dtype=np.int64
        )
        self.vic_mask = np.array(
            [lanes_of(s.victim.bit)[1] for _, s in entries], dtype=np.uint64
        )
        self.agg_flat = np.array(
            [m * words + s.aggressor.word for m, s in entries], dtype=np.int64
        )
        self.agg_word = np.array(
            [s.aggressor.word for _, s in entries], dtype=np.int64
        )
        self.agg_lane = np.array(
            [lanes_of(s.aggressor.bit)[0] for _, s in entries], dtype=np.int64
        )
        self.agg_mask = np.array(
            [lanes_of(s.aggressor.bit)[1] for _, s in entries], dtype=np.uint64
        )
        self.rising = np.array([s.rising for _, s in entries], dtype=bool)
        self.forced = np.array([s.value == 1 for _, s in entries], dtype=bool)
        self.state = np.array(
            [s.aggressor_state == 1 for _, s in entries], dtype=bool
        )
        self.affects_write = np.array(
            [s.affects_write for _, s in entries], dtype=bool
        )


class _StatelessGroup:
    """Structure-of-arrays for one stateful-but-analytic fault kind.

    Beyond the victim coordinates this carries the analytic state the
    evaluator advances in place -- Bernoulli draw counters for the
    intermittent kinds, decay clocks (``written_at``, NaN = no pending
    fragile write) for retention -- plus the source fault objects so
    :meth:`CompiledFaultTable.sync_fault_state` can publish the final
    state back after the session.
    """

    def __init__(self, entries, row_index, lanes_of, words):
        self.size = len(entries)
        if not self.size:
            return
        self.vic_row = np.array(
            [row_index[(m, s.victim.word)] for m, s in entries], dtype=np.int64
        )
        self.vic_flat = np.array(
            [m * words + s.victim.word for m, s in entries], dtype=np.int64
        )
        self.vic_word = np.array([s.victim.word for _, s in entries], dtype=np.int64)
        self.vic_lane = np.array(
            [lanes_of(s.victim.bit)[0] for _, s in entries], dtype=np.int64
        )
        self.vic_mask = np.array(
            [lanes_of(s.victim.bit)[1] for _, s in entries], dtype=np.uint64
        )
        self.member = np.array([m for m, _ in entries], dtype=np.int64)
        self.seed = np.array([s.seed for _, s in entries], dtype=np.uint64)
        self.probability = np.array(
            [s.probability for _, s in entries], dtype=np.float64
        )
        self.counter = np.array(
            [s.counter_base for _, s in entries], dtype=np.uint64
        )
        self.fragile = np.array([s.value == 1 for _, s in entries], dtype=bool)
        self.retention_ns = np.array(
            [s.retention_ns for _, s in entries], dtype=np.float64
        )
        self.written_at = np.array(
            [
                math.nan if s.written_at_ns is None else s.written_at_ns
                for _, s in entries
            ],
            dtype=np.float64,
        )
        self.sources = [s.source for _, s in entries]


@dataclass
class _BlockContext:
    """Per-block scratch: row subset, positions and coupling schedules."""

    idx: "np.ndarray"
    positions: "np.ndarray"
    cf_in_deferred: "np.ndarray | None" = None
    cf_id_deferred: "np.ndarray | None" = None
    cfst_active: "np.ndarray | None" = None
    cfst_vic_in: "np.ndarray | None" = None
    cfst_vic_sub: "np.ndarray | None" = None
    int_in: "np.ndarray | None" = None
    int_sub: "np.ndarray | None" = None
    seu_in: "np.ndarray | None" = None
    ret_in: "np.ndarray | None" = None
    ret_pos: "np.ndarray | None" = None


class CompiledFaultTable:
    """Per-bucket structured arrays for the lowerable fault population.

    Rows (distinct ``(member, word)`` pairs carrying at least one lowered
    victim fault) index per-row uint64 mask planes -- one plane per
    behaviour family -- while the coupling kinds keep per-entry columns
    (the aux aggressor cell breaks the one-mask-per-row shape).
    """

    def __init__(self, lowered_by_member, words: int, bits: int) -> None:
        self.words = words
        self.lanes = lanes_for(bits)

        def lanes_of(bit: int) -> tuple[int, int]:
            return bit // 64, 1 << (bit % 64)

        row_keys = sorted(
            {
                (member, spec.victim.word)
                for member, lowered in enumerate(lowered_by_member)
                for spec in lowered
            }
        )
        self.n_rows = len(row_keys)
        row_index = {key: i for i, key in enumerate(row_keys)}
        self.rows_member = np.array([m for m, _ in row_keys], dtype=np.int64)
        self.rows_word = np.array([w for _, w in row_keys], dtype=np.int64)
        self.rows_flat = self.rows_member * words + self.rows_word
        self._all_idx = np.arange(self.n_rows, dtype=np.int64)

        planes = (
            "stuck_set",
            "stuck_clear",
            "tf_rise",
            "tf_fall",
            "wdf_any",
            "wdf_one",
            "wdf_zero",
            "weak_one",
            "weak_zero",
            "irf",
            "rdf",
            "drdf",
        )
        for name in planes:
            setattr(
                self, name, np.zeros((self.n_rows, self.lanes), dtype=np.uint64)
            )

        coupling: dict[str, list] = {
            KIND_CF_IN: [],
            KIND_CF_ID: [],
            KIND_CF_ST: [],
        }
        stateless: dict[str, list] = {
            KIND_INT_READ: [],
            KIND_SEU: [],
            KIND_DRF: [],
        }
        for member, lowered in enumerate(lowered_by_member):
            for spec in lowered:
                if spec.kind in coupling:
                    coupling[spec.kind].append((member, spec))
                    continue
                if spec.kind in stateless:
                    stateless[spec.kind].append((member, spec))
                    if spec.kind == KIND_DRF:
                        # A DRF cell's *write* behaviour is exactly the
                        # NWRC-weak-cell formulas (the floating bitline
                        # cannot flip the cell toward the fragile value),
                        # so its mask rides the weak planes; the decay
                        # clock lives in the retention group below.
                        row = row_index[(member, spec.victim.word)]
                        lane, mask = lanes_of(spec.victim.bit)
                        plane = self.weak_one if spec.value else self.weak_zero
                        plane[row, lane] |= np.uint64(mask)
                    continue
                row = row_index[(member, spec.victim.word)]
                lane, mask = lanes_of(spec.victim.bit)
                plane = self._plane_for(spec)
                plane[row, lane] |= np.uint64(mask)

        self.cf_in = _CouplingGroup(coupling[KIND_CF_IN], row_index, lanes_of, words)
        self.cf_id = _CouplingGroup(coupling[KIND_CF_ID], row_index, lanes_of, words)
        self.cf_st = _CouplingGroup(coupling[KIND_CF_ST], row_index, lanes_of, words)
        self.int_read = _StatelessGroup(
            stateless[KIND_INT_READ], row_index, lanes_of, words
        )
        self.seu = _StatelessGroup(stateless[KIND_SEU], row_index, lanes_of, words)
        self.retention = _StatelessGroup(
            stateless[KIND_DRF], row_index, lanes_of, words
        )
        self.has_stateless = bool(
            self.int_read.size or self.seu.size or self.retention.size
        )

        self.has_stuck = bool(self.stuck_set.any() or self.stuck_clear.any())
        self.has_tf_rise = bool(self.tf_rise.any())
        self.has_tf_fall = bool(self.tf_fall.any())
        self.has_wdf = bool(
            self.wdf_any.any() or self.wdf_one.any() or self.wdf_zero.any()
        )
        self.has_weak_one = bool(self.weak_one.any())
        self.has_weak_zero = bool(self.weak_zero.any())
        self.has_irf = bool(self.irf.any())
        self.has_rdf = bool(self.rdf.any())
        self.has_drdf = bool(self.drdf.any())

    def _plane_for(self, spec: LoweredFault):
        if spec.kind == KIND_STUCK:
            return self.stuck_set if spec.value else self.stuck_clear
        if spec.kind == KIND_TF:
            return self.tf_rise if spec.rising else self.tf_fall
        if spec.kind == KIND_WDF:
            if spec.value < 0:
                return self.wdf_any
            return self.wdf_one if spec.value else self.wdf_zero
        if spec.kind == KIND_WEAK:
            return self.weak_one if spec.value else self.weak_zero
        if spec.kind == KIND_IRF:
            return self.irf
        if spec.kind == KIND_RDF:
            return self.rdf
        if spec.kind == KIND_DRDF:
            return self.drdf
        raise ValueError(f"unknown lowered-fault kind {spec.kind!r}")

    def sync_fault_state(self) -> None:
        """Publish the advanced analytic state back to the fault objects.

        Scenario flows reuse fault objects across sessions, so the draw
        counters the evaluator consumed and the decay clocks it moved
        must land back on the behavioural faults once the batched session
        ends -- a later session (batched *or* reference) then resumes the
        decision sequence exactly where this one left off.
        """
        for group in (self.int_read, self.seu):
            if not group.size:
                continue
            for i, fault in enumerate(group.sources):
                if fault is not None:
                    fault._draws = int(group.counter[i])
        group = self.retention
        if group.size:
            for i, fault in enumerate(group.sources):
                if fault is None:
                    continue
                written = float(group.written_at[i])
                fault._written_at_ns = None if math.isnan(written) else written


class TableEvaluator:
    """Evaluates a compiled table element by element over a bucket session.

    Drives the same block decomposition as the clean-row path: the caller
    announces each element (:meth:`start_element`) and each block
    (:meth:`start_block`), brackets every write op with
    :meth:`prepare_write` / :meth:`commit_write` around its slab
    assignment, collects read mismatches from :meth:`read_op`, and closes
    the block with :meth:`end_block` (deferred coupling flips).
    """

    def __init__(
        self, table: CompiledFaultTable, sweep_plan, states, ecc=None
    ) -> None:
        self.table = table
        #: Optional :class:`repro.ecc.vector.BucketEcc` decoding read
        #: mismatches before they become failure hits.
        self._ecc = ecc
        self.words = table.words
        # The bucket's stacked state, bound once per session: the flat
        # (n_mem * words, lanes) view turns every gather/scatter into a
        # single-index fancy operation.
        self._states = states
        self._flat = states.reshape(-1, states.shape[2])
        self._identity_sub = np.arange(table.n_rows, dtype=np.int64)
        # Per-direction sweep offsets of every table row and coupling
        # endpoint (block-independent for the blocks of one sweep; see
        # BucketSweep.full_block_offsets).
        self.row_off = {
            asc: offsets[table.rows_word]
            for asc, offsets in sweep_plan.full_block_offsets.items()
        }
        self._group_off = {}
        for name in ("cf_in", "cf_id", "cf_st"):
            group = getattr(table, name)
            if not group.size:
                continue
            self._group_off[name] = {
                asc: (
                    offsets[group.agg_word],
                    offsets[group.vic_word],
                    offsets[group.agg_word] < offsets[group.vic_word],
                )
                for asc, offsets in sweep_plan.full_block_offsets.items()
            }
        # Per-direction sweep offsets of the stateless stateful groups.
        self._stateless_off = {}
        for name in ("int_read", "seu", "retention"):
            group = getattr(table, name)
            if not group.size:
                continue
            self._stateless_off[name] = {
                asc: offsets[group.vic_word]
                for asc, offsets in sweep_plan.full_block_offsets.items()
            }
        self._element_write_lanes: list = []
        self._access_ticks: tuple = ()
        self._per_address = 0
        self._ret_base_now = None
        self._ret_period = None

    @property
    def needs_timing(self) -> bool:
        """Whether :meth:`start_element` needs analytic clock parameters.

        True when retention entries are compiled: their decay decisions
        need each member's element-start wall clock (``base_now``) and
        cycle period, captured *before* the replay lane advances the
        time bases to end-of-element.
        """
        return self.table.retention.size > 0

    # ------------------------------------------------------------------ #
    # Element / block lifecycle                                          #
    # ------------------------------------------------------------------ #
    def start_element(
        self, plan: "ElementPlan", write_lanes_per_op, base_now=None, periods=None
    ) -> None:
        """Cache the element's write lanes, tick offsets and clock bases."""
        self._element_write_lanes = write_lanes_per_op
        self._access_ticks = plan.access_ticks
        self._per_address = plan.per_address_ticks
        ret = self.table.retention
        if ret.size:
            if base_now is None or periods is None:
                raise ValueError(
                    "retention entries require base_now/periods timing arrays"
                )
            self._ret_base_now = base_now[ret.member]
            self._ret_period = periods[ret.member]

    def start_block(self, plan, block_start: int, block_len: int):
        """Resolve the block's row subset and coupling schedules.

        Applies the coupling flips that the reference would fire *before*
        the victim's visit (aggressor earlier in the sweep) and defers the
        rest to :meth:`end_block`.
        """
        table = self.table
        asc = plan.ascending
        off = self.row_off[asc]
        full = block_len == self.words
        if full:
            idx = table._all_idx
            positions = block_start + off
        else:
            sel = off < block_len
            idx = table._all_idx[sel]
            positions = block_start + off[sel]
        ctx = _BlockContext(idx=idx, positions=positions)

        if not self._group_off and not self._stateless_off:
            return ctx
        if full:
            sub_map = self._identity_sub
        else:
            sub_map = np.full(table.n_rows, -1, dtype=np.int64)
            sub_map[idx] = np.arange(idx.size, dtype=np.int64)

        if "int_read" in self._stateless_off:
            ctx.int_in = self._stateless_off["int_read"][asc] < block_len
            ctx.int_sub = sub_map[table.int_read.vic_row]
        if "seu" in self._stateless_off:
            ctx.seu_in = self._stateless_off["seu"][asc] < block_len
        if "retention" in self._stateless_off:
            ret_off = self._stateless_off["retention"][asc]
            ctx.ret_in = ret_off < block_len
            # Sweep positions are only meaningful where ret_in holds; the
            # consumers mask with it before using the analytic clock.
            ctx.ret_pos = block_start + ret_off

        if not self._group_off:
            return ctx

        for name, mode in (("cf_in", "xor"), ("cf_id", "or")):
            group = getattr(table, name)
            if not group.size:
                continue
            agg_off, vic_off, before = self._group_off[name][asc]
            agg_in = agg_off < block_len
            vic_in = vic_off < block_len
            agg_pre = self._gather_agg(group)
            events, _ = self._schedule(group, agg_pre, agg_in, mode)
            immediate = events & agg_in & vic_in & before
            deferred = events & agg_in & ~(vic_in & before)
            if name == "cf_in":
                self._flip_victims(group, immediate)
                ctx.cf_in_deferred = deferred
            else:
                self._force_victims(group, immediate)
                ctx.cf_id_deferred = deferred

        group = table.cf_st
        if group.size:
            agg_off, vic_off, before = self._group_off["cf_st"][asc]
            agg_in = agg_off < block_len
            vic_in = vic_off < block_len
            agg_pre = self._gather_agg(group)
            _, agg_post = self._schedule(group, agg_pre, agg_in, None)
            use_post = agg_in & vic_in & before
            effective = np.where(use_post, agg_post, agg_pre)
            ctx.cfst_active = effective == group.state
            ctx.cfst_vic_in = vic_in
            ctx.cfst_vic_sub = sub_map[group.vic_row]
        return ctx

    def end_block(self, ctx: _BlockContext) -> None:
        """Apply coupling flips the reference fires after the victim visit."""
        if ctx.cf_in_deferred is not None:
            self._flip_victims(self.table.cf_in, ctx.cf_in_deferred)
        if ctx.cf_id_deferred is not None:
            self._force_victims(self.table.cf_id, ctx.cf_id_deferred)

    # ------------------------------------------------------------------ #
    # Operations                                                         #
    # ------------------------------------------------------------------ #
    def prepare_write(self, ctx: _BlockContext, write_lanes, is_nwrc, op_index=0):
        """Corrected post-write state of the block's table rows.

        Gathers the *old* state (call before the caller's slab
        assignment clobbers it), applies the per-kind write formulas,
        moves the retention decay clocks and returns the rows to scatter
        back via :meth:`commit_write`.
        """
        table = self.table
        idx = ctx.idx
        if not idx.size:
            return None
        old = self._flat[table.rows_flat[idx]]
        new = np.broadcast_to(write_lanes, old.shape).astype(np.uint64, copy=True)
        if table.has_tf_rise:
            mask = table.tf_rise[idx]
            new = (new & ~mask) | (write_lanes & old & mask)
        if table.has_tf_fall:
            mask = table.tf_fall[idx]
            new = (new & ~mask) | ((write_lanes | old) & mask)
        if table.has_wdf:
            effective = (
                table.wdf_any[idx]
                | (table.wdf_one[idx] & write_lanes)
                | (table.wdf_zero[idx] & ~write_lanes)
            )
            new ^= ~(write_lanes ^ old) & effective
        if is_nwrc:
            if table.has_weak_one:
                mask = table.weak_one[idx]
                new = (new & ~mask) | (write_lanes & old & mask)
            if table.has_weak_zero:
                mask = table.weak_zero[idx]
                new = (new & ~mask) | ((write_lanes | old) & mask)
        if table.has_stuck:
            new = (new | table.stuck_set[idx]) & ~table.stuck_clear[idx]
        group = table.cf_st
        if group.size and ctx.cfst_active is not None:
            sel = ctx.cfst_active & group.affects_write & ctx.cfst_vic_in
            if sel.any():
                self._scatter_forced(
                    new,
                    (ctx.cfst_vic_sub[sel], group.vic_lane[sel]),
                    group.vic_mask[sel],
                    group.forced[sel],
                )
        ret = table.retention
        if ret.size and ctx.ret_in is not None:
            new_bits = (write_lanes[ret.vic_lane] & ret.vic_mask) != 0
            to_fragile = new_bits == ret.fragile
            if is_nwrc:
                # The floating-bitline NWRC write cannot recharge the
                # leaking node: a fragile-value write leaves the clock
                # untouched; a successful flip away clears it.
                ret.written_at[ctx.ret_in & ~to_fragile] = math.nan
            else:
                now = self._op_now(ctx, op_index)
                start = ctx.ret_in & to_fragile
                ret.written_at[start] = now[start]
                ret.written_at[ctx.ret_in & ~to_fragile] = math.nan
        return new

    def commit_write(self, ctx: _BlockContext, corrected) -> None:
        """Publish :meth:`prepare_write`'s rows over the slab assignment."""
        if corrected is None:
            return
        self._flat[self.table.rows_flat[ctx.idx]] = corrected

    def read_op(self, ctx: _BlockContext, expected_lanes, op_index=0):
        """Evaluate one read over the block's table rows.

        Order mirrors the reference hook chain: retention decay and SEU
        strikes commit to the packed state *before* the stored gather (so
        every downstream plane sees the flipped cell, and destructive
        reads preserve the flip), intermittent read upsets perturb only
        the observed word.  Commits destructive-read flips to the packed
        state and returns ``(member, row, position, observed_word)``
        tuples for every mismatching row, for the caller to turn into
        failure records.
        """
        table = self.table
        idx = ctx.idx
        if not idx.size:
            return ()
        ret = table.retention
        if ret.size and ctx.ret_in is not None:
            live = ctx.ret_in & np.isfinite(ret.written_at)
            if live.any():
                now = self._op_now(ctx, op_index)
                stored_bits = (
                    self._flat[ret.vic_flat, ret.vic_lane] & ret.vic_mask
                ) != 0
                decayed = (
                    live
                    & (stored_bits == ret.fragile)
                    & (now - ret.written_at >= ret.retention_ns)
                )
                if decayed.any():
                    np.bitwise_xor.at(
                        self._flat,
                        (ret.vic_flat[decayed], ret.vic_lane[decayed]),
                        ret.vic_mask[decayed],
                    )
                    ret.written_at[decayed] = math.nan
        seu = table.seu
        if seu.size and ctx.seu_in is not None:
            upset = (
                _counter_bernoulli_mask(seu.seed, seu.counter, seu.probability)
                & ctx.seu_in
            )
            seu.counter[ctx.seu_in] += np.uint64(1)
            if upset.any():
                np.bitwise_xor.at(
                    self._flat,
                    (seu.vic_flat[upset], seu.vic_lane[upset]),
                    seu.vic_mask[upset],
                )
        stored = self._flat[table.rows_flat[idx]]
        observed = stored.copy()
        if table.has_irf:
            observed ^= table.irf[idx]
        if table.has_rdf:
            observed ^= table.rdf[idx]
        if table.has_stuck:
            observed = (observed | table.stuck_set[idx]) & ~table.stuck_clear[idx]
        group = table.cf_st
        if group.size and ctx.cfst_active is not None:
            sel = ctx.cfst_active & ctx.cfst_vic_in
            if sel.any():
                self._scatter_forced(
                    observed,
                    (ctx.cfst_vic_sub[sel], group.vic_lane[sel]),
                    group.vic_mask[sel],
                    group.forced[sel],
                )
        intg = table.int_read
        if intg.size and ctx.int_in is not None:
            upset = (
                _counter_bernoulli_mask(intg.seed, intg.counter, intg.probability)
                & ctx.int_in
            )
            intg.counter[ctx.int_in] += np.uint64(1)
            if upset.any():
                np.bitwise_xor.at(
                    observed,
                    (ctx.int_sub[upset], intg.vic_lane[upset]),
                    intg.vic_mask[upset],
                )
        if table.has_rdf or table.has_drdf:
            flips = table.rdf[idx] | table.drdf[idx]
            self._flat[table.rows_flat[idx]] = stored ^ flips
        mismatch = (observed != expected_lanes).any(axis=1)
        if not mismatch.any():
            return ()
        hit_idx = np.nonzero(mismatch)[0]
        rows = idx[hit_idx]
        ecc = self._ecc
        keep = corrected = None
        if ecc is not None:
            keep, corrected = ecc.decode_rows(
                table.rows_member[rows],
                table.rows_word[rows],
                observed[hit_idx] ^ expected_lanes,
            )
        hits = []
        for index, hit in enumerate(hit_idx):
            if keep is not None and not keep[index]:
                continue
            row = rows[index]
            word = lanes_to_word(observed[hit])
            if corrected is not None and corrected[index] >= 0:
                word ^= 1 << int(corrected[index])
            hits.append(
                (
                    int(table.rows_member[row]),
                    int(table.rows_word[row]),
                    int(ctx.positions[hit]),
                    word,
                )
            )
        return hits

    def _op_now(self, ctx: _BlockContext, op_index: int):
        """Analytic wall clock of op ``op_index`` at each retention entry.

        Replay ticks the time base *before* each access, so op ``j`` at
        sweep position ``p`` lands at ``element_base + p * per_address +
        access_ticks[j]`` cycles; ``base_now`` is each member's wall
        clock at element start (including delivery ticks), captured
        before the replay lane advanced it.  For the power-of-two-scaled
        periods the configurations use, the single multiply-add below
        reproduces the replay lane's accumulated float bit-for-bit.
        """
        ticks = ctx.ret_pos * self._per_address + self._access_ticks[op_index]
        return self._ret_base_now + ticks.astype(np.float64) * self._ret_period

    # ------------------------------------------------------------------ #
    # Coupling internals                                                 #
    # ------------------------------------------------------------------ #
    def _gather_agg(self, group: _CouplingGroup):
        """Current aggressor bits as booleans (entries,)."""
        lanes = self._flat[group.agg_flat, group.agg_lane]
        return (lanes & group.agg_mask) != 0

    def _schedule(self, group: _CouplingGroup, agg_pre, agg_in, mode):
        """Analytic aggressor trajectory over the element's write ops.

        Sound because a lowered coupling's aggressor cell carries no
        fault of its own (cell uniqueness): its bit simply tracks each
        write word.  Returns the aggregated trigger events (parity for
        ``"xor"``, any-fired for ``"or"``, ``None`` otherwise) and the
        post-element bits.
        """
        current = agg_pre.copy()
        events = None if mode is None else np.zeros(group.size, dtype=bool)
        for write_lanes in self._element_write_lanes:
            if write_lanes is None:
                continue
            new = (write_lanes[group.agg_lane] & group.agg_mask) != 0
            if mode is not None:
                match = np.where(group.rising, ~current & new, current & ~new)
                match &= agg_in
                if mode == "xor":
                    events ^= match
                else:
                    events |= match
            current = np.where(agg_in, new, current)
        return events, current

    def _flip_victims(self, group: _CouplingGroup, sel) -> None:
        if not sel.any():
            return
        np.bitwise_xor.at(
            self._flat,
            (group.vic_flat[sel], group.vic_lane[sel]),
            group.vic_mask[sel],
        )

    def _force_victims(self, group: _CouplingGroup, sel) -> None:
        if not sel.any():
            return
        self._scatter_forced(
            self._flat,
            (group.vic_flat[sel], group.vic_lane[sel]),
            group.vic_mask[sel],
            group.forced[sel],
        )

    @staticmethod
    def _scatter_forced(target, index, masks, forced) -> None:
        """Set/clear per-entry bit masks at ``index`` according to ``forced``."""
        set_masks = np.where(forced, masks, np.uint64(0))
        clear_masks = np.where(forced, np.uint64(0), masks)
        np.bitwise_or.at(target, index, set_masks)
        np.bitwise_and.at(target, index, ~clear_masks)
