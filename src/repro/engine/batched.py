"""Fleet-batched march execution: whole geometry buckets per vector op.

The numpy backend vectorizes *within* one SRAM; a fleet session over
hundreds of distributed small memories still pays the full Python
per-memory cost (plan construction, per-block array dispatch) once per
instance per element.  This tier removes that multiplier:

* the **geometry-bucketing planner** (:func:`geometry_buckets`,
  :func:`plan_session_buckets`) groups the vector-capable memories of a
  bank by ``(words, bits)``;
* each bucket is packed into one stacked ``(n_mem, words, lanes)`` uint64
  array (:func:`repro.engine.packing.pack_bank`) and every march element
  is applied to the whole stack as single fleet-wide ops -- one write
  assignment and one compare per operation per wrap-around block,
  regardless of how many SRAMs share the geometry;
* element plans are built once per bucket instead of once per memory
  (plans are pure functions of the widths, see
  :func:`repro.engine.session.session_step_plans`) and cached across
  campaigns sharing a (march, geometry) pair;
* *analytically evaluable* cell faults -- the deterministic kinds
  (stuck-at, transition, read/write-disturb, NWRC-weak, inter-word
  coupling) plus the stateful-but-closed-form ones (counter-based
  intermittent/soft-error upsets, retention decay with its analytic
  visit clock) -- are lowered into a compiled fault table
  (:mod:`repro.engine.fault_table`) and evaluated fleet-wide as masked
  vector ops inside the same block decomposition -- the dense-defect fast
  path;
* the remaining fault-hooked words keep the behavioural replay of
  :func:`repro.engine.kernel.replay_dirty_rows` -- exact sweep order and
  clocking per memory -- so the mechanisms with genuinely sequential
  state (intra-word coupling, legacy-stream intermittent faults behind
  the ``legacy_stream`` compat flag) observe reference-identical times.
  Session wrap-around is handled by the same block decomposition as the
  single-memory kernel.

The result is bit-exact against the reference and numpy paths (validated
by the differential fuzz matrix) while the Python overhead amortizes over
the bucket population.  ``BatchedBackend`` subclasses the numpy backend,
so raw single-memory march runs and the baseline's iterate-repair sparse
serial replay (:mod:`repro.engine.baseline_session`) run unchanged
through it; the batched win applies to full diagnosis sessions, where
:func:`repro.engine.session.run_session` dispatches here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.report import ProposedReport
from repro.core.scheme import FastDiagnosisScheme
from repro.ecc.vector import BucketEcc
from repro.engine.backends import NumpyBackend, register_backend, vector_capable
from repro.engine.fault_table import TableEvaluator, lower_bucket
from repro.engine.kernel import (
    CleanWordTracker,
    ElementPlan,
    _record,
    replay_dirty_positions,
    sync_clean_rows,
)
from repro.engine.packing import lanes_to_word, np, pack_bank, word_to_lanes
from repro.engine.session import (
    _run_memory_session,
    begin_session,
    finalize_memory_counters,
    finish_session,
    session_step_plans,
)
from repro.march.algorithm import PauseStep
from repro.march.simulator import FailureRecord
from repro.memory.sram import SRAM
from repro.telemetry.core import tracer as _tracer


class BatchedBackend(NumpyBackend):
    """Numpy backend whose sessions sweep geometry buckets as one array.

    For raw single-memory march runs this is exactly the numpy backend;
    selecting it for a session (``run_session`` / campaigns / fleets)
    activates the stacked execution of :func:`run_batched_session`.
    """

    name = "batched"


# --------------------------------------------------------------------- #
# Geometry-bucketing planner                                            #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GeometryBucket:
    """One same-geometry group of bank positions."""

    words: int
    bits: int
    indices: tuple[int, ...]


def geometry_buckets(geometries) -> dict[tuple[int, int], list[int]]:
    """Group indices of ``(words, bits)``-shaped entries by geometry.

    Accepts anything with ``words``/``bits`` attributes (geometries,
    SRAMs).  Bucket order follows first appearance, so planning is
    deterministic for a given bank order.
    """
    buckets: dict[tuple[int, int], list[int]] = {}
    for index, geometry in enumerate(geometries):
        buckets.setdefault((geometry.words, geometry.bits), []).append(index)
    return buckets


def plan_session_buckets(bank) -> tuple[list[GeometryBucket], list[int]]:
    """Split a bank into batched geometry buckets and fallback positions.

    Memories the vector path cannot represent (access tracing, decoder or
    column-mux faults) fall back to the per-memory session path; everyone
    else joins the bucket of its geometry, single-memory buckets included
    (a stack of one is still the vector path, just without amortization).
    """
    capable: list[int] = []
    fallback: list[int] = []
    for index, memory in enumerate(bank):
        if vector_capable(memory):
            capable.append(index)
        else:
            fallback.append(index)
    grouped = geometry_buckets([bank[index] for index in capable])
    buckets = [
        GeometryBucket(words, bits, tuple(capable[i] for i in members))
        for (words, bits), members in grouped.items()
    ]
    return buckets, fallback


def batched_backend_pays_off(geometries) -> bool:
    """Whether geometry bucketing amortizes anything for this bank shape.

    The fleet scheduler's ``auto`` planning upgrades to the batched
    backend exactly when some bucket holds at least two memories --
    otherwise every stack has depth one and the per-memory numpy path is
    the same work with less indirection.
    """
    return any(
        len(members) >= 2 for members in geometry_buckets(geometries).values()
    )


# --------------------------------------------------------------------- #
# Stacked session execution                                             #
# --------------------------------------------------------------------- #
def run_batched_session(scheme: FastDiagnosisScheme) -> ProposedReport:
    """Run one diagnosis session with geometry-bucketed stacked sweeps.

    Produces the same :class:`~repro.core.report.ProposedReport` as the
    reference and per-memory numpy paths, bit for bit (failure records in
    identical order, cycle and time accounting included).
    """
    algorithm, report, deliveries, nwrc_ops = begin_session(scheme)
    reads_per_word = algorithm.reads_per_word()
    buckets, fallback = plan_session_buckets(scheme.bank)
    for bucket in buckets:
        memories = [scheme.bank[index] for index in bucket.indices]
        for memory, failures in zip(
            memories, _run_bucket_session(scheme, memories, algorithm)
        ):
            report.failures[memory.name] = failures
    for index in fallback:
        memory = scheme.bank[index]
        report.failures[memory.name] = _run_memory_session(
            scheme, memory, algorithm
        )
    for memory in scheme.bank:
        finalize_memory_counters(
            scheme, memory, report.failures[memory.name], reads_per_word
        )
    return finish_session(scheme, report, deliveries, nwrc_ops)


class BucketSweep:
    """Per-bucket sweep geometry, resolved once for a whole session.

    Every element of a session sweeps the same controller address span,
    so the position/local-row maps (one per direction) and each memory's
    dirty sweep positions (dirty masks are static within a session) are
    computed here exactly once instead of once per element per memory.
    """

    def __init__(self, words: int, sweep: int, dirty_masks) -> None:
        self.words = words
        self.sweep = sweep
        positions = np.arange(sweep)
        self.positions = positions
        descending = (sweep - 1) - positions
        self.local_rows = {
            True: positions % words if sweep != words else positions,
            False: descending % words if sweep != words else descending,
        }
        self.dirty_positions = {
            ascending: [
                positions[dirty_masks[member][rows]].tolist()
                for member in range(dirty_masks.shape[0])
            ]
            for ascending, rows in self.local_rows.items()
        }
        # Row -> in-block offset for *full* blocks.  Full blocks all start
        # at a multiple of ``words``, so the offset of a row inside the
        # block is direction-dependent but block-independent: a row's
        # sweep position is ``block_start + offset``.
        rows = np.arange(words)
        self.full_block_offsets = {
            True: rows,
            False: (sweep - 1 - rows) % words,
        }


class _TimedEvaluator:
    """:class:`TableEvaluator` proxy attributing its time to the table lane.

    Brackets every evaluator call with the monotonic clock, accumulating
    into ``lane.table.ns`` (and counting each block's visited table rows
    into ``lane.table.words``), so the vector section's remainder is the
    clean lane's share.  Constructed only when telemetry is enabled; the
    normal path keeps the bare evaluator.
    """

    __slots__ = ("_inner", "_counters")

    def __init__(self, inner: TableEvaluator, counters) -> None:
        self._inner = inner
        self._counters = counters

    @property
    def needs_timing(self) -> bool:
        return self._inner.needs_timing

    def start_element(
        self, plan, write_lanes_per_op, base_now=None, periods=None
    ) -> None:
        started = time.perf_counter_ns()
        self._inner.start_element(plan, write_lanes_per_op, base_now, periods)
        self._counters.add("lane.table.ns", time.perf_counter_ns() - started)

    def start_block(self, plan, block_start, block_len):
        started = time.perf_counter_ns()
        ctx = self._inner.start_block(plan, block_start, block_len)
        counters = self._counters
        counters.add("lane.table.ns", time.perf_counter_ns() - started)
        counters.add("lane.table.words", int(ctx.idx.size))
        return ctx

    def read_op(self, ctx, expected_lanes, op_index=0):
        started = time.perf_counter_ns()
        hits = self._inner.read_op(ctx, expected_lanes, op_index)
        self._counters.add("lane.table.ns", time.perf_counter_ns() - started)
        return hits

    def prepare_write(self, ctx, write_lanes, is_nwrc, op_index=0):
        started = time.perf_counter_ns()
        corrected = self._inner.prepare_write(ctx, write_lanes, is_nwrc, op_index)
        self._counters.add("lane.table.ns", time.perf_counter_ns() - started)
        return corrected

    def commit_write(self, ctx, corrected) -> None:
        started = time.perf_counter_ns()
        self._inner.commit_write(ctx, corrected)
        self._counters.add("lane.table.ns", time.perf_counter_ns() - started)

    def end_block(self, ctx) -> None:
        started = time.perf_counter_ns()
        self._inner.end_block(ctx)
        self._counters.add("lane.table.ns", time.perf_counter_ns() - started)


def _run_bucket_session(
    scheme: FastDiagnosisScheme, memories: list[SRAM], algorithm
) -> list[list[FailureRecord]]:
    """Run every element of the session over one stacked geometry bucket."""
    plans = session_step_plans(scheme, memories[0], algorithm)
    states, _, _, lanes = pack_bank(memories)
    # Three-way row partition: ideal rows take the block-op path, rows
    # whose faults all lower take the compiled-table path, and the rest
    # keep the behavioural replay lane.
    lanes_split = lower_bucket(memories)
    sweep = BucketSweep(
        memories[0].words, scheme.controller_words, lanes_split.replay_masks
    )
    ecc = None
    if scheme.ecc is not None:
        ecc = BucketEcc(
            memories[0].bits,
            [scheme.ecc_observers[memory.name] for memory in memories],
        )
    evaluator = (
        TableEvaluator(lanes_split.table, sweep, states, ecc)
        if lanes_split.table is not None
        else None
    )
    tr = _tracer()
    if tr.enabled:
        counters = tr.counters
        counters.add("bucket.sessions")
        counters.add("bucket.memories", len(memories))
        counters.add("bucket.replay_rows", int(lanes_split.replay_masks.sum()))
        counters.add("bucket.table_rows", int(lanes_split.table_masks.sum()))
        counters.add("bucket.clean_rows", int(lanes_split.clean_masks.sum()))
        if evaluator is not None:
            evaluator = _TimedEvaluator(evaluator, counters)
    failures: list[list[FailureRecord]] = [[] for _ in memories]
    tracker = CleanWordTracker()
    for plan in plans:
        if isinstance(plan, PauseStep):
            for memory in memories:
                memory.pause(plan.duration_ns)
            continue
        element_args = (
            memories,
            states,
            lanes_split.clean_masks,
            plan,
            lanes,
            sweep,
            evaluator,
            tracker,
            ecc,
        )
        if tr.enabled:
            with tr.span(
                "march.element",
                "march",
                step=plan.step_label,
                memories=len(memories),
            ):
                member_failures = run_element_batched(*element_args)
        else:
            member_failures = run_element_batched(*element_args)
        for member, records in enumerate(member_failures):
            failures[member].extend(records)
    if lanes_split.table is not None:
        # Multi-session flows (test -> repair -> retest) reuse fault
        # objects: hand the advanced draw counters / decay clocks back so
        # the next session resumes the decision sequences exactly.
        lanes_split.table.sync_fault_state()
    vector_masks = lanes_split.vector_masks
    for member, memory in enumerate(memories):
        sync_clean_rows(memory, states[member], vector_masks[member])
    return failures


def run_element_batched(
    memories: list[SRAM],
    states,
    clean_masks,
    plan: ElementPlan,
    lanes: int,
    sweep_plan: BucketSweep,
    evaluator: "TableEvaluator | None" = None,
    tracker: CleanWordTracker | None = None,
    ecc: "BucketEcc | None" = None,
) -> list[list[FailureRecord]]:
    """Execute one element over a same-geometry stack of memories.

    ``states`` is the packed ``(n_mem, words, lanes)`` array --
    authoritative for clean and fault-table rows (behavioural-replay rows
    live in the memory objects).  ``evaluator`` is the bucket's compiled
    fault table (:mod:`repro.engine.fault_table`), evaluated inside the
    same block decomposition as the clean rows; ``tracker`` (one per
    bucket session) skips clean compares that provably cannot mismatch.
    ``ecc`` (the bucket's stacked SEC-DED decoder, also held by the
    evaluator) filters clean-path mismatches through the on-die
    correction before records form.  Returns one reference-ordered
    failure list per memory, exactly what
    :func:`repro.engine.kernel.run_element` would produce memory by
    memory.
    """
    words = sweep_plan.words
    sweep = sweep_plan.sweep
    ops = plan.ops
    per_address = plan.per_address_ticks
    records: list[list[tuple[int, int, FailureRecord]]] = [[] for _ in memories]

    positions = sweep_plan.positions
    local_rows = sweep_plan.local_rows[plan.ascending]
    dirty_positions = sweep_plan.dirty_positions[plan.ascending]

    # Retention entries need each member's element-start wall clock and
    # cycle period, captured *before* the replay loop below advances the
    # time bases to end-of-element.  The expression mirrors the replay
    # lane's ``tick(deliver_ticks)`` float arithmetic exactly.
    base_now = periods = None
    if evaluator is not None and evaluator.needs_timing:
        base_now = np.array(
            [
                memory.timebase.now_ns
                + plan.deliver_ticks * memory.timebase.period_ns
                for memory in memories
            ],
            dtype=np.float64,
        )
        periods = np.array(
            [memory.timebase.period_ns for memory in memories], dtype=np.float64
        )

    tr = _tracer()
    telem = tr.enabled
    if telem:
        counters = tr.counters
        clean_total = int(clean_masks.sum())
        replay_started = time.perf_counter_ns()

    # Replay rows: per-memory behavioural replay in exact sweep order and
    # time; every other row's share of each schedule is pure clocking.
    for member, memory in enumerate(memories):
        timebase = memory.timebase
        if plan.deliver_ticks:
            timebase.tick(plan.deliver_ticks)
        base_cycles = timebase.cycles
        if dirty_positions[member]:
            records[member].extend(
                replay_dirty_positions(
                    memory,
                    plan,
                    dirty_positions[member],
                    base_cycles,
                    per_address,
                    ecc.observers[member] if ecc is not None else None,
                )
            )
        timebase.tick(base_cycles + sweep * per_address - timebase.cycles)

    if telem:
        vector_started = time.perf_counter_ns()
        replay_words = sum(len(member) for member in dirty_positions)
        counters.add("lane.replay.ns", vector_started - replay_started)
        counters.add("lane.replay.words", replay_words)
        table_ns_before = counters.get("lane.table.ns")
        table_words_before = counters.get("lane.table.words")

    # Clean and table rows: fleet-wide vector ops, block-wise so
    # wrap-around revisits never touch a row twice inside one
    # assignment/compare.
    write_lanes_per_op = [
        None if op_plan.op.is_read else word_to_lanes(op_plan.write_word, lanes)
        for op_plan in ops
    ]
    if evaluator is not None:
        evaluator.start_element(plan, write_lanes_per_op, base_now, periods)
    if clean_masks.any() or evaluator is not None:
        for block_start in range(0, sweep, words):
            block_end = min(block_start + words, sweep)
            wrapped = block_start >= words
            full = block_end - block_start == words
            block_rows = local_rows[block_start:block_end]
            block_positions = positions[block_start:block_end]
            # A full block visits every row exactly once, so the whole
            # slab can be addressed in natural row order; rows map back
            # to sweep positions through the precomputed offsets only
            # when a mismatch is recorded.
            offsets = sweep_plan.full_block_offsets[plan.ascending]
            ctx = (
                evaluator.start_block(plan, block_start, block_end - block_start)
                if evaluator is not None
                else None
            )
            if telem:
                block_clean = (
                    clean_total if full else int(clean_masks[:, block_rows].sum())
                )
            for op_index, op_plan in enumerate(ops):
                if op_plan.op.is_read:
                    expected = (
                        op_plan.expected_wrapped if wrapped else op_plan.expected_plain
                    )
                    expected_lanes = None
                    if tracker is None or tracker.value != expected:
                        expected_lanes = word_to_lanes(expected, lanes)
                        if full:
                            mismatch = (states != expected_lanes).any(axis=2)
                            mismatch &= clean_masks
                        else:
                            mismatch = (states[:, block_rows] != expected_lanes).any(
                                axis=2
                            )
                            mismatch &= clean_masks[:, block_rows]
                        if telem:
                            counters.add("clean.compares_done", block_clean)
                    else:
                        mismatch = None
                        if telem:
                            counters.add("clean.compares_skipped", block_clean)
                    if mismatch is not None and mismatch.any():
                        member_hits, row_hits = np.nonzero(mismatch)
                        keep = corrected = None
                        if ecc is not None:
                            hit_rows = (
                                row_hits if full else block_rows[row_hits]
                            )
                            keep, corrected = ecc.decode_rows(
                                member_hits,
                                hit_rows,
                                states[member_hits, hit_rows] ^ expected_lanes,
                            )
                        for index, (member, hit) in enumerate(
                            zip(member_hits, row_hits)
                        ):
                            if keep is not None and not keep[index]:
                                continue
                            member = int(member)
                            row = int(block_rows[hit]) if not full else int(hit)
                            position = (
                                block_start + int(offsets[row])
                                if full
                                else int(block_positions[hit])
                            )
                            observed = lanes_to_word(states[member, row])
                            if corrected is not None and corrected[index] >= 0:
                                observed ^= 1 << int(corrected[index])
                            records[member].append(
                                (
                                    position,
                                    op_index,
                                    _record(
                                        memories[member],
                                        plan,
                                        op_plan,
                                        op_index,
                                        row,
                                        expected,
                                        observed,
                                    ),
                                )
                            )
                    if ctx is not None:
                        if expected_lanes is None:
                            expected_lanes = word_to_lanes(expected, lanes)
                        for member, row, position, observed in evaluator.read_op(
                            ctx, expected_lanes, op_index
                        ):
                            records[member].append(
                                (
                                    position,
                                    op_index,
                                    _record(
                                        memories[member],
                                        plan,
                                        op_plan,
                                        op_index,
                                        row,
                                        expected,
                                        observed,
                                    ),
                                )
                            )
                else:
                    # Replay rows are never read from the packed state and
                    # never synced back, so writing the whole block (or
                    # slab) is safe and avoids a mask gather per memory;
                    # table rows are re-published right after with their
                    # fault-corrected values.
                    write_lanes = write_lanes_per_op[op_index]
                    corrected = (
                        evaluator.prepare_write(
                            ctx, write_lanes, op_plan.op.is_nwrc, op_index
                        )
                        if ctx is not None
                        else None
                    )
                    if full:
                        states[:] = write_lanes
                    else:
                        states[:, block_rows] = write_lanes
                    if tracker is not None:
                        tracker.value = op_plan.write_word
                    if ctx is not None:
                        evaluator.commit_write(ctx, corrected)
            if ctx is not None:
                evaluator.end_block(ctx)

    if telem:
        # The vector section's time minus the evaluator's accumulated
        # share is the clean lane's; the word balance mirrors it.
        vector_ns = time.perf_counter_ns() - vector_started
        table_ns = counters.get("lane.table.ns") - table_ns_before
        table_words = counters.get("lane.table.words") - table_words_before
        counters.add("lane.clean.ns", max(0, vector_ns - table_ns))
        counters.add(
            "lane.clean.words",
            sweep * len(memories) - replay_words - table_words,
        )

    for member_records in records:
        member_records.sort(key=lambda item: (item[0], item[1]))
    return [[record for _, _, record in member] for member in records]


register_backend("batched", BatchedBackend)
