"""Fast execution of a full baseline (Huang-Jone) diagnosis session.

:meth:`repro.baseline.scheme.HuangJoneScheme.diagnose` comes in two modes.
The *effective* mode computes each iteration's localization outcome in
closed form from the ground truth -- already constant-cost, so the runner
delegates it verbatim.  The *bit-accurate* mode actually shifts every
serial cycle through the faulty memories and a fault-free twin, which is
exact but ``O(k * n * c)`` behavioural accesses per memory -- the
iterative DIAG-RSMARCH cost the paper's R measures.

``run_baseline_session`` executes that iterate-repair flow through the
same pluggable backend registry as the proposed scheme
(:mod:`repro.engine.backends`) and produces the *same*
:class:`~repro.baseline.scheme.BaselineReport` -- iteration count,
localization records (order included) and final memory state, bit for
bit.  With the numpy backend, each memory whose configuration the sparse
serial kernel can represent (no decoder/column-mux faults, no tracing) is
replayed through :mod:`repro.engine.serial_kernel`: only fault-hooked
words go through the behavioural serial path, clean words are accounted
arithmetically, and the good-machine twin is replaced by its closed-form
stream.  Everything else (reference backend, unsupported memories,
effective mode) delegates to the pure-Python scheme so behaviour --
errors included -- stays identical.
"""

from __future__ import annotations

from repro.baseline.scheme import BaselineReport, HuangJoneScheme
from repro.engine.backends import (
    MarchBackend,
    NumpyBackend,
    ReferenceBackend,
    resolve_backend,
)
from repro.engine.packing import HAVE_NUMPY
from repro.engine.serial_kernel import (
    expected_stream,
    serial_fill_sweep,
    serial_observe_sweep,
    sync_clean_serial_words,
)
from repro.faults.injector import FaultInjector
from repro.memory.geometry import CellRef
from repro.memory.sram import SRAM
from repro.serial.shift_register import ShiftDirection
from repro.util.bitops import checkerboard, mask
from repro.util.validation import require


def run_baseline_session(
    scheme: HuangJoneScheme,
    injector: FaultInjector,
    backend: str | MarchBackend | None = "auto",
    include_drf: bool = False,
    bit_accurate: bool = False,
    max_iterations: int | None = None,
    early_abort: bool = False,
) -> BaselineReport:
    """Run one baseline diagnosis session through the selected backend.

    With the reference backend (or in effective mode, which is already
    closed-form) this is exactly ``scheme.diagnose(...)``; with the numpy
    backend the same report is produced bit-identically but per-iteration
    failure capture replays only fault-hooked words.  ``early_abort``
    (bit-accurate mode, both backends) skips the trailing no-progress
    iterations once every pending fault is serially invisible -- it can
    lower the reported iteration count but provably never changes the
    localized fault set (see
    :meth:`~repro.baseline.scheme.HuangJoneScheme.diagnose`).
    """
    resolved = resolve_backend(backend)
    require(
        isinstance(resolved, (NumpyBackend, ReferenceBackend)),
        f"run_baseline_session supports the 'reference' and 'numpy' "
        f"backends, got {type(resolved).__name__}",
    )
    fast = isinstance(resolved, NumpyBackend) and HAVE_NUMPY and bit_accurate
    if not fast:
        return scheme.diagnose(
            injector,
            include_drf=include_drf,
            bit_accurate=bit_accurate,
            max_iterations=max_iterations,
            early_abort=early_abort,
        )
    return _run_fast_bit_accurate(
        scheme, resolved, injector, include_drf, max_iterations, early_abort
    )


def _run_fast_bit_accurate(
    scheme: HuangJoneScheme,
    backend: MarchBackend,
    injector: FaultInjector,
    include_drf: bool,
    max_iterations: int | None,
    early_abort: bool,
) -> BaselineReport:
    """The reference's iterate-repair session with sparse serial replay.

    Report assembly and the loop itself (iteration budget, pending/seen
    bookkeeping, repair and missed-fault accounting) all run in the
    scheme -- only the per-(memory, direction) localization probe is
    swapped for the sparse replay, so the bit-exact contract cannot
    drift structurally.
    """

    def localize(memory: SRAM, direction: ShiftDirection):
        if backend.supports_baseline(memory):
            return _localize_fast(memory, direction)
        return scheme._localize_stream_mismatch(memory, direction)

    return scheme.diagnose(
        injector,
        include_drf=include_drf,
        bit_accurate=True,
        max_iterations=max_iterations,
        early_abort=early_abort,
        localize=localize,
    )


def _localize_fast(
    memory: SRAM, read_direction: ShiftDirection
) -> CellRef | None:
    """Sparse-replay equivalent of the scheme's stream-mismatch probe.

    Runs the same three probes (solid polarities plus the checkerboard
    pair) in the same order, replaying only fault-hooked words; the
    fault-free twin of the reference is replaced by the closed-form
    expected stream, which is what the twin's sweeps reduce to.
    """
    bits = memory.bits
    ones = mask(bits)
    probes = [
        (ones, 0),
        (0, ones),
        (checkerboard(bits, phase=1), checkerboard(bits, phase=0)),
    ]
    write_direction = (
        ShiftDirection.LEFT
        if read_direction is ShiftDirection.RIGHT
        else ShiftDirection.RIGHT
    )
    found: CellRef | None = None
    last_refill = 0
    for fill_pattern, read_refill in probes:
        dirty = sorted(memory.hooked_words())
        serial_fill_sweep(memory, dirty, fill_pattern, write_direction)
        hit = serial_observe_sweep(
            memory,
            dirty,
            read_refill,
            read_direction,
            expected_stream(fill_pattern, bits, read_direction),
        )
        last_refill = read_refill
        if hit is not None:
            address, cycle = hit
            if read_direction is ShiftDirection.RIGHT:
                found = CellRef(address, bits - 1 - cycle)
            else:
                found = CellRef(address, cycle)
            break
    sync_clean_serial_words(memory, last_refill)
    return found
