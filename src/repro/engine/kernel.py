"""Bit-parallel march-element executor shared by the engine's fast paths.

Both the raw march backend (:mod:`repro.engine.backends`) and the fast
proposed-scheme session (:mod:`repro.engine.session`) execute the same
inner structure: one march element swept over a memory, with per-operation
write data, expected read data (possibly different after the element's
address sweep wraps around a smaller memory) and a per-operation clock
cost.  This module runs that structure *bit-exactly* but vectorized:

* **Clean words** -- words whose accesses can trigger no fault hook
  (:meth:`repro.memory.SRAM.hooked_words`) -- behave ideally, so a whole
  element is applied to all of them at once: writes are whole-array lane
  assignments, reads are whole-array lane compares.  The sweep is split
  into *blocks* of at most ``memory.words`` consecutive positions so that
  no word is touched twice inside one vector op (wrap-around revisits land
  in later blocks, which also fixes the wrapped-expectation flag per
  block).
* **Dirty words** are replayed through the behavioural access path
  (``memory.read`` / ``memory.write`` / ``memory.nwrc_write``) in exact
  sweep order, with the shared time base fast-forwarded to the cycle the
  reference implementation would show at each visit -- so stateful faults
  (retention decay, coupling, read-destructive) observe identical times
  and orderings.

Failure records from both populations are merged back into the reference's
address-major order, so result equality is exact down to list order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.ecc.vector import decode_mismatches
from repro.engine.packing import (
    lanes_for,
    lanes_to_word,
    np,
    pack_state,
    word_to_lanes,
)
from repro.march.ops import Operation
from repro.march.simulator import FailureRecord
from repro.memory.sram import SRAM
from repro.telemetry.core import tracer as _tracer


def pack_memory(memory: SRAM):
    """Pack a memory for vector execution.

    Returns ``(state, clean_mask, dirty_mask, lanes)``: the ``(words,
    lanes)`` uint64 state array, the complementary clean/dirty row masks
    (dirty = any fault hook can fire there) and the lane count.  The state
    array is authoritative for clean rows only; hand it back through
    :func:`sync_clean_rows` when the run finishes.
    """
    lanes = lanes_for(memory.bits)
    state = pack_state(memory.dump(), lanes)
    dirty_mask = np.zeros(memory.words, dtype=bool)
    for word in memory.hooked_words():
        dirty_mask[word] = True
    return state, ~dirty_mask, dirty_mask, lanes


def sync_clean_rows(memory: SRAM, state, clean_mask) -> None:
    """Write the packed clean rows back into the behavioural memory."""
    rows = np.nonzero(clean_mask)[0].tolist()
    if not rows:
        return
    values = unpack_columns(state)
    memory.force_store_rows(rows, values)


def unpack_columns(state) -> list[int]:
    """Reassemble a packed ``(words, lanes)`` array into Python-int words.

    Bulk counterpart of :func:`repro.engine.packing.lanes_to_word`: one
    C-level ``tolist`` per lane instead of one array slice per row.
    """
    lanes = state.shape[1]
    values = state[:, 0].tolist()
    for lane in range(1, lanes):
        shift = 64 * lane
        column = state[:, lane].tolist()
        values = [value | (high << shift) for value, high in zip(values, column)]
    return values


@dataclass
class CleanWordTracker:
    """Tracks the single word every *clean* row holds, when provable.

    Clean rows have no fault hooks, so after any write operation they all
    hold exactly the written word -- the ideal machine's trajectory.  A
    read whose expectation equals that tracked word cannot mismatch on
    any clean row, so the fleet-batched tier skips the whole stacked-slab
    compare for it; that is every read of a consistent march under
    matching backgrounds.  ``None`` (pre-first-write, arbitrary packed
    contents) or a mismatching expectation (e.g. the Sec. 3.2 LSB-first
    coverage-loss scenario) falls back to the exact compare, so results
    never change.  One tracker spans a whole bucket session: blocks
    process sequentially over the same physical rows, so the tracked
    value carries across blocks and elements.
    """

    value: int | None = None


@dataclass(frozen=True)
class OpPlan:
    """One march operation with its concrete data and clock cost."""

    op: Operation
    operation: str
    #: Word actually written (None for reads).  Already width-adapted.
    write_word: int | None
    #: Expected read data before the sweep wraps (None for writes).
    expected_plain: int | None
    #: Expected read data once the sweep has wrapped around the memory.
    expected_wrapped: int | None
    #: Clock cycles the reference consumes per application (1 for writes;
    #: ``1 + c`` for proposed-scheme reads, 1 for raw-simulator reads).
    tick_cost: int


@dataclass(frozen=True)
class ElementPlan:
    """One march element fully resolved against one memory."""

    step_index: int
    step_label: str
    #: Background stored in failure records (raw: the algorithm background;
    #: session: the width-masked correct background).
    record_background: int
    #: Cycles consumed before the sweep (serial background delivery).
    deliver_ticks: int
    ascending: bool
    #: Number of sweep positions (controller words for sessions; the
    #: memory's own word count for raw march runs).
    sweep_length: int
    ops: tuple[OpPlan, ...]

    def __post_init__(self) -> None:
        # Flat per-op tuples so the behavioural replay's hot loop skips
        # attribute/property dispatch: (is_read, is_nwrc, write_word,
        # expected_plain, expected_wrapped, extra_ticks, op_plan).
        object.__setattr__(
            self,
            "compiled_ops",
            tuple(
                (
                    op_plan.op.is_read,
                    op_plan.op.is_nwrc,
                    op_plan.write_word,
                    op_plan.expected_plain,
                    op_plan.expected_wrapped,
                    op_plan.tick_cost - 1,
                    op_plan,
                )
                for op_plan in self.ops
            ),
        )
        # Analytic clock offsets: the replay lane executes op ``j`` of
        # sweep position ``p`` on cycle ``element_base + p * per_address
        # + access_ticks[j]`` (each access ticks once *before* it fires,
        # reads then consume their extra compare ticks).  The compiled
        # fault table uses these to evaluate time-dependent faults
        # (retention decay) without replaying.
        per_address = 0
        access_ticks = []
        for op_plan in self.ops:
            access_ticks.append(per_address + 1)
            per_address += op_plan.tick_cost
        object.__setattr__(self, "per_address_ticks", per_address)
        object.__setattr__(self, "access_ticks", tuple(access_ticks))


def replay_dirty_rows(
    memory: SRAM,
    dirty_mask,
    plan: ElementPlan,
    positions,
    local_rows,
    base_cycles: int,
    per_address: int,
    ecc=None,
) -> list[tuple[int, int, FailureRecord]]:
    """Behavioural replay of fault-hooked rows in exact sweep order.

    The shared time base is fast-forwarded to the cycle the reference
    implementation would show at each visit, so stateful faults observe
    identical times and orderings.  Returns ``(position, op_index,
    record)`` triples for merging back into reference order.
    """
    return replay_dirty_positions(
        memory,
        plan,
        positions[dirty_mask[local_rows]].tolist(),
        base_cycles,
        per_address,
        ecc,
    )


def replay_dirty_positions(
    memory: SRAM,
    plan: ElementPlan,
    dirty_positions: list[int],
    base_cycles: int,
    per_address: int,
    ecc=None,
) -> list[tuple[int, int, FailureRecord]]:
    """:func:`replay_dirty_rows` with the sweep positions pre-resolved.

    The batched tier precomputes each memory's dirty positions once per
    session (they depend only on the static dirty mask and the sweep
    direction) instead of re-masking the whole sweep per element; local
    rows fall out of the position arithmetically.

    Accesses go through the memory's ideal-periphery replay lane
    (:meth:`repro.memory.sram.SRAM.replay_read` /
    :meth:`~repro.memory.sram.SRAM.replay_write`), which is exact because
    every caller of the vector path has already established the
    fault-free-decoder/mux, no-tracing preconditions.

    ``ecc`` is the memory's :class:`repro.ecc.observer.EccObserver` (or
    ``None`` for raw observation): each mismatch is decoded scalar-wise --
    the replay lane is scalar anyway -- and masked mismatches produce no
    record.
    """
    tr = _tracer()
    if tr.enabled and dirty_positions:
        # One access per operation per replayed sweep position -- the
        # behavioural-replay traffic the lane attribution quantifies.
        tr.counters.add(
            "replay.accesses", len(dirty_positions) * len(plan.compiled_ops)
        )
    timebase = memory.timebase
    seek = timebase.seek_cycles
    tick = timebase.tick
    read = memory.replay_read
    write = memory.replay_write
    compiled = plan.compiled_ops
    words = memory.words
    ascending = plan.ascending
    last = plan.sweep_length - 1
    records: list[tuple[int, int, FailureRecord]] = []
    for position in dirty_positions:
        local = (position if ascending else last - position) % words
        wrapped = position >= words
        seek(base_cycles + position * per_address)
        for op_index, (
            is_read,
            is_nwrc,
            write_word,
            expected_plain,
            expected_wrapped,
            extra_ticks,
            op_plan,
        ) in enumerate(compiled):
            if is_read:
                observed = read(local)
                if extra_ticks:
                    tick(extra_ticks)
                expected = expected_wrapped if wrapped else expected_plain
                if observed != expected:
                    if ecc is not None:
                        observed = ecc.observe(local, expected, observed)
                        if observed == expected:
                            continue
                    records.append(
                        (
                            position,
                            op_index,
                            _record(memory, plan, op_plan, op_index, local, expected, observed),
                        )
                    )
            else:
                write(local, write_word, is_nwrc)
    return records


def run_element(
    memory: SRAM,
    state,
    clean_mask,
    dirty_mask,
    plan: ElementPlan,
    lanes: int,
    ecc=None,
) -> list[FailureRecord]:
    """Execute one element; returns its failures in reference order.

    ``state`` is the packed ``(words, lanes)`` array -- authoritative for
    clean rows only (dirty rows live in the memory's behavioural state).
    With ``ecc`` (the memory's observer) set, clean-path mismatches go
    through the lane-plane SEC-DED decoder in bulk and masked rows are
    dropped before records form.
    """
    words = memory.words
    sweep = plan.sweep_length
    ops = plan.ops
    per_address = sum(op.tick_cost for op in ops)
    timebase = memory.timebase
    if plan.deliver_ticks:
        timebase.tick(plan.deliver_ticks)
    base_cycles = timebase.cycles
    records: list[tuple[int, int, FailureRecord]] = []

    positions = np.arange(sweep)
    addresses = positions if plan.ascending else (sweep - 1) - positions
    local_rows = addresses % words if sweep != words else addresses

    tr = _tracer()
    telem = tr.enabled
    if telem:
        replay_started = time.perf_counter_ns()

    # Dirty rows: behavioural replay in exact sweep order and time.
    replay_words = 0
    if dirty_mask.any():
        if telem:
            replay_words = int(dirty_mask[local_rows].sum())
        records.extend(
            replay_dirty_rows(
                memory, dirty_mask, plan, positions, local_rows, base_cycles,
                per_address, ecc,
            )
        )

    # The clean rows' share of the schedule is pure clocking.
    timebase.tick(base_cycles + sweep * per_address - timebase.cycles)

    if telem:
        clean_started = time.perf_counter_ns()
        counters = tr.counters
        counters.add("lane.replay.ns", clean_started - replay_started)
        counters.add("lane.replay.words", replay_words)
        counters.add("lane.clean.words", sweep - replay_words)

    # Clean rows: block-wise vector ops (a block never revisits a row).
    if clean_mask.any():
        for block_start in range(0, sweep, words):
            block_end = min(block_start + words, sweep)
            wrapped = block_start >= words
            block_rows = local_rows[block_start:block_end]
            visited = clean_mask[block_rows]
            rows = block_rows[visited]
            if rows.size == 0:
                continue
            block_positions = positions[block_start:block_end][visited]
            for op_index, op_plan in enumerate(ops):
                if op_plan.op.is_read:
                    expected = (
                        op_plan.expected_wrapped if wrapped else op_plan.expected_plain
                    )
                    expected_lanes = word_to_lanes(expected, lanes)
                    mismatch = (state[rows] != expected_lanes).any(axis=1)
                    if mismatch.any():
                        hits = np.nonzero(mismatch)[0]
                        keep = corrected = None
                        if ecc is not None:
                            hit_rows = rows[hits]
                            keep, corrected = decode_mismatches(
                                ecc, hit_rows, state[hit_rows] ^ expected_lanes
                            )
                        for index, hit in enumerate(hits):
                            if keep is not None and not keep[index]:
                                continue
                            row = int(rows[hit])
                            observed = lanes_to_word(state[row])
                            if corrected is not None and corrected[index] >= 0:
                                observed ^= 1 << int(corrected[index])
                            records.append(
                                (
                                    int(block_positions[hit]),
                                    op_index,
                                    _record(
                                        memory,
                                        plan,
                                        op_plan,
                                        op_index,
                                        row,
                                        expected,
                                        observed,
                                    ),
                                )
                            )
                else:
                    state[rows] = word_to_lanes(op_plan.write_word, lanes)

    if telem:
        counters.add("lane.clean.ns", time.perf_counter_ns() - clean_started)

    records.sort(key=lambda item: (item[0], item[1]))
    return [record for _, _, record in records]


def run_element_slow(
    memory: SRAM, plan: ElementPlan, ecc=None
) -> list[FailureRecord]:
    """Pure-Python fallback executing a plan exactly like the reference.

    Used for memories the vector path cannot represent (decoder or
    column-mux faults, access tracing); behaviour and clocking match the
    reference implementations cycle for cycle.
    """
    words = memory.words
    if plan.deliver_ticks:
        memory.timebase.tick(plan.deliver_ticks)
    records: list[FailureRecord] = []
    for position in range(plan.sweep_length):
        address = position if plan.ascending else plan.sweep_length - 1 - position
        local = address % words
        wrapped = position >= words
        for op_index, op_plan in enumerate(plan.ops):
            operation = op_plan.op
            if operation.is_read:
                observed = memory.read(local)
                if op_plan.tick_cost > 1:
                    memory.timebase.tick(op_plan.tick_cost - 1)
                expected = (
                    op_plan.expected_wrapped if wrapped else op_plan.expected_plain
                )
                if observed != expected:
                    if ecc is not None:
                        observed = ecc.observe(local, expected, observed)
                        if observed == expected:
                            continue
                    records.append(
                        _record(memory, plan, op_plan, op_index, local, expected, observed)
                    )
            elif operation.is_nwrc:
                memory.nwrc_write(local, op_plan.write_word)
            else:
                memory.write(local, op_plan.write_word)
    return records


def _record(
    memory: SRAM,
    plan: ElementPlan,
    op_plan: OpPlan,
    op_index: int,
    address: int,
    expected: int,
    observed: int,
) -> FailureRecord:
    return FailureRecord(
        memory_name=memory.name,
        step_index=plan.step_index,
        step_label=plan.step_label,
        op_index=op_index,
        operation=op_plan.operation,
        address=address,
        background=plan.record_background,
        expected=expected,
        observed=observed,
    )
