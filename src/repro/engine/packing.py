"""Bit-lane packing for the vectorized march backend.

The behavioural :class:`repro.memory.SRAM` stores each word as one Python
integer of arbitrary width.  The numpy backend re-packs that state into a
``(words, lanes)`` array of ``uint64`` lanes (lane ``i`` holds word bits
``64 * i`` .. ``64 * i + 63``), so march writes become whole-array
assignments and march reads become whole-array compares.

numpy itself is an *optional* dependency of the engine (the ``[fast]``
extra); every entry point gates on :data:`HAVE_NUMPY` and falls back to the
pure-Python reference backend when it is missing.
"""

from __future__ import annotations

from repro.util.rng import HAVE_NUMPY, np, require_numpy

__all__ = [
    "HAVE_NUMPY",
    "LANE_BITS",
    "lanes_for",
    "lanes_to_word",
    "np",
    "pack_bank",
    "pack_state",
    "require_numpy",
    "word_to_lanes",
]

#: Width of one packed lane.
LANE_BITS = 64
_LANE_MASK = (1 << LANE_BITS) - 1


def lanes_for(bits: int) -> int:
    """Number of 64-bit lanes needed for a word of ``bits`` bits."""
    return (bits + LANE_BITS - 1) // LANE_BITS


def word_to_lanes(word: int, lanes: int):
    """Split one Python-int word into a ``(lanes,)`` uint64 array."""
    return np.array(
        [(word >> (LANE_BITS * i)) & _LANE_MASK for i in range(lanes)],
        dtype=np.uint64,
    )


def lanes_to_word(row) -> int:
    """Reassemble one packed row back into a Python-int word."""
    word = 0
    for i in range(row.shape[0]):
        word |= int(row[i]) << (LANE_BITS * i)
    return word


def pack_state(words: list[int], lanes: int):
    """Pack a full memory dump into a ``(len(words), lanes)`` uint64 array."""
    if lanes == 1:
        # Words already fit one lane: a single C-level conversion.
        return np.fromiter(words, dtype=np.uint64, count=len(words)).reshape(-1, 1)
    state = np.empty((len(words), lanes), dtype=np.uint64)
    for lane in range(lanes):
        shift = LANE_BITS * lane
        state[:, lane] = [(w >> shift) & _LANE_MASK for w in words]
    return state


def pack_bank(memories):
    """Pack same-geometry memories into one stacked fleet array.

    Returns ``(states, clean_masks, dirty_masks, lanes)`` where ``states``
    is ``(n_mem, words, lanes)`` uint64 and the masks are ``(n_mem,
    words)`` bool (dirty = some fault hook can fire on that word).  Row
    ``states[i]`` is authoritative for memory ``i``'s *clean* words only,
    exactly like the single-memory packing in
    :func:`repro.engine.kernel.pack_memory`; hand each slice back through
    :func:`repro.engine.kernel.sync_clean_rows` when the run finishes.

    All memories must share ``(words, bits)`` -- the geometry-bucketing
    planner in :mod:`repro.engine.batched` guarantees that.
    """
    from repro.util.validation import require

    require(bool(memories), "pack_bank needs at least one memory")
    words, bits = memories[0].words, memories[0].bits
    require(
        all(m.words == words and m.bits == bits for m in memories),
        "pack_bank requires a same-geometry bucket",
    )
    lanes = lanes_for(bits)
    states = np.empty((len(memories), words, lanes), dtype=np.uint64)
    dirty_masks = np.zeros((len(memories), words), dtype=bool)
    for index, memory in enumerate(memories):
        states[index] = pack_state(memory.dump(), lanes)
        for word in memory.hooked_words():
            dirty_masks[index, word] = True
    return states, ~dirty_masks, dirty_masks, lanes
