"""Campaign checkpointing: resumable fleet runs with content-addressed chunks.

A long fleet (or scenario) run is a deterministic function of its spec:
chunk ``i`` always contains the same campaign indices and always reduces
to the same :class:`~repro.engine.aggregate.CampaignSummary` list.  The
:class:`CheckpointStore` exploits that to make runs resumable: every
completed chunk is persisted the moment it finishes, and a ``--resume``
run loads finished chunks instead of recomputing them, reproducing the
uninterrupted run's deterministic report content byte for byte (wall-clock
fields -- ``elapsed_s``, ``campaigns_per_sec`` -- are measurements of the
run, not results of it, and are excluded from that contract; see
:meth:`~repro.engine.aggregate.FleetReport.deterministic_dict`).

**Digest scheme.**  One checkpoint directory holds exactly one campaign
identity.  The identity digest is::

    sha256(canonical_json({
        "format": FORMAT_VERSION,        # layout revision of this module
        "spec_type": type(spec).__name__,  # FleetSpec vs ScenarioSpec etc.
        "spec": spec.to_dict(),          # includes master seed and backend
        "chunk_size": chunk_size,        # chunk -> campaign-index mapping
        "total_chunks": total_chunks,
    }))

where ``canonical_json`` is ``json.dumps(..., sort_keys=True)`` with
compact separators.  Because the spec dict covers the population shape,
the master seed *and* the backend, and the chunking fields pin the
index partition, two runs share a digest exactly when their chunk results
are interchangeable.  ``manifest.json`` records the digest (plus the spec,
for humans); every ``chunk_*.json`` records the digest again and a
``sha256`` checksum of its canonical summary payload.  A manifest or
chunk whose digest does not match the active spec is *stale*, a chunk
whose checksum does not match its content is *corrupt* -- both are
rejected with :class:`CheckpointError` rather than silently aggregated.

Chunk files are written atomically (temp file + ``os.replace``) and
contain no timestamps, so an interrupted-then-resumed run leaves the
store byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

from repro.engine.aggregate import CampaignSummary
from repro.telemetry.core import tracer as _tracer
from repro.util.validation import require

#: Bump when the on-disk layout changes; old stores then read as stale.
FORMAT_VERSION = 1

_MANIFEST = "manifest.json"


class CheckpointError(ValueError):
    """A checkpoint store rejected stale or corrupt contents."""


def canonical_json(payload) -> str:
    """Deterministic JSON rendering used for digests and checksums."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_digest(spec, chunk_size: int, total_chunks: int) -> str:
    """Content digest identifying one resumable campaign population."""
    payload = {
        "format": FORMAT_VERSION,
        "spec_type": type(spec).__name__,
        "spec": spec.to_dict(),
        "chunk_size": chunk_size,
        "total_chunks": total_chunks,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


#: Summary fields describing the *run* rather than its results (cache
#: traffic depends on how warm the executing process was); persisting
#: them would break the store's byte-for-byte reproducibility contract.
_VOLATILE_SUMMARY_FIELDS = ("plan_cache_hits", "plan_cache_misses")


def _summary_payload(summaries: list[CampaignSummary]) -> list[dict]:
    payload = []
    for summary in summaries:
        record = summary.to_dict()
        for field in _VOLATILE_SUMMARY_FIELDS:
            record[field] = None
        payload.append(record)
    return payload


def _summaries_checksum(payload: list[dict]) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class CheckpointStore:
    """One directory holding the completed chunks of one campaign spec.

    Parameters
    ----------
    root:
        Directory of the store (created if missing).  One directory maps
        to one ``(spec, seed, backend, chunking)`` identity; pointing a
        different spec at an existing store raises :class:`CheckpointError`.
    spec:
        The fleet/scenario spec being executed (anything with
        ``to_dict()``; the scheduler passes its *planned* spec so an
        ``auto`` backend resolves identically on resume).
    chunk_size / total_chunks:
        The chunk partition of the run, pinned into the digest.
    """

    def __init__(self, root: str | os.PathLike, spec, chunk_size: int, total_chunks: int) -> None:
        require(dataclasses.is_dataclass(spec), "checkpoint spec must be a dataclass record")
        self.root = Path(root)
        self.digest = spec_digest(spec, chunk_size, total_chunks)
        self.chunk_size = chunk_size
        self.total_chunks = total_chunks
        self.root.mkdir(parents=True, exist_ok=True)
        self._adopt_manifest(spec, chunk_size)

    def _adopt_manifest(self, spec, chunk_size: int) -> None:
        path = self.root / _MANIFEST
        if path.exists():
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as error:
                raise CheckpointError(
                    f"corrupt checkpoint manifest {path}: {error}"
                ) from error
            recorded = manifest.get("digest")
            if recorded != self.digest:
                raise CheckpointError(
                    f"stale checkpoint at {self.root}: it was written for a "
                    f"different (spec, seed, backend, chunking) -- digest "
                    f"{recorded!r} != expected {self.digest!r}.  Use a fresh "
                    f"--checkpoint directory or rerun with the original spec."
                )
            return
        self._write_json(
            path,
            {
                "format": FORMAT_VERSION,
                "digest": self.digest,
                "spec_type": type(spec).__name__,
                "spec": spec.to_dict(),
                "chunk_size": chunk_size,
                "total_chunks": self.total_chunks,
            },
        )

    @staticmethod
    def peek_manifest(root: str | os.PathLike) -> dict | None:
        """The manifest of an existing store, or ``None`` when absent.

        Used by the fleet scheduler to adopt a store's recorded
        ``chunk_size`` before re-deriving its own default: the default
        depends on the worker count (and so on the machine), and a resume
        must reproduce the original chunk partition to find its chunks.
        Corruption is not raised here -- constructing the store reports it
        with full context.
        """
        path = Path(root) / _MANIFEST
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return None

    # ------------------------------------------------------------------ #
    # Chunk persistence                                                  #
    # ------------------------------------------------------------------ #
    def _chunk_path(self, chunk_index: int) -> Path:
        return self.root / f"chunk_{chunk_index:05d}.json"

    def has(self, chunk_index: int) -> bool:
        """Whether chunk ``chunk_index`` has a persisted result."""
        return self._chunk_path(chunk_index).exists()

    def completed_chunks(self) -> list[int]:
        """Sorted indices of every persisted chunk."""
        return sorted(
            index for index in range(self.total_chunks) if self.has(index)
        )

    def save(
        self,
        chunk_index: int,
        indices: tuple[int, ...],
        summaries: list[CampaignSummary],
    ) -> None:
        """Persist one finished chunk atomically."""
        tr = _tracer()
        if tr.enabled:
            started = time.perf_counter_ns()
        payload = _summary_payload(summaries)
        self._write_json(
            self._chunk_path(chunk_index),
            {
                "digest": self.digest,
                "chunk_index": chunk_index,
                "indices": list(indices),
                "checksum": _summaries_checksum(payload),
                "summaries": payload,
            },
        )
        if tr.enabled:
            tr.counters.add("checkpoint.save.ns", time.perf_counter_ns() - started)
            tr.counters.add("checkpoint.saves")

    def load(
        self,
        chunk_index: int,
        expected_indices: tuple[int, ...] | None = None,
    ) -> list[CampaignSummary]:
        """Load one persisted chunk, verifying digest and checksum.

        ``expected_indices`` (the campaign indices the caller assigns to
        this chunk) is validated against the recorded ones when given,
        so a chunk file can never be aggregated under the wrong campaign
        positions.
        """
        tr = _tracer()
        if tr.enabled:
            started = time.perf_counter_ns()
        path = self._chunk_path(chunk_index)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint for chunk {chunk_index} at {path}")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointError(f"corrupt checkpoint chunk {path}: {error}") from error
        if payload.get("digest") != self.digest:
            raise CheckpointError(
                f"stale checkpoint chunk {path}: digest "
                f"{payload.get('digest')!r} != expected {self.digest!r}"
            )
        if payload.get("chunk_index") != chunk_index:
            raise CheckpointError(
                f"corrupt checkpoint chunk {path}: records chunk "
                f"{payload.get('chunk_index')!r}, expected {chunk_index}"
            )
        if (
            expected_indices is not None
            and payload.get("indices") != list(expected_indices)
        ):
            raise CheckpointError(
                f"corrupt checkpoint chunk {path}: records campaign indices "
                f"{payload.get('indices')!r}, expected {list(expected_indices)}"
            )
        summaries = payload.get("summaries")
        if (
            not isinstance(summaries, list)
            or payload.get("checksum") != _summaries_checksum(summaries)
        ):
            raise CheckpointError(
                f"corrupt checkpoint chunk {path}: summary checksum mismatch"
            )
        try:
            loaded = [CampaignSummary(**entry) for entry in summaries]
        except TypeError as error:
            raise CheckpointError(
                f"corrupt checkpoint chunk {path}: {error}"
            ) from error
        if tr.enabled:
            tr.counters.add("checkpoint.load.ns", time.perf_counter_ns() - started)
            tr.counters.add("checkpoint.loads")
        return loaded

    def quarantine_chunk(self, chunk_index: int) -> Path:
        """Set a corrupt/stale chunk file aside so the chunk re-runs.

        The file is renamed to ``<name>.quarantined`` (atomically,
        replacing any earlier quarantined copy) rather than deleted, so
        the evidence survives for post-mortems while
        :meth:`completed_chunks` stops reporting the chunk as done.
        """
        path = self._chunk_path(chunk_index)
        target = path.with_suffix(path.suffix + ".quarantined")
        os.replace(path, target)
        return target

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        # Atomic publish: a reader (or a resumed run) never observes a
        # half-written chunk, even if this process dies mid-write.
        temporary = path.with_suffix(".tmp")
        temporary.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(temporary, path)


def ring_digest(spec, retain: int) -> str:
    """Content digest identifying one resumable *stream* identity.

    Deliberately excludes worker count, chunk size and epoch layout:
    the streaming monitor's windowed results are partition-independent,
    so a stream may be resumed under any scheduling layout.
    """
    payload = {
        "format": FORMAT_VERSION,
        "kind": "ring",
        "spec_type": type(spec).__name__,
        "spec": spec.to_dict(),
        "retain": retain,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class RingCheckpointStore:
    """Bounded checkpoint ring for infinite streaming monitors.

    A streaming run has no ``total_chunks`` -- it may never end -- so the
    full-history :class:`CheckpointStore` layout cannot bound its disk
    footprint.  The ring keeps the last ``retain`` windows: window ``w``
    is published atomically to slot file ``w % retain``, overwriting the
    record ``retain`` windows older.  Each record carries the window
    index, the window's deterministic payload (kept for inspection and
    digest history) and the monitor's *cumulative resumable state*
    (exact aggregator/burst-detector internals), plus the stream digest
    and a content checksum.  Resume loads :meth:`latest`, restores the
    state byte-for-byte and continues at the next window -- the
    remaining windows then reproduce an uninterrupted run's
    ``deterministic_dict()`` exactly (pinned by the streaming test
    suite).

    Stale records (digest from another spec/ring shape) and corrupt
    records (checksum mismatch) raise :class:`CheckpointError`, exactly
    like the chunk store.
    """

    def __init__(self, root: str | os.PathLike, spec, retain: int = 8) -> None:
        require(dataclasses.is_dataclass(spec), "checkpoint spec must be a dataclass record")
        require(retain >= 1, "retain must be >= 1")
        self.root = Path(root)
        self.retain = retain
        self.digest = ring_digest(spec, retain)
        self.root.mkdir(parents=True, exist_ok=True)
        self._adopt_manifest(spec)

    def _adopt_manifest(self, spec) -> None:
        path = self.root / _MANIFEST
        if path.exists():
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as error:
                raise CheckpointError(
                    f"corrupt ring-checkpoint manifest {path}: {error}"
                ) from error
            recorded = manifest.get("digest")
            if recorded != self.digest:
                raise CheckpointError(
                    f"stale ring checkpoint at {self.root}: it was written "
                    f"for a different (spec, retain) -- digest {recorded!r} "
                    f"!= expected {self.digest!r}.  Use a fresh --checkpoint "
                    f"directory or rerun with the original spec."
                )
            return
        CheckpointStore._write_json(
            path,
            {
                "format": FORMAT_VERSION,
                "kind": "ring",
                "digest": self.digest,
                "spec_type": type(spec).__name__,
                "spec": spec.to_dict(),
                "retain": self.retain,
            },
        )

    @staticmethod
    def peek_manifest(root: str | os.PathLike) -> dict | None:
        """The manifest of an existing ring store, or ``None`` when absent."""
        return CheckpointStore.peek_manifest(root)

    def _slot_path(self, slot: int) -> Path:
        return self.root / f"slot_{slot:05d}.json"

    @staticmethod
    def _record_checksum(window_index: int, payload: dict, state: dict) -> str:
        content = canonical_json(
            {"window": window_index, "payload": payload, "state": state}
        )
        return hashlib.sha256(content.encode("utf-8")).hexdigest()

    def save(self, window_index: int, payload: dict, state: dict) -> None:
        """Publish one finished window (and the cumulative state) atomically."""
        require(window_index >= 0, "window_index must be >= 0")
        tr = _tracer()
        if tr.enabled:
            started = time.perf_counter_ns()
        CheckpointStore._write_json(
            self._slot_path(window_index % self.retain),
            {
                "digest": self.digest,
                "window": window_index,
                "payload": payload,
                "state": state,
                "checksum": self._record_checksum(window_index, payload, state),
            },
        )
        if tr.enabled:
            tr.counters.add("checkpoint.ring.save.ns", time.perf_counter_ns() - started)
            tr.counters.add("checkpoint.ring.saves")

    def _load_slot(self, path: Path) -> dict:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointError(f"corrupt ring-checkpoint slot {path}: {error}") from error
        if record.get("digest") != self.digest:
            raise CheckpointError(
                f"stale ring-checkpoint slot {path}: digest "
                f"{record.get('digest')!r} != expected {self.digest!r}"
            )
        window = record.get("window")
        if (
            not isinstance(window, int)
            or not isinstance(record.get("payload"), dict)
            or not isinstance(record.get("state"), dict)
            or record.get("checksum")
            != self._record_checksum(window, record["payload"], record["state"])
        ):
            raise CheckpointError(
                f"corrupt ring-checkpoint slot {path}: record checksum mismatch"
            )
        return record

    def records(self, recover: bool = False) -> list[dict]:
        """Every retained window record, oldest first.

        ``recover=True`` switches from fail-fast to salvage semantics:
        a corrupt or stale slot is renamed to ``<name>.quarantined``
        and skipped instead of raising, so a damaged ring still yields
        every intact window (the monitor's quarantine mode resumes from
        the newest survivor and recomputes the rest).
        """
        found = []
        for slot in range(self.retain):
            path = self._slot_path(slot)
            if not path.exists():
                continue
            try:
                found.append(self._load_slot(path))
            except CheckpointError:
                if not recover:
                    raise
                os.replace(path, path.with_suffix(path.suffix + ".quarantined"))
        return sorted(found, key=lambda record: record["window"])

    def latest(self, recover: bool = False) -> dict | None:
        """The newest retained window record, or ``None`` when empty.

        The returned mapping has ``window`` (index), ``payload`` (the
        window's deterministic content) and ``state`` (the cumulative
        monitor state to restore before computing window ``window + 1``).
        ``recover=True`` quarantines damaged slots instead of raising
        (see :meth:`records`).
        """
        records = self.records(recover=recover)
        return records[-1] if records else None
