"""Command-line interface.

Subcommands::

    python -m repro case-study            # the Sec. 4.2 headline numbers
    python -m repro diagnose ...          # run a scheme on a faulty memory
    python -m repro coverage ...          # algorithm coverage matrix
    python -m repro sweep ...             # measured + analytic R matrices
    python -m repro area                  # Sec. 4.3 area/wire table
    python -m repro campaign ...          # one SoC campaign end to end
    python -m repro fleet ...             # batch campaigns over a worker pool
    python -m repro scenario ...          # clustered/intermittent flow fleets
    python -m repro monitor ...           # streaming online monitor (windowed)
    python -m repro bench ...             # reproducible throughput benchmarks
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.analysis.area import AreaModel, TransistorBudget, wire_comparison
from repro.analysis.sweeps import sweep_defect_rate, sweep_geometry
from repro.analysis.timing_model import case_study_comparison
from repro.baseline.scheme import HuangJoneScheme
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.march.coverage import algorithm_runner, evaluate_coverage
from repro.march.library import march_c_minus, march_cw, march_cw_nw
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import format_table
from repro.util.units import format_duration_ns


def _cmd_case_study(args: argparse.Namespace) -> int:
    row = case_study_comparison()
    print(row.pretty())
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    geometry = MemoryGeometry(args.words, args.bits, "esram")
    memory = SRAM(geometry, period_ns=args.period_ns)
    injector = FaultInjector()
    population = sample_population(geometry, args.defect_rate, rng=args.seed)
    injector.inject(memory, population.faults)
    print(
        f"injected {population.size} faults at a "
        f"{args.defect_rate:.2%} defect rate (seed {args.seed})"
    )
    bank = MemoryBank([memory])
    if args.scheme == "proposed":
        report = FastDiagnosisScheme(bank, period_ns=args.period_ns).diagnose()
        print("\n".join(report.summary_lines()))
        print(f"localization rate : {report.localization_rate(injector):.3f}")
    else:
        report = HuangJoneScheme(bank, period_ns=args.period_ns).diagnose(
            injector, include_drf=args.include_drf
        )
        print(f"iterations (k)    : {report.iterations}")
        print(f"diagnosis time    : {format_duration_ns(report.time_ns)}")
        print(f"localized faults  : {len(report.localized)}")
        print(f"missed faults     : {len(report.missed)}")
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    geometry = MemoryGeometry(args.words, args.bits, "cov")
    algorithms = {
        "March C-": march_c_minus,
        "March CW": march_cw,
        "March CW-NW": march_cw_nw,
    }
    merged: dict[str, dict[str, str]] = {}
    for name, factory in algorithms.items():
        for row in evaluate_coverage(algorithm_runner(factory), geometry):
            merged.setdefault(row.label, {"fault class": row.label})[name] = (
                f"{row.detected}/{row.instances}"
            )
    print(format_table(list(merged.values())))
    return 0


def _parse_shapes(text: str) -> list[tuple[int, int]]:
    """Parse ``"512x100,256x64"`` into geometry pairs."""
    shapes = []
    for token in text.split(","):
        words, separator, bits = token.strip().lower().partition("x")
        if not separator or not words.isdigit() or not bits.isdigit():
            raise ValueError(
                f"invalid --shapes entry {token.strip()!r}; "
                f"expected WORDSxBITS, e.g. 512x100"
            )
        shapes.append((int(words), int(bits)))
    return shapes


def _cmd_sweep_analytic(args: argparse.Namespace) -> int:
    """The closed-form model table for the selected matrix, no simulation."""
    if args.matrix == "geometry":
        rows = sweep_geometry(
            _parse_shapes(args.shapes), defect_rate=args.defect_rate
        )
    elif args.matrix == "fault-mix":
        from repro.analysis.simsweep import analytic_comparison, fault_mix_matrix

        rows = []
        for point in fault_mix_matrix(
            defect_rate=args.defect_rate, memories=args.memories
        ):
            iterations, timing = analytic_comparison(point.spec)
            rows.append(
                {
                    "mix": point.label,
                    "k": iterations,
                    "R": f"{timing.reduction:.1f}",
                    "R (DRF)": f"{timing.reduction_with_drf:.1f}",
                }
            )
    else:
        rates = [float(r) for r in args.rates.split(",")]
        rows = sweep_defect_rate(rates, MemoryGeometry(args.words, args.bits))
    print(format_table(rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    if args.analytic_only:
        return _cmd_sweep_analytic(args)
    rates = [float(r) for r in args.rates.split(",")]

    from repro.analysis.simsweep import (
        defect_rate_matrix,
        fault_mix_matrix,
        geometry_matrix,
        run_sim_sweep,
    )

    common = dict(
        campaigns=args.campaigns,
        memories=args.memories,
        master_seed=args.seed,
        backend=args.backend,
    )
    if args.matrix == "geometry":
        points = geometry_matrix(
            _parse_shapes(args.shapes), defect_rate=args.defect_rate, **common
        )
    elif args.matrix == "fault-mix":
        points = fault_mix_matrix(defect_rate=args.defect_rate, **common)
    else:
        points = defect_rate_matrix(rates, **common)

    progress = None
    if not args.json:
        print(
            f"simulating {args.matrix} matrix: {len(points)} points x "
            f"{args.campaigns} campaigns ({args.memories} memories, "
            f"backend={args.backend})"
        )

        def progress(done: int, total: int) -> None:
            print(f"  {done}/{total} points done", flush=True)

    rows = run_sim_sweep(points, workers=args.workers, progress=progress)
    if args.json:
        payload = {
            "matrix": rows[0].matrix if rows else args.matrix,
            "campaigns_per_point": args.campaigns,
            "rows": [row.to_json_dict() for row in rows],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(format_table([row.to_table_row() for row in rows]))
        print(
            "(R meas = simulated baseline/proposed time ratio; "
            "R model = Eqs. (1)-(4); see repro.analysis.simsweep)"
        )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.core.campaign import DiagnosisCampaign
    from repro.soc.case_study import case_study_soc
    from repro.soc.chip import SoCConfig

    if args.soc == "buffer-cluster":
        soc = SoCConfig.buffer_cluster()
    else:
        soc = case_study_soc(memories=args.memories)
    campaign = DiagnosisCampaign(
        soc,
        defect_rate=args.defect_rate,
        seed=args.seed,
        spares_per_memory=args.spares,
        backend=args.backend,
    )
    report = campaign.run(include_baseline=not args.no_baseline)
    print("\n".join(report.summary_lines()))
    return 0


def _resolve_checkpoint_args(args: argparse.Namespace) -> tuple[str | None, bool] | int:
    """Validate the --checkpoint/--resume pair (returns an exit code on error)."""
    import sys

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    return args.checkpoint, args.resume


#: Exit code of an interrupted checkpointed run (128 + SIGINT), distinct
#: from success (0) and usage/checkpoint errors (2) so wrappers can
#: resume automatically.
EXIT_INTERRUPTED = 130


def _resolve_retry_args(args: argparse.Namespace):
    """Build the (retry policy | None, failure mode) pair from CLI flags."""
    from repro.engine import ChunkRetryPolicy

    retry = None
    if args.max_retries is not None or args.chunk_timeout is not None:
        defaults = ChunkRetryPolicy()
        retry = ChunkRetryPolicy(
            max_attempts=(
                args.max_retries + 1
                if args.max_retries is not None
                else defaults.max_attempts
            ),
            chunk_timeout_s=args.chunk_timeout,
        )
    return retry, args.on_chunk_failure


def _resume_command(args: argparse.Namespace) -> str:
    """The exact command that resumes this interrupted run."""
    import shlex

    argv = list(getattr(args, "argv", None) or [])
    if "--resume" not in argv:
        argv.append("--resume")
    return "python -m repro " + " ".join(shlex.quote(token) for token in argv)


def _report_chunk_interrupt(args: argparse.Namespace, checkpoint: str) -> int:
    """Post-interrupt report for a checkpointed fleet/scenario run."""
    import sys
    from pathlib import Path

    from repro.engine import CheckpointStore

    persisted = len(list(Path(checkpoint).glob("chunk_*.json")))
    manifest = CheckpointStore.peek_manifest(checkpoint)
    total = manifest.get("total_chunks") if manifest else None
    span = f"{persisted} of {total}" if isinstance(total, int) else f"{persisted}"
    print(
        f"\ninterrupted: {span} chunks persisted in {checkpoint}",
        file=sys.stderr,
    )
    print(f"resume with: {_resume_command(args)}", file=sys.stderr)
    return EXIT_INTERRUPTED


def _telemetry_requested(args: argparse.Namespace) -> bool:
    """True when telemetry collection is on (export flags imply it)."""
    return bool(
        args.telemetry or args.trace_out or getattr(args, "metrics_out", None)
    )


def _export_telemetry(telemetry, args: argparse.Namespace, quiet: bool) -> None:
    """Write the requested trace/metrics files from a telemetry report."""
    from repro.telemetry.export import write_chrome_trace, write_metrics_json

    if args.trace_out:
        write_chrome_trace(telemetry, args.trace_out)
        if not quiet:
            print(f"chrome trace written to {args.trace_out}")
    if getattr(args, "metrics_out", None):
        write_metrics_json(telemetry, args.metrics_out)
        if not quiet:
            print(f"telemetry metrics written to {args.metrics_out}")


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    import sys

    from repro.engine import (
        CheckpointError,
        FleetSpec,
        available_backends,
        run_fleet,
    )

    checkpointing = _resolve_checkpoint_args(args)
    if isinstance(checkpointing, int):
        return checkpointing
    checkpoint, resume = checkpointing
    retry, on_chunk_failure = _resolve_retry_args(args)
    chunk_runner = None
    if args.chaos:
        from repro.testing import ChaosChunkRunner, parse_chaos_spec

        try:
            chaos = parse_chaos_spec(args.chaos)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        chunk_runner = ChaosChunkRunner(chaos)

    spec = FleetSpec(
        soc=args.soc,
        memories=args.memories,
        heterogeneous=not args.homogeneous,
        campaigns=args.campaigns,
        defect_rate=args.defect_rate,
        master_seed=args.seed,
        spares_per_memory=args.spares,
        include_baseline=not args.no_baseline,
        repair=not args.no_repair,
        backend=args.backend,
    )
    progress = None
    if not args.json:
        backends = ", ".join(
            f"{name}{'' if ok else ' (unavailable)'}"
            for name, ok in available_backends().items()
        )
        print(
            f"fleet of {spec.campaigns} campaigns on {spec.soc} "
            f"({spec.memories} memories), backend={spec.backend} "
            f"[registered: {backends}]"
        )

        def progress(done: int, total: int) -> None:
            print(f"  {done}/{total} campaigns done", flush=True)

    try:
        report = run_fleet(
            spec,
            workers=args.workers,
            chunk_size=args.chunk_size,
            progress=progress,
            checkpoint=checkpoint,
            resume=resume,
            telemetry=_telemetry_requested(args),
            retry=retry,
            on_chunk_failure=on_chunk_failure,
            chunk_runner=chunk_runner,
        )
    except CheckpointError as error:
        print(f"checkpoint error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        if checkpoint:
            # Finished chunks are already on disk; tell the operator how
            # much survived and exactly how to pick the run back up.
            return _report_chunk_interrupt(args, checkpoint)
        raise
    if args.json:
        payload = {"spec": spec.to_dict(), **report.to_json_dict()}
        print(json.dumps(payload, indent=2))
    else:
        print("\n".join(report.summary_lines()))
        if report.telemetry is not None:
            print("\n".join(report.telemetry.summary_lines()))
    if report.telemetry is not None:
        _export_telemetry(report.telemetry, args, quiet=args.json)
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json
    import sys

    from repro.engine import CheckpointError
    from repro.scenarios import preset_spec, run_scenario_fleet

    checkpointing = _resolve_checkpoint_args(args)
    if isinstance(checkpointing, int):
        return checkpointing
    checkpoint, resume = checkpointing
    if checkpoint and args.sweep_radii:
        print(
            "error: --checkpoint/--resume apply to single scenario fleets, "
            "not --sweep-radii matrices",
            file=sys.stderr,
        )
        return 2

    overrides = dict(
        soc=args.soc,
        memories=args.memories,
        campaigns=args.campaigns,
        master_seed=args.seed,
        spares_per_memory=args.spares,
        backend=args.backend,
        max_retest_rounds=args.max_retest_rounds,
    )
    # None-sentinel flags: only override the preset when actually passed,
    # so each preset's cluster/intermittent shape survives by default.
    optional = dict(
        base_defect_rate=args.base_defect_rate,
        cluster_count=args.clusters,
        cluster_radius=args.cluster_radius,
        cluster_peak_rate=args.cluster_peak_rate,
        intermittent_rate=args.intermittent_rate,
        upset_probability=args.upset_probability,
        ecc=args.ecc,
        spare_rows=args.spare_rows,
        spare_cols=args.spare_cols,
    )
    overrides.update(
        (key, value) for key, value in optional.items() if value is not None
    )
    if args.no_baseline:
        overrides["include_baseline"] = False
    if args.no_burn_in:
        overrides["burn_in"] = False
    spec = preset_spec(args.preset, **overrides)

    if args.sweep_radii:
        from repro.analysis.scenario_sweep import radius_matrix, run_scenario_sweep

        radii = [float(r) for r in args.sweep_radii.split(",")]
        points = radius_matrix(radii, base=spec)
        progress = None
        if not args.json:
            print(
                f"scenario radius sweep: {len(points)} points x "
                f"{spec.campaigns} campaigns"
            )

            def progress(done: int, total: int) -> None:
                print(f"  {done}/{total} points done", flush=True)

        rows = run_scenario_sweep(
            points,
            workers=args.workers,
            chunk_size=args.chunk_size,
            progress=progress,
        )
        if args.json:
            payload = {
                "matrix": rows[0].matrix if rows else "S1-cluster-radius",
                "campaigns_per_point": spec.campaigns,
                "rows": [row.to_json_dict() for row in rows],
            }
            print(json.dumps(payload, indent=2))
        else:
            print(format_table([row.to_table_row() for row in rows]))
        return 0

    progress = None
    if not args.json:
        print(
            f"scenario {spec.name!r}: {spec.campaigns} flow campaigns on "
            f"{spec.soc} ({spec.memories} memories), {spec.cluster_count} "
            f"cluster(s) r={spec.cluster_radius:g}, backend={spec.backend}"
        )

        def progress(done: int, total: int) -> None:
            print(f"  {done}/{total} campaigns done", flush=True)

    retry, on_chunk_failure = _resolve_retry_args(args)
    try:
        report = run_scenario_fleet(
            spec,
            workers=args.workers,
            chunk_size=args.chunk_size,
            progress=progress,
            checkpoint=checkpoint,
            resume=resume,
            telemetry=_telemetry_requested(args),
            retry=retry,
            on_chunk_failure=on_chunk_failure,
        )
    except CheckpointError as error:
        print(f"checkpoint error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        if checkpoint:
            return _report_chunk_interrupt(args, checkpoint)
        raise
    if args.json:
        payload = {"spec": spec.to_dict(), **report.to_json_dict()}
        print(json.dumps(payload, indent=2))
    else:
        print("\n".join(report.summary_lines()))
        if report.telemetry is not None:
            print("\n".join(report.telemetry.summary_lines()))
    if report.telemetry is not None:
        _export_telemetry(report.telemetry, args, quiet=args.json)
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json
    import sys

    from repro.engine import CheckpointError
    from repro.streaming import StreamingMonitor, StreamingSpec

    checkpointing = _resolve_checkpoint_args(args)
    if isinstance(checkpointing, int):
        return checkpointing
    checkpoint, resume = checkpointing

    spec = StreamingSpec(
        soc=args.soc,
        memories=args.memories,
        heterogeneous=not args.homogeneous,
        master_seed=args.seed,
        backend=args.backend,
        window_ns=args.window_ns,
        events_per_window=args.events_per_window,
        upset_probability=args.upset_probability,
        seu_fraction=args.seu_fraction,
        burst_probability=args.burst_probability,
        burst_factor=args.burst_factor,
    )
    windows = None if args.forever else args.windows
    # --metrics-out means per-window metrics here (JSONL), not telemetry
    # metrics as in fleet/scenario -- only the explicit flags imply tracing.
    telemetry = bool(args.telemetry or args.trace_out)
    retry, on_chunk_failure = _resolve_retry_args(args)
    try:
        monitor = StreamingMonitor(
            spec,
            windows=windows,
            workers=args.workers,
            chunk_size=args.chunk_size,
            epoch_windows=args.epoch_windows,
            checkpoint=checkpoint,
            resume=resume,
            telemetry=telemetry,
            retain=args.retain,
            retry=retry,
            on_chunk_failure=on_chunk_failure,
        )
    except CheckpointError as error:
        print(f"checkpoint error: {error}", file=sys.stderr)
        return 2
    if not args.json:
        horizon = "forever" if windows is None else f"{windows} windows"
        print(
            f"monitor: {horizon} of {spec.window_ns:g} ns on {spec.soc} "
            f"({spec.memories} memories), ~{spec.events_per_window:g} "
            f"events/window, backend={monitor.spec.backend}"
        )
        if resume and monitor.next_window:
            print(f"  resuming at window {monitor.next_window}")
    metrics_handle = (
        open(args.metrics_out, "w", encoding="utf-8")
        if args.metrics_out
        else None
    )
    interrupted = False
    stream = monitor.windows()
    try:
        for report in stream:
            if metrics_handle is not None:
                metrics_handle.write(json.dumps(report.to_json_dict()) + "\n")
                metrics_handle.flush()
            if not args.json:
                note = ""
                if report.burst_detected:
                    note = "  << burst"
                elif report.burst_injected:
                    note = "  (burst injected)"
                print(
                    f"  window {report.index:>6}: {report.events} events "
                    f"({report.seu_events} SEU), "
                    f"{report.detected_events} detected, sweep "
                    f"{format_duration_ns(report.sweep_time_ns)}{note}",
                    flush=True,
                )
    except KeyboardInterrupt:
        # The normal way to stop --forever: close the stream (terminates
        # the epoch's pool immediately) and fall through to the summary.
        interrupted = True
    finally:
        stream.close()
        if metrics_handle is not None:
            metrics_handle.close()
    if args.json:
        payload = {
            "spec": monitor.spec.to_dict(),
            **monitor.aggregator.to_json_dict(),
        }
        if monitor.telemetry_report is not None:
            payload["telemetry"] = monitor.telemetry_report.to_json_dict()
        print(json.dumps(payload, indent=2))
    else:
        if interrupted:
            print("interrupted; stream stopped cleanly")
        print("\n".join(monitor.aggregator.summary_lines()))
        if monitor.telemetry_report is not None:
            print("\n".join(monitor.telemetry_report.summary_lines()))
    if args.trace_out and monitor.telemetry_report is not None:
        from repro.telemetry.export import write_chrome_trace

        write_chrome_trace(monitor.telemetry_report, args.trace_out)
        if not args.json:
            print(f"chrome trace written to {args.trace_out}")
    if interrupted and checkpoint:
        # A checkpointed interrupt is resumable: report what survived
        # and how to continue, and exit with the distinct interrupt code.
        print(
            f"interrupted: {monitor.next_window} windows completed; ring "
            f"checkpoint in {checkpoint} holds the newest state",
            file=sys.stderr,
        )
        print(f"resume with: {_resume_command(args)}", file=sys.stderr)
        return EXIT_INTERRUPTED
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import sys

    from repro.analysis.bench import (
        SUITES,
        append_trajectory,
        run_suites,
        trajectory_entry,
    )

    telemetry = bool(args.telemetry or args.trace_out)
    collector = None
    if telemetry:
        from repro.telemetry.report import TelemetryReport

        collector = TelemetryReport()
    suites = SUITES if args.suite == "all" else (args.suite,)
    payload, failures = run_suites(
        suites, quick=args.quick, telemetry=telemetry, collector=collector
    )
    rendered = json.dumps(payload, indent=2)
    if args.json:
        print(rendered)
    else:
        for name, results in payload["suites"].items():
            print(f"suite: {name}")
            if name == "batched-fleet":
                rows = [
                    {
                        "regime": row["regime"],
                        "defect rate": f"{row['defect_rate']:.2%}",
                        "numpy (s)": f"{row['numpy_s']:.3f}",
                        "batched (s)": f"{row['batched_s']:.3f}",
                        "speedup": f"{row['speedup']:.2f}x",
                        "target": (
                            f">={row['speedup_target']:.1f}x"
                            if row["gated"]
                            else "-"
                        ),
                    }
                    for row in results["rows"]
                ]
                print(format_table(rows))
                if telemetry:
                    print("  lane attribution (instrumented batched session):")
                    lane_rows = []
                    for row in results["rows"]:
                        attribution = row.get("lane_attribution")
                        if not attribution:
                            continue
                        lanes = attribution["lanes"]

                        def _share(lane: dict) -> str:
                            share = lane["time_share"]
                            return "-" if share is None else f"{share:.1%}"

                        lane_rows.append(
                            {
                                "regime": row["regime"],
                                "march (s)": f"{attribution['march_time_s']:.3f}",
                                "replay": _share(lanes["replay"]),
                                "table": _share(lanes["table"]),
                                "clean": _share(lanes["clean"]),
                                "replay accesses": str(
                                    attribution["replay_accesses"]
                                ),
                            }
                        )
                    if lane_rows:
                        print(format_table(lane_rows))
            else:
                single = results["single_campaign"]
                fleet = results["fleet"]
                print(
                    f"  campaign speedup : {single['speedup']:.2f}x "
                    f"(reference {single['reference_s']:.3f} s, "
                    f"numpy {single['numpy_s']:.3f} s)"
                )
                print(
                    f"  fleet throughput : {fleet['campaigns_per_sec']:.2f} "
                    f"campaigns/s over {fleet['campaigns']} campaigns"
                )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if args.trace_out and collector is not None:
        from repro.telemetry.export import write_chrome_trace

        write_chrome_trace(collector, args.trace_out)
        if not args.json:
            print(f"chrome trace written to {args.trace_out}")
    if args.trajectory:
        from datetime import datetime, timezone

        timestamp = args.timestamp or datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        append_trajectory(args.trajectory, trajectory_entry(payload, timestamp))
        if not args.json:
            print(f"trajectory entry appended to {args.trajectory}")
    for failure in failures:
        print(f"WARNING: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_area(args: argparse.Namespace) -> int:
    geometry = MemoryGeometry(args.words, args.bits)
    paper = AreaModel(TransistorBudget.paper())
    conservative = AreaModel(TransistorBudget.conservative())
    wires = wire_comparison()
    rows = [
        {
            "quantity": "extra cells per interface bit",
            "value": f"{paper.extra_per_bit_cells():.1f}",
        },
        {
            "quantity": "overhead (paper equivalences)",
            "value": f"{paper.overhead_fraction(geometry, 'proposed'):.2%}",
        },
        {
            "quantity": "overhead (std-cell counts)",
            "value": f"{conservative.overhead_fraction(geometry, 'proposed'):.2%}",
        },
        {
            "quantity": "extra global wires",
            "value": f"+{wires['extra_without_drf']} (scan_en)"
            + " [+1 NWRTM when DRF screening]",
        },
    ]
    print(format_table(rows))
    return 0


def _add_fault_tolerance_args(parser: argparse.ArgumentParser) -> None:
    """Retry/quarantine flags shared by the fleet-shaped subcommands."""
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="re-run a failed chunk up to N times before giving up "
        "(default: 2 retries; deterministic exponential backoff)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk wall-clock deadline; a worker exceeding it is "
        "terminated and the chunk retried (pooled runs only)",
    )
    parser.add_argument(
        "--on-chunk-failure", choices=("raise", "quarantine"),
        default="raise",
        help="after retries are exhausted: 'raise' aborts the run "
        "(default), 'quarantine' records the chunk in the report's "
        "failures block and completes the rest of the fleet",
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by the fleet-shaped subcommands."""
    parser.add_argument(
        "--telemetry", action="store_true",
        help="collect engine spans and counters; prints a telemetry summary "
        "(and includes a 'telemetry' document under --json)",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write spans as a Chrome trace_event JSON (implies --telemetry; "
        "load in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write merged counters and span stats as flat JSON "
        "(implies --telemetry)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from repro.streaming import DEFAULT_EPOCH_WINDOWS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast diagnosis of distributed small embedded SRAMs "
        "(DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    case = sub.add_parser("case-study", help="Sec. 4.2 headline numbers")
    case.set_defaults(func=_cmd_case_study)

    diag = sub.add_parser("diagnose", help="diagnose one faulty memory")
    diag.add_argument("--words", type=int, default=512)
    diag.add_argument("--bits", type=int, default=100)
    diag.add_argument("--defect-rate", type=float, default=0.01)
    diag.add_argument("--seed", type=int, default=0)
    diag.add_argument("--period-ns", type=float, default=10.0)
    diag.add_argument(
        "--scheme", choices=("proposed", "baseline"), default="proposed"
    )
    diag.add_argument("--include-drf", action="store_true")
    diag.set_defaults(func=_cmd_diagnose)

    cov = sub.add_parser("coverage", help="algorithm coverage matrix")
    cov.add_argument("--words", type=int, default=16)
    cov.add_argument("--bits", type=int, default=4)
    cov.set_defaults(func=_cmd_coverage)

    sweep = sub.add_parser(
        "sweep",
        help="reduction factor matrices: simulated (fleet-backed) vs analytic",
    )
    sweep.add_argument(
        "--matrix",
        choices=("defect-rate", "geometry", "fault-mix"),
        default="defect-rate",
        help="which parameter matrix to sweep (X1/X2/X3)",
    )
    sweep.add_argument("--rates", default="0.001,0.005,0.01,0.02,0.05")
    sweep.add_argument(
        "--shapes",
        default="512x100,256x64,128x32",
        help="geometry matrix points as WORDSxBITS, comma separated",
    )
    sweep.add_argument("--defect-rate", type=float, default=0.01,
                       help="fixed rate for the geometry/fault-mix matrices")
    sweep.add_argument("--campaigns", type=int, default=4,
                       help="simulated campaigns per matrix point")
    sweep.add_argument("--memories", type=int, default=4)
    sweep.add_argument("--seed", type=int, default=0, help="master seed")
    sweep.add_argument(
        "--backend",
        choices=("reference", "numpy", "fast", "batched", "auto"),
        default="auto",
    )
    sweep.add_argument(
        "--workers", type=int, default=None, help="fleet pool size"
    )
    sweep.add_argument("--json", action="store_true", help="emit JSON rows")
    sweep.add_argument(
        "--analytic-only",
        action="store_true",
        help="skip simulation and print the closed-form model table only",
    )
    sweep.add_argument("--words", type=int, default=512,
                       help="analytic-only geometry")
    sweep.add_argument("--bits", type=int, default=100,
                       help="analytic-only geometry")
    sweep.set_defaults(func=_cmd_sweep)

    area = sub.add_parser("area", help="Sec. 4.3 area/wire table")
    area.add_argument("--words", type=int, default=512)
    area.add_argument("--bits", type=int, default=100)
    area.set_defaults(func=_cmd_area)

    campaign = sub.add_parser(
        "campaign", help="full SoC campaign: diagnose, repair, verify"
    )
    campaign.add_argument(
        "--soc", choices=("buffer-cluster", "case-study"), default="buffer-cluster"
    )
    campaign.add_argument("--memories", type=int, default=4)
    campaign.add_argument("--defect-rate", type=float, default=0.005)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--spares", type=int, default=32)
    campaign.add_argument("--no-baseline", action="store_true")
    campaign.add_argument(
        "--backend",
        choices=("reference", "numpy", "fast", "batched", "auto"),
        default="reference",
        help="march-simulation backend for the proposed-scheme sessions",
    )
    campaign.set_defaults(func=_cmd_campaign)

    fleet = sub.add_parser(
        "fleet",
        help="run a batch of campaigns over a multiprocessing worker pool",
    )
    fleet.add_argument(
        "--soc", choices=("buffer-cluster", "case-study"), default="case-study"
    )
    fleet.add_argument("--memories", type=int, default=8)
    fleet.add_argument("--homogeneous", action="store_true")
    fleet.add_argument("--campaigns", type=int, default=8)
    fleet.add_argument("--defect-rate", type=float, default=0.005)
    fleet.add_argument("--seed", type=int, default=0, help="master seed")
    fleet.add_argument("--spares", type=int, default=32)
    fleet.add_argument("--no-baseline", action="store_true")
    fleet.add_argument("--no-repair", action="store_true")
    fleet.add_argument(
        "--backend",
        choices=("reference", "numpy", "fast", "batched", "auto"),
        default="auto",
    )
    fleet.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cores - 1)"
    )
    fleet.add_argument(
        "--chunk-size", type=int, default=None, help="campaigns per work unit"
    )
    fleet.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="persist finished chunks into DIR (one directory per spec)",
    )
    fleet.add_argument(
        "--resume", action="store_true",
        help="skip chunks already present in --checkpoint DIR",
    )
    fleet.add_argument("--json", action="store_true", help="emit JSON stats")
    _add_fault_tolerance_args(fleet)
    fleet.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="deterministic fault injection for testing the supervisor: "
        "comma-separated key=value pairs (seed, crash, exception, hang, "
        "hang_s, corrupt, max_faults), e.g. 'seed=7,crash=0.4'",
    )
    _add_telemetry_args(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    scenario = sub.add_parser(
        "scenario",
        help="clustered-defect / intermittent-fault production-flow fleets",
    )
    scenario.add_argument(
        "--preset",
        choices=("clustered", "burn-in-soft-error", "intermittent-only"),
        default="clustered",
        help="scenario preset to start from (flags below override it)",
    )
    scenario.add_argument(
        "--soc", choices=("buffer-cluster", "case-study"), default="case-study"
    )
    scenario.add_argument("--memories", type=int, default=8)
    scenario.add_argument("--campaigns", type=int, default=8)
    scenario.add_argument("--seed", type=int, default=0, help="master seed")
    scenario.add_argument("--spares", type=int, default=32)
    scenario.add_argument(
        "--base-defect-rate", type=float, default=None,
        help="uniform defect-rate floor (default: the preset's)",
    )
    scenario.add_argument(
        "--clusters", type=int, default=None,
        help="cluster centers per campaign (default: the preset's)",
    )
    scenario.add_argument(
        "--cluster-radius", type=float, default=None,
        help="decay radius (default: the preset's)",
    )
    scenario.add_argument(
        "--cluster-peak-rate", type=float, default=None,
        help="extra defect rate at a cluster center (default: the preset's)",
    )
    scenario.add_argument(
        "--intermittent-rate", type=float, default=None,
        help="fraction of cells with intermittent mechanisms at burn-in",
    )
    scenario.add_argument(
        "--upset-probability", type=float, default=None,
        help="per-access upset probability of intermittent faults",
    )
    scenario.add_argument(
        "--ecc", choices=("secded",), default=None,
        help="run every diagnosis session behind an on-die ECC layer",
    )
    scenario.add_argument(
        "--spare-rows", type=int, default=None,
        help="BISR spare rows per memory (with --spare-cols, replaces "
        "word-spare repair)",
    )
    scenario.add_argument(
        "--spare-cols", type=int, default=None,
        help="BISR spare columns per memory",
    )
    scenario.add_argument("--max-retest-rounds", type=int, default=3)
    scenario.add_argument("--no-baseline", action="store_true")
    scenario.add_argument("--no-burn-in", action="store_true")
    scenario.add_argument(
        "--backend",
        choices=("reference", "numpy", "fast", "batched", "auto"),
        default="auto",
    )
    scenario.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cores - 1)"
    )
    scenario.add_argument(
        "--chunk-size", type=int, default=None, help="campaigns per work unit"
    )
    scenario.add_argument(
        "--sweep-radii", default=None,
        help="comma-separated radii: run the S1 cluster-radius matrix instead",
    )
    scenario.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="persist finished chunks into DIR (one directory per spec)",
    )
    scenario.add_argument(
        "--resume", action="store_true",
        help="skip chunks already present in --checkpoint DIR",
    )
    scenario.add_argument("--json", action="store_true", help="emit JSON stats")
    _add_fault_tolerance_args(scenario)
    _add_telemetry_args(scenario)
    scenario.set_defaults(func=_cmd_scenario)

    monitor = sub.add_parser(
        "monitor",
        help="streaming online monitor: windowed diagnosis sweeps over an "
        "infinite simulated event timeline",
    )
    monitor.add_argument(
        "--windows", type=int, default=50,
        help="windows to monitor (ignored with --forever)",
    )
    monitor.add_argument(
        "--forever", action="store_true",
        help="stream until interrupted (Ctrl-C stops cleanly)",
    )
    monitor.add_argument(
        "--window-ns", type=float, default=10_000.0,
        help="simulated duration of one window",
    )
    monitor.add_argument(
        "--events-per-window", type=float, default=3.0,
        help="Poisson mean arrival count per window",
    )
    monitor.add_argument(
        "--upset-probability", type=float, default=0.3,
        help="per-access upset probability of materialized faults",
    )
    monitor.add_argument(
        "--seu-fraction", type=float, default=0.5,
        help="fraction of events that are SEUs (rest: intermittent reads)",
    )
    monitor.add_argument(
        "--burst-probability", type=float, default=0.05,
        help="per-window chance of an injected arrival burst",
    )
    monitor.add_argument(
        "--burst-factor", type=float, default=4.0,
        help="arrival-mean multiplier inside a burst window",
    )
    monitor.add_argument(
        "--soc", choices=("buffer-cluster", "case-study"), default="case-study"
    )
    monitor.add_argument("--memories", type=int, default=8)
    monitor.add_argument("--homogeneous", action="store_true")
    monitor.add_argument("--seed", type=int, default=0, help="master seed")
    monitor.add_argument(
        "--backend",
        choices=("reference", "numpy", "fast", "batched", "auto"),
        default="auto",
    )
    monitor.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cores - 1)"
    )
    monitor.add_argument(
        "--chunk-size", type=int, default=None, help="windows per work unit"
    )
    monitor.add_argument(
        "--epoch-windows", type=int, default=DEFAULT_EPOCH_WINDOWS,
        help="windows per scheduling epoch (pool lifetime)",
    )
    monitor.add_argument(
        "--retain", type=int, default=8,
        help="ring-checkpoint slots and digest-ring length",
    )
    monitor.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="persist a ring of the last --retain window states into DIR",
    )
    monitor.add_argument(
        "--resume", action="store_true",
        help="continue from the newest window in --checkpoint DIR",
    )
    monitor.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="append one JSON object per finished window (JSON Lines)",
    )
    monitor.add_argument(
        "--json", action="store_true", help="emit the final aggregate as JSON"
    )
    monitor.add_argument(
        "--telemetry", action="store_true",
        help="instrument sweeps and print per-window span attribution",
    )
    monitor.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the monitored sweeps as a Chrome trace_event JSON "
        "(implies --telemetry)",
    )
    _add_fault_tolerance_args(monitor)
    monitor.set_defaults(func=_cmd_monitor)

    bench = sub.add_parser(
        "bench",
        help="run the throughput benchmark suites (see repro.analysis.bench)",
    )
    bench.add_argument(
        "--suite",
        choices=("all", "batched-fleet", "engine"),
        default="all",
        help="which benchmark suite to run",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small CI-smoke configurations; parity asserted, speedup "
        "targets not enforced",
    )
    bench.add_argument("--json", action="store_true", help="emit the JSON document")
    bench.add_argument("--out", help="also write the JSON to this path")
    bench.add_argument(
        "--telemetry", action="store_true",
        help="run one instrumented session per regime and report per-lane "
        "attribution (outside the timed loop; comparison numbers stay clean)",
    )
    bench.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the instrumented sessions as a Chrome trace_event JSON "
        "(implies --telemetry; load in chrome://tracing or Perfetto)",
    )
    bench.add_argument(
        "--trajectory", metavar="FILE", default=None,
        help="append this run's speedups (and lane shares when instrumented) "
        "to the JSON trajectory file",
    )
    bench.add_argument(
        "--timestamp", default=None,
        help="ISO timestamp recorded in the trajectory entry "
        "(default: current UTC time)",
    )
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    import sys

    parser = build_parser()
    args = parser.parse_args(argv)
    # Keep the raw tokens around so interrupt handlers can print the
    # exact resume command.
    args.argv = list(argv) if argv is not None else list(sys.argv[1:])
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
