"""Address-decoder faults (AF types A-D) and column-decoder faults (CDF).

Unlike cell faults, these attach by *mutating* the memory's address decoder
or column mux.  The ``victims`` tuples list the cells whose observable
behaviour changes, which diagnosis bookkeeping uses to decide whether a
fault has been localized.
"""

from __future__ import annotations

from repro.faults.base import Fault, FaultClass
from repro.memory.geometry import CellRef
from repro.util.validation import require


class AddressOpenFault(Fault):
    """AF type A: ``address`` accesses no word at all."""

    def __init__(self, address: int, bits: int) -> None:
        require(address >= 0, "address must be non-negative")
        self.fault_class = FaultClass.AF
        self.address = address
        self.victims = tuple(CellRef(address, b) for b in range(bits))

    def attach(self, memory) -> None:
        memory.decoder.break_address(self.address)

    def describe(self) -> str:
        return f"{self.fault_class.value} type-A: address {self.address} open"


class AddressRemapFault(Fault):
    """AF types B+D: ``address`` accesses ``target``'s word instead of its own.

    Word ``address`` becomes unreachable (type B); word ``target`` is reached
    by two addresses (type D).
    """

    def __init__(self, address: int, target: int, bits: int) -> None:
        require(address != target, "remap target must differ")
        self.fault_class = FaultClass.AF
        self.address = address
        self.target = target
        self.victims = tuple(CellRef(address, b) for b in range(bits)) + tuple(
            CellRef(target, b) for b in range(bits)
        )

    def attach(self, memory) -> None:
        memory.decoder.remap_address(self.address, self.target)

    def describe(self) -> str:
        return (
            f"{self.fault_class.value} type-B/D: address {self.address} "
            f"-> word {self.target}"
        )


class AddressMultiFault(Fault):
    """AF types C+D: ``address`` accesses its own word *and* ``extra``."""

    def __init__(self, address: int, extra: int, bits: int) -> None:
        require(address != extra, "extra word must differ")
        self.fault_class = FaultClass.AF
        self.address = address
        self.extra = extra
        self.victims = tuple(CellRef(address, b) for b in range(bits)) + tuple(
            CellRef(extra, b) for b in range(bits)
        )

    def attach(self, memory) -> None:
        memory.decoder.add_extra_target(self.address, self.extra)

    def describe(self) -> str:
        return (
            f"{self.fault_class.value} type-C/D: address {self.address} "
            f"also hits word {self.extra}"
        )


class ColumnSwapFault(Fault):
    """CDF: two IO bits exchange physical columns on one mux path.

    The default (``path="write"``) models a write-driver select swap: data
    is stored swapped but read back straight.  Invisible under solid
    backgrounds; exposed by any background on which the two columns differ
    (the March CW log2-c backgrounds guarantee one).  A ``path="both"`` swap
    is functionally transparent -- see :mod:`repro.memory.column_mux` -- and
    is provided only so tests can demonstrate that transparency.
    """

    def __init__(self, bit_a: int, bit_b: int, words: int, path: str = "write") -> None:
        require(bit_a != bit_b, "swapped bits must differ")
        self.fault_class = FaultClass.CDF
        self.bit_a = bit_a
        self.bit_b = bit_b
        self.path = path
        self.victims = tuple(CellRef(w, self.bit_a) for w in range(words)) + tuple(
            CellRef(w, self.bit_b) for w in range(words)
        )

    def attach(self, memory) -> None:
        memory.column_mux.swap_bits(self.bit_a, self.bit_b, self.path)

    def describe(self) -> str:
        return (
            f"{self.fault_class.value}: columns {self.bit_a} <-> {self.bit_b} "
            f"swapped ({self.path} path)"
        )


class ColumnBridgeFault(Fault):
    """CDF: one IO bit drives/observes an extra physical column (bridge)."""

    def __init__(self, bit: int, extra: int, words: int) -> None:
        require(bit != extra, "bridged columns must differ")
        self.fault_class = FaultClass.CDF
        self.bit = bit
        self.extra = extra
        self.victims = tuple(CellRef(w, extra) for w in range(words))

    def attach(self, memory) -> None:
        memory.column_mux.add_extra_column(self.bit, self.extra)

    def describe(self) -> str:
        return f"{self.fault_class.value}: column {self.bit} bridges {self.extra}"


class ColumnOpenFault(Fault):
    """CDF: an IO bit connects to no column (reads float, writes lost)."""

    def __init__(self, bit: int, words: int) -> None:
        self.fault_class = FaultClass.CDF
        self.bit = bit
        self.victims = tuple(CellRef(w, bit) for w in range(words))

    def attach(self, memory) -> None:
        memory.column_mux.break_bit(self.bit)

    def describe(self) -> str:
        return f"{self.fault_class.value}: column {self.bit} open"
