"""Physical-defect statistics and the defect -> fault mapping of [8].

The paper's case study (Sec. 4.2) assumes "all four different defect types in
[8] occur with equal likelihood".  We model those four classes and their
functional-fault consequences:

========================  =============================================
Defect class              Functional fault produced
========================  =============================================
``NODE_SHORT``            stuck-at fault (SAF0/SAF1)
``ACCESS_OPEN``           transition fault (TF up/down)
``CELL_BRIDGE``           coupling fault between neighbouring cells
``PULLUP_OPEN``           data-retention fault (DRF0/DRF1)
========================  =============================================

The first three are *logical* faults, diagnosable by any complete March; the
fourth is the time-dependent class that only retention pauses or NWRTM can
expose.  With the default equal likelihoods, exactly 75 % of a population is
localizable by the baseline's M1 kernel -- reproducing the paper's "M1
covers 75 % of those faults" assumption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.base import Fault
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only (numpy is the [fast] extra)
    import numpy as np


class DefectType(enum.Enum):
    """The four cell-level defect classes of [8]."""

    NODE_SHORT = "node-short"
    ACCESS_OPEN = "access-open"
    CELL_BRIDGE = "cell-bridge"
    PULLUP_OPEN = "pullup-open"


@dataclass(frozen=True)
class DefectProfile:
    """Relative likelihoods of the four defect classes.

    The default is the paper's equal-likelihood assumption.  Weights need not
    sum to one; they are normalized when sampling.
    """

    weights: dict[DefectType, float] = field(
        default_factory=lambda: {t: 1.0 for t in DefectType}
    )
    #: Average number of defective cells consumed per distinguishable fault.
    #: The paper's arithmetic (1 % of 512x100 cells -> 256 faults) implies 2.
    cells_per_fault: float = 2.0

    def __post_init__(self) -> None:
        require(self.weights, "profile needs at least one defect type")
        require(
            all(w >= 0 for w in self.weights.values()),
            "defect weights must be non-negative",
        )
        require(
            any(w > 0 for w in self.weights.values()),
            "at least one defect weight must be positive",
        )
        require(self.cells_per_fault > 0, "cells_per_fault must be positive")

    def normalized(self) -> list[tuple[DefectType, float]]:
        """Defect types with probabilities summing to one."""
        total = sum(self.weights.values())
        return [(t, w / total) for t, w in self.weights.items() if w > 0]

    def sample_type(self, rng: np.random.Generator) -> DefectType:
        """Draw one defect class according to the profile."""
        types, probs = zip(*self.normalized())
        index = rng.choice(len(types), p=list(probs))
        return types[index]


def fault_for_defect(
    defect: DefectType,
    cell: CellRef,
    geometry: MemoryGeometry,
    rng: np.random.Generator,
) -> Fault:
    """Instantiate the functional fault a ``defect`` at ``cell`` produces."""
    if defect is DefectType.NODE_SHORT:
        return StuckAtFault(cell, value=int(rng.integers(2)))
    if defect is DefectType.ACCESS_OPEN:
        return TransitionFault(cell, rising=bool(rng.integers(2)))
    if defect is DefectType.PULLUP_OPEN:
        return DataRetentionFault(cell, fragile_value=int(rng.integers(2)))
    if defect is DefectType.CELL_BRIDGE:
        # Bridges form between *physically* adjacent cells.  Column
        # multiplexing places logically adjacent bits of a word several
        # physical columns apart, so manufacturing bridges overwhelmingly
        # couple same-column cells in neighbouring words; intra-word
        # coupling is injected explicitly in the coverage suite instead.
        neighbors = [
            n for n in geometry.neighbors(cell) if n.word != cell.word
        ] or geometry.neighbors(cell)
        aggressor = neighbors[int(rng.integers(len(neighbors)))]
        subtype = int(rng.integers(3))
        if subtype == 0:
            return InversionCouplingFault(aggressor, cell, trigger_rising=bool(rng.integers(2)))
        if subtype == 1:
            return IdempotentCouplingFault(
                aggressor,
                cell,
                trigger_rising=bool(rng.integers(2)),
                forced_value=int(rng.integers(2)),
            )
        return StateCouplingFault(
            aggressor,
            cell,
            aggressor_state=int(rng.integers(2)),
            forced_value=int(rng.integers(2)),
        )
    raise ValueError(f"unknown defect type: {defect!r}")
