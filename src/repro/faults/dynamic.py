"""Read/write-disturb fault models (the "dynamic" extensions).

These classes complete the static fault space of the classical taxonomy
with the read- and write-disturb mechanisms that later March work (e.g.
March SS) was designed for.  They matter here because they stress the
*algorithm* dimension of the reproduction: March C-/CW catch some of them
for free, while the deceptive read-destructive fault escapes any March
whose elements read each cell only once -- a differentiation the extended
algorithm library (:func:`repro.march.library.march_ss`) demonstrates.

* **IRF** -- incorrect read fault: the read returns the complement but the
  cell keeps its value;
* **RDF** -- read destructive fault: the read flips the cell *and* returns
  the flipped value;
* **DRDF** -- deceptive read destructive fault: the read returns the
  correct value but flips the cell (detectable only by a second read);
* **WDF** -- write disturb fault: a non-transition write (writing the value
  already stored) flips the cell.
"""

from __future__ import annotations

from repro.faults.base import (
    KIND_DRDF,
    KIND_IRF,
    KIND_RDF,
    KIND_WDF,
    CellFault,
    FaultClass,
    LoweredFault,
)
from repro.memory.geometry import CellRef
from repro.util.validation import require


class IncorrectReadFault(CellFault):
    """IRF: reads return the complement; the stored value is untouched."""

    def __init__(self, cell: CellRef) -> None:
        self.fault_class = FaultClass.IRF
        self.victims = (cell,)

    def on_read(self, memory, word, bit, stored_bit):
        return 1 - stored_bit

    def vector_lowerable(self) -> bool:
        return True

    def lower(self) -> LoweredFault:
        return LoweredFault(KIND_IRF, self.victims[0])


class ReadDestructiveFault(CellFault):
    """RDF: the read flips the cell and returns the flipped value."""

    def __init__(self, cell: CellRef) -> None:
        self.fault_class = FaultClass.RDF
        self.victims = (cell,)

    def on_read(self, memory, word, bit, stored_bit):
        flipped = 1 - stored_bit
        memory.force_stored_bit(word, bit, flipped)
        return flipped

    def vector_lowerable(self) -> bool:
        return True

    def lower(self) -> LoweredFault:
        return LoweredFault(KIND_RDF, self.victims[0])


class DeceptiveReadDestructiveFault(CellFault):
    """DRDF: the read returns the *correct* value but flips the cell.

    The canonical single-read escape: the corrupted state is only
    observable by re-reading before any write refreshes the cell, which
    March C-/CW never do -- and March SS does.
    """

    def __init__(self, cell: CellRef) -> None:
        self.fault_class = FaultClass.DRDF
        self.victims = (cell,)

    def on_read(self, memory, word, bit, stored_bit):
        memory.force_stored_bit(word, bit, 1 - stored_bit)
        return stored_bit

    def vector_lowerable(self) -> bool:
        return True

    def lower(self) -> LoweredFault:
        return LoweredFault(KIND_DRDF, self.victims[0])


class WriteDisturbFault(CellFault):
    """WDF: writing the already-stored value flips the cell.

    ``polarity`` restricts the disturb to non-transition writes of 0 or 1;
    ``None`` disturbs both.
    """

    def __init__(self, cell: CellRef, polarity: int | None = None) -> None:
        require(polarity in (None, 0, 1), "polarity must be None, 0 or 1")
        self.fault_class = FaultClass.WDF
        self.polarity = polarity
        self.victims = (cell,)

    def on_write(self, memory, word, bit, old_bit, new_bit):
        if old_bit == new_bit and (self.polarity is None or new_bit == self.polarity):
            return 1 - new_bit
        return new_bit

    def vector_lowerable(self) -> bool:
        return True

    def lower(self) -> LoweredFault:
        return LoweredFault(
            KIND_WDF,
            self.victims[0],
            value=-1 if self.polarity is None else self.polarity,
        )
