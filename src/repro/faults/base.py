"""Fault base classes, the fault-class taxonomy and the lowering protocol."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.memory.geometry import CellRef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.sram import SRAM


class FaultClass(enum.Enum):
    """Functional fault classes in the classical memory-test taxonomy."""

    SAF0 = "stuck-at-0"
    SAF1 = "stuck-at-1"
    TF_UP = "transition-up"
    TF_DOWN = "transition-down"
    CF_IN = "coupling-inversion"
    CF_ID = "coupling-idempotent"
    CF_ST = "coupling-state"
    AF = "address-decoder"
    CDF = "column-decoder"
    DRF0 = "data-retention-0"
    DRF1 = "data-retention-1"
    WEAK = "weak-cell"
    IRF = "incorrect-read"
    RDF = "read-destructive"
    DRDF = "deceptive-read-destructive"
    WDF = "write-disturb"
    INT_READ = "intermittent-read"
    SEU = "soft-error-upset"

    @property
    def is_retention(self) -> bool:
        """Whether this class needs retention pauses or NWRTM to detect."""
        return self in (FaultClass.DRF0, FaultClass.DRF1)

    @property
    def is_reliability_only(self) -> bool:
        """Whether this class never misbehaves logically (NWRTM-only)."""
        return self is FaultClass.WEAK

    @property
    def is_intermittent(self) -> bool:
        """Whether this class fires probabilistically per access.

        Intermittent classes model transient/soft-error behaviour (event
        upsets, marginal sense margins): detection is inherently
        stochastic, so diagnosis scoring separates them from the
        manufacturing-defect classes when computing escape rates.
        """
        return self in (FaultClass.INT_READ, FaultClass.SEU)


#: Fault classes the baseline's M1 diagnosis kernel can localize.  The paper
#: assumes four equally likely defect classes of which M1 covers 75 %: the
#: three logical classes (stuck-at, transition, coupling) are localizable,
#: the retention class is not (the [7, 8] scheme neglects DRFs entirely).
M1_LOCALIZABLE_CLASSES = frozenset(
    {
        FaultClass.SAF0,
        FaultClass.SAF1,
        FaultClass.TF_UP,
        FaultClass.TF_DOWN,
        FaultClass.CF_IN,
        FaultClass.CF_ID,
        FaultClass.CF_ST,
    }
)


#: Lowered-fault kind codes understood by the compiled fault table
#: (:mod:`repro.engine.fault_table`).  One code per distinct per-access
#: behaviour, not per :class:`FaultClass` -- e.g. both SAF0 and SAF1 lower
#: to ``KIND_STUCK`` with different ``value`` parameters.
KIND_STUCK = "stuck"
KIND_TF = "tf"
KIND_IRF = "irf"
KIND_RDF = "rdf"
KIND_DRDF = "drdf"
KIND_WDF = "wdf"
KIND_WEAK = "weak"
KIND_CF_IN = "cf-in"
KIND_CF_ID = "cf-id"
KIND_CF_ST = "cf-st"
KIND_INT_READ = "int-read"
KIND_SEU = "seu"
KIND_DRF = "drf"


@dataclass(frozen=True)
class LoweredFault:
    """One fault's behaviour compiled to table-evaluable parameters.

    The structured-array columns of the compiled fault table are built
    from these records: the victim cell locates the (row, lane, bitmask)
    triple, ``aggressor`` the aux cell of coupling kinds, and the scalar
    parameters select the per-kind select/mask formula.  Field meaning by
    ``kind``:

    ``stuck``   ``value`` = stuck level.
    ``tf``      ``rising`` = the transition the cell cannot make.
    ``irf``/``rdf``/``drdf``  no parameters.
    ``wdf``     ``value`` = disturb polarity (``-1`` = both).
    ``weak``    ``value`` = the NWRC-weak side.
    ``cf-in``   ``rising`` = triggering aggressor transition.
    ``cf-id``   ``rising`` = trigger, ``value`` = forced victim value.
    ``cf-st``   ``aggressor_state``/``value`` (= forced value) /
                ``affects_write``.
    ``int-read``/``seu``  ``probability``/``seed``/``counter_base`` of the
                counter-based Bernoulli stream (``counter_base`` = draws
                already consumed when the session lowered the fault).
    ``drf``     ``value`` = fragile side, ``retention_ns`` the decay
                threshold, ``written_at_ns`` the pending fragile-write
                time (``None`` = no charge to lose).

    Stateful kinds (``int-read``/``seu``/``drf``) also carry ``source``,
    the originating fault object, so the evaluator can publish its final
    draw counter / decay clock back after the session -- multi-session
    flows (test, repair, retest, burn-in) reuse the same fault objects.
    """

    kind: str
    victim: CellRef
    aggressor: CellRef | None = None
    value: int = 0
    rising: bool = True
    aggressor_state: int = 0
    affects_write: bool = True
    probability: float = 0.0
    seed: int = 0
    counter_base: int = 0
    retention_ns: float = 0.0
    written_at_ns: float | None = None
    source: object | None = None


class Fault:
    """Common base for every injectable fault.

    Subclasses define ``fault_class`` and implement :meth:`attach`.  The
    ``victims``/``aggressors`` tuples drive both the SRAM's sparse fault
    indexes and diagnosis bookkeeping (a diagnosis is *complete* when every
    victim cell of every detectable fault has been localized).
    """

    fault_class: FaultClass
    victims: tuple[CellRef, ...] = ()
    aggressors: tuple[CellRef, ...] = ()

    def attach(self, memory: "SRAM") -> None:
        """Install this fault into ``memory``."""
        raise NotImplementedError

    def vector_lowerable(self) -> bool:
        """Whether this fault can be compiled into the vectorized table.

        The contract: a lowerable fault's per-access behaviour must be a
        pure function of (a) the victim cell's stored bit, (b) the access
        kind and written bit, (c) for coupling kinds one aggressor cell's
        stored bit (cross-cell interaction expressible through the
        block-ordered aggressor trajectory), and (d) for the stateful
        kinds a quantity the table can compute *analytically* from the
        visit schedule -- the per-fault access counter of the
        counter-based Bernoulli streams (intermittent/SEU) or the elapsed
        time since the last fragile write (retention decay), both of
        which are closed-form in the march plan's per-cell visit orders
        and the time base's cycle model.  Faults whose randomness is a
        *sequential* stream (the legacy intermittent compat mode) or that
        rewire the periphery (decoder/column faults) return ``False`` and
        keep the exact behavioural replay lane.  The conservative default
        is non-lowerable, so new fault classes opt *in*.
        """
        return False

    def lower(self) -> LoweredFault:
        """Compile this fault to its :class:`LoweredFault` record.

        Only meaningful when :meth:`vector_lowerable` returns ``True``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not lower to the fault table"
        )

    @property
    def cells(self) -> tuple[CellRef, ...]:
        """All cells involved in the fault (victims then aggressors)."""
        return self.victims + self.aggressors

    def describe(self) -> str:
        """Human-readable one-liner used by reports."""
        involved = ", ".join(str(c) for c in self.cells)
        return f"{self.fault_class.value} @ {involved}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class CellFault(Fault):
    """Base for faults that hook the per-cell access path.

    The :class:`repro.memory.SRAM` calls the ``on_read`` / ``on_write`` /
    ``on_nwrc_write`` / ``on_aggressor_transition`` hooks; the defaults here
    are transparent so subclasses override only what their fault perturbs.
    """

    def attach(self, memory: "SRAM") -> None:
        memory.add_cell_fault(self)

    def on_read(self, memory: "SRAM", word: int, bit: int, stored_bit: int) -> int:
        """Value observed when reading the victim cell."""
        return stored_bit

    def on_write(
        self, memory: "SRAM", word: int, bit: int, old_bit: int, new_bit: int
    ) -> int:
        """Value actually stored by a normal write to the victim cell."""
        return new_bit

    def on_nwrc_write(
        self, memory: "SRAM", word: int, bit: int, old_bit: int, new_bit: int
    ) -> int:
        """Value actually stored by an NWRC write (defaults to normal write)."""
        return self.on_write(memory, word, bit, old_bit, new_bit)

    def on_aggressor_transition(
        self, memory: "SRAM", word: int, bit: int, old_bit: int, new_bit: int
    ) -> None:
        """React to a transition of a watched aggressor cell."""
