"""Coupling faults between an aggressor cell and a victim cell.

All three classical two-cell coupling fault models are provided; aggressor
and victim may live in different words (inter-word, the common March C-
target) or in the *same* word (intra-word), which solid backgrounds cannot
expose -- the reason March CW adds its extra data backgrounds (Sec. 3.1).
"""

from __future__ import annotations

from repro.faults.base import (
    KIND_CF_ID,
    KIND_CF_IN,
    KIND_CF_ST,
    CellFault,
    FaultClass,
    LoweredFault,
)
from repro.memory.geometry import CellRef
from repro.util.validation import require


def _check_distinct(aggressor: CellRef, victim: CellRef) -> None:
    require(aggressor != victim, "aggressor and victim must be distinct cells")


class _CouplingFault(CellFault):
    """Shared lowering policy for the two-cell coupling models.

    Only the *inter-word* arrangement lowers to the fault table: the
    aggressor word and the victim word are then visited at distinct sweep
    positions, so the victim-relative effect of a whole march element
    reduces to the aggressor's write trajectory plus a before/after
    ordering bit -- exactly what the table's block evaluation computes.
    Intra-word coupling interleaves aggressor transitions *between* the
    operations of one visit and stays on the behavioural replay lane.
    """

    def vector_lowerable(self) -> bool:
        return self.aggressors[0].word != self.victims[0].word


class InversionCouplingFault(_CouplingFault):
    """CFin: a matching transition of the aggressor *inverts* the victim.

    ``trigger_rising`` selects which aggressor transition (0->1 or 1->0)
    activates the fault.
    """

    def __init__(self, aggressor: CellRef, victim: CellRef, trigger_rising: bool = True) -> None:
        _check_distinct(aggressor, victim)
        self.fault_class = FaultClass.CF_IN
        self.trigger_rising = trigger_rising
        self.victims = (victim,)
        self.aggressors = (aggressor,)

    def on_aggressor_transition(self, memory, word, bit, old_bit, new_bit):
        rising = old_bit == 0 and new_bit == 1
        if rising != self.trigger_rising:
            return
        victim = self.victims[0]
        current = memory.stored_bit(victim.word, victim.bit)
        memory.force_stored_bit(victim.word, victim.bit, 1 - current)

    def lower(self) -> LoweredFault:
        return LoweredFault(
            KIND_CF_IN,
            self.victims[0],
            aggressor=self.aggressors[0],
            rising=self.trigger_rising,
        )


class IdempotentCouplingFault(_CouplingFault):
    """CFid: a matching aggressor transition *forces* the victim to a value."""

    def __init__(
        self,
        aggressor: CellRef,
        victim: CellRef,
        trigger_rising: bool = True,
        forced_value: int = 1,
    ) -> None:
        _check_distinct(aggressor, victim)
        require(forced_value in (0, 1), f"forced_value must be 0 or 1, got {forced_value!r}")
        self.fault_class = FaultClass.CF_ID
        self.trigger_rising = trigger_rising
        self.forced_value = forced_value
        self.victims = (victim,)
        self.aggressors = (aggressor,)

    def on_aggressor_transition(self, memory, word, bit, old_bit, new_bit):
        rising = old_bit == 0 and new_bit == 1
        if rising != self.trigger_rising:
            return
        victim = self.victims[0]
        memory.force_stored_bit(victim.word, victim.bit, self.forced_value)

    def lower(self) -> LoweredFault:
        return LoweredFault(
            KIND_CF_ID,
            self.victims[0],
            aggressor=self.aggressors[0],
            rising=self.trigger_rising,
            value=self.forced_value,
        )


class StateCouplingFault(_CouplingFault):
    """CFst: the victim is forced to a value while the aggressor holds a state.

    While the aggressor cell stores ``aggressor_state``, the victim reads as
    ``forced_value`` and -- when ``affects_write`` is true (the default,
    modelling a bridge strong enough to hold the victim node) -- cannot be
    written away from it either.

    ``affects_write=False`` models a weaker *read-disturb* bridge: writes
    land correctly but the sensed value is corrupted while the aggressor
    holds the state.  In the intra-word arrangement with
    ``aggressor_state == forced_value`` this variant is invisible under any
    solid background (aggressor and victim always agree there) and is only
    exposed by the March CW stripe backgrounds.
    """

    def __init__(
        self,
        aggressor: CellRef,
        victim: CellRef,
        aggressor_state: int = 1,
        forced_value: int = 0,
        affects_write: bool = True,
    ) -> None:
        _check_distinct(aggressor, victim)
        require(aggressor_state in (0, 1), "aggressor_state must be 0 or 1")
        require(forced_value in (0, 1), "forced_value must be 0 or 1")
        self.fault_class = FaultClass.CF_ST
        self.aggressor_state = aggressor_state
        self.forced_value = forced_value
        self.affects_write = affects_write
        self.victims = (victim,)
        self.aggressors = (aggressor,)

    def _active(self, memory) -> bool:
        aggressor = self.aggressors[0]
        return memory.stored_bit(aggressor.word, aggressor.bit) == self.aggressor_state

    def on_read(self, memory, word, bit, stored_bit):
        if self._active(memory):
            return self.forced_value
        return stored_bit

    def on_write(self, memory, word, bit, old_bit, new_bit):
        if self.affects_write and self._active(memory):
            return self.forced_value
        return new_bit

    def lower(self) -> LoweredFault:
        return LoweredFault(
            KIND_CF_ST,
            self.victims[0],
            aggressor=self.aggressors[0],
            value=self.forced_value,
            aggressor_state=self.aggressor_state,
            affects_write=self.affects_write,
        )
