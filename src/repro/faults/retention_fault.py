"""Data-retention faults (DRFs) caused by an open pull-up PMOS.

A 6T cell holds its state with two cross-coupled inverters.  When the
pull-up PMOS on one storage node is open (Fig. 6 of the paper), the cell can
still be *written* to the affected value -- the bitline charges the node
through the access transistor -- but nothing replenishes the leaking charge,
so after the retention time the value silently decays.

Two detection mechanisms exist, and this model reproduces both:

* **delay testing**: write the fragile value, pause >= retention time, read
  back (the classical, slow method -- ~100 ms per polarity);
* **NWRTM** (Sec. 3.4): an NWRC write leaves the fragile-side bitline at
  *floating* GND, so only the defective pull-up could raise the node -- the
  faulty cell fails to flip immediately, and the very next read catches it
  with zero pause time.
"""

from __future__ import annotations

from repro.faults.base import KIND_DRF, CellFault, FaultClass, LoweredFault
from repro.memory.geometry import CellRef
from repro.util.units import NS_PER_MS
from repro.util.validation import require, require_positive

#: Retention time of a defective cell.  Good cells retain indefinitely; a
#: DRF cell loses its charge after roughly a millisecond, far below the
#: 100 ms screening pause used in production test [3].
DEFAULT_RETENTION_NS = 1.0 * NS_PER_MS


class DataRetentionFault(CellFault):
    """A cell that cannot *hold* ``fragile_value`` (0 or 1).

    ``fragile_value = 1`` models an open pull-up on the true storage node
    (the cell cannot retain a 1, class DRF1); ``fragile_value = 0`` models
    the complementary node (class DRF0).
    """

    def __init__(
        self,
        cell: CellRef,
        fragile_value: int,
        retention_ns: float = DEFAULT_RETENTION_NS,
    ) -> None:
        require(fragile_value in (0, 1), "fragile_value must be 0 or 1")
        require_positive(retention_ns, "retention_ns")
        self.fragile_value = fragile_value
        self.retention_ns = retention_ns
        self.fault_class = FaultClass.DRF1 if fragile_value else FaultClass.DRF0
        self.victims = (cell,)
        self._written_at_ns: float | None = None

    def _decayed(self, memory) -> bool:
        if self._written_at_ns is None:
            return False
        return memory.now_ns - self._written_at_ns >= self.retention_ns

    def vector_lowerable(self) -> bool:
        """Lowerable: the decay clock is closed-form in the visit schedule.

        The access time of every table-lane visit is analytic in the
        element plan (``base + position * per_address + op tick``) and
        the time base's cycle model, so the evaluator computes the
        elapsed time between the last fragile write and each read without
        replaying -- the same float arithmetic the behavioural clock
        accumulates, hence bit-exact decay decisions.
        """
        return True

    def lower(self) -> LoweredFault:
        return LoweredFault(
            KIND_DRF,
            self.victims[0],
            value=self.fragile_value,
            retention_ns=self.retention_ns,
            written_at_ns=self._written_at_ns,
            source=self,
        )

    def on_write(self, memory, word, bit, old_bit, new_bit):
        if new_bit == self.fragile_value:
            # The bitline charges the node; the clock for decay starts now.
            self._written_at_ns = memory.now_ns
        else:
            self._written_at_ns = None
        return new_bit

    def on_nwrc_write(self, memory, word, bit, old_bit, new_bit):
        if new_bit == self.fragile_value:
            # Floating-GND bitline cannot pull the node up and the pull-up
            # is open: a flip fails (the NWRTM detection event) and a
            # rewrite of the already-stored fragile value cannot recharge
            # the leaking node either -- the decay clock must NOT restart.
            return old_bit
        return self.on_write(memory, word, bit, old_bit, new_bit)

    def on_read(self, memory, word, bit, stored_bit):
        if stored_bit == self.fragile_value and self._decayed(memory):
            decayed_value = 1 - self.fragile_value
            memory.force_stored_bit(word, bit, decayed_value)
            self._written_at_ns = None
            return decayed_value
        return stored_bit
