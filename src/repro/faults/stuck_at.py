"""Stuck-at faults (SAF0/SAF1)."""

from __future__ import annotations

from repro.faults.base import KIND_STUCK, CellFault, FaultClass, LoweredFault
from repro.memory.geometry import CellRef
from repro.util.validation import require


class StuckAtFault(CellFault):
    """A cell permanently stuck at ``value`` (0 or 1).

    Both reads and writes observe the stuck value: writes of the opposite
    value are silently lost, and the NWRC write behaves identically (the
    defect dominates the cell node regardless of bitline conditioning).
    """

    def __init__(self, cell: CellRef, value: int) -> None:
        require(value in (0, 1), f"stuck value must be 0 or 1, got {value!r}")
        self.value = value
        self.fault_class = FaultClass.SAF1 if value else FaultClass.SAF0
        self.victims = (cell,)

    def on_read(self, memory, word, bit, stored_bit):
        return self.value

    def on_write(self, memory, word, bit, old_bit, new_bit):
        return self.value

    def vector_lowerable(self) -> bool:
        return True

    def lower(self) -> LoweredFault:
        return LoweredFault(KIND_STUCK, self.victims[0], value=self.value)
