"""Transition faults (TF): a cell that fails one write-transition direction."""

from __future__ import annotations

from repro.faults.base import KIND_TF, CellFault, FaultClass, LoweredFault
from repro.memory.geometry import CellRef
from repro.util.validation import require


class TransitionFault(CellFault):
    """A cell that cannot make a ``0 -> 1`` (rising) or ``1 -> 0`` transition.

    Writes of the same value are unaffected; only the faulty transition is
    lost.  The NWRC write fails in the same direction -- a cell that cannot
    flip under a full-strength write certainly cannot flip under the weaker
    no-write-recovery cycle.
    """

    def __init__(self, cell: CellRef, rising: bool) -> None:
        require(isinstance(rising, bool), "rising must be a bool")
        self.rising = rising
        self.fault_class = FaultClass.TF_UP if rising else FaultClass.TF_DOWN
        self.victims = (cell,)

    def on_write(self, memory, word, bit, old_bit, new_bit):
        if self.rising and old_bit == 0 and new_bit == 1:
            return 0
        if not self.rising and old_bit == 1 and new_bit == 0:
            return 1
        return new_bit

    def vector_lowerable(self) -> bool:
        return True

    def lower(self) -> LoweredFault:
        return LoweredFault(KIND_TF, self.victims[0], rising=self.rising)
