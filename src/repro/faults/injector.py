"""Fault injection bookkeeping across a bank of memories."""

from __future__ import annotations

from collections import Counter

from repro.faults.base import Fault, FaultClass
from repro.memory.sram import SRAM


class FaultInjector:
    """Attaches faults to memories and remembers what went where.

    Diagnosis experiments need the ground truth ("which faults exist in
    which memory?") to score detection and localization; the injector is
    that ground-truth registry.
    """

    def __init__(self) -> None:
        self._by_memory: dict[str, list[Fault]] = {}

    def inject(self, memory: SRAM, faults: list[Fault] | Fault) -> None:
        """Attach ``faults`` to ``memory`` and record them."""
        if isinstance(faults, Fault):
            faults = [faults]
        for fault in faults:
            fault.attach(memory)
        self._by_memory.setdefault(memory.name, []).extend(faults)

    def faults_for(self, memory_name: str) -> list[Fault]:
        """Ground-truth faults injected into ``memory_name``."""
        return list(self._by_memory.get(memory_name, []))

    @property
    def total(self) -> int:
        """Total number of injected faults across all memories."""
        return sum(len(v) for v in self._by_memory.values())

    def class_histogram(self) -> dict[FaultClass, int]:
        """Counts per fault class across all memories."""
        counter: Counter[FaultClass] = Counter()
        for faults in self._by_memory.values():
            counter.update(f.fault_class for f in faults)
        return dict(counter)

    def memories(self) -> list[str]:
        """Names of memories that received at least one fault."""
        return sorted(self._by_memory)

    def __repr__(self) -> str:
        return f"FaultInjector(total={self.total}, memories={self.memories()})"
