"""Random fault populations for a given defect rate.

``sample_population`` converts a manufacturing defect rate into a concrete,
seeded set of functional faults following the defect statistics of [8] as
used by the paper's case study: ``faults = cells * rate / cells_per_fault``
distinguishable faults, classes drawn from a :class:`DefectProfile`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.base import Fault, FaultClass, M1_LOCALIZABLE_CLASSES
from repro.faults.defects import DefectProfile, fault_for_defect
from repro.memory.geometry import MemoryGeometry
from repro.util.records import Record
from repro.util.rng import make_rng
from repro.util.rounding import round_half_up
from repro.util.validation import require, require_in_range

if TYPE_CHECKING:  # pragma: no cover - typing only (numpy is the [fast] extra)
    import numpy as np


@dataclass
class FaultPopulation(Record):
    """A sampled set of faults for one memory, plus its provenance."""

    geometry: MemoryGeometry
    defect_rate: float
    faults: list[Fault] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of distinguishable faults."""
        return len(self.faults)

    def class_histogram(self) -> dict[FaultClass, int]:
        """Count of faults per fault class."""
        return dict(Counter(f.fault_class for f in self.faults))

    @property
    def m1_localizable(self) -> int:
        """Faults the baseline M1 kernel can localize (its 75 % share)."""
        return sum(1 for f in self.faults if f.fault_class in M1_LOCALIZABLE_CLASSES)

    @property
    def retention_faults(self) -> int:
        """Number of DRFs (the class [7, 8] neglects)."""
        return sum(1 for f in self.faults if f.fault_class.is_retention)

    def attach_all(self, memory) -> None:
        """Install every fault into ``memory``."""
        for fault in self.faults:
            fault.attach(memory)


def expected_fault_count(
    geometry: MemoryGeometry,
    defect_rate: float,
    cells_per_fault: float = 2.0,
) -> int:
    """Closed-form fault count for a defect rate (case study: 256).

    Counts round **half up** (:func:`repro.util.rounding.round_half_up`),
    the explicit convention shared with the intermittent-population
    sampler -- built-in ``round`` would send exact-``.5`` populations to
    the nearest even count instead.

    >>> from repro.memory.geometry import MemoryGeometry
    >>> expected_fault_count(MemoryGeometry(512, 100), 0.01)
    256
    """
    require_in_range(defect_rate, 0.0, 1.0, "defect_rate")
    return round_half_up(geometry.cells * defect_rate / cells_per_fault)


def sample_population(
    geometry: MemoryGeometry,
    defect_rate: float,
    profile: DefectProfile | None = None,
    rng: int | np.random.Generator | None = 0,
) -> FaultPopulation:
    """Sample a seeded fault population for one memory.

    Victim cells are drawn without replacement so the faults are independent
    (no cell carries two defects); coupling aggressors are drawn from the
    victim's physical neighbours, preferring cells not already defective.
    """
    require_in_range(defect_rate, 0.0, 1.0, "defect_rate")
    profile = profile or DefectProfile()
    generator = make_rng(rng)
    count = expected_fault_count(geometry, defect_rate, profile.cells_per_fault)
    require(
        count <= geometry.cells,
        f"defect rate {defect_rate} implies more faults than cells",
    )
    if count == 0:
        return FaultPopulation(geometry, defect_rate, [])

    victim_indices = generator.choice(geometry.cells, size=count, replace=False)
    used = {int(i) for i in victim_indices}
    faults: list[Fault] = []
    for index in victim_indices:
        cell = geometry.cell_at(int(index))
        defect = profile.sample_type(generator)
        fault = fault_for_defect(defect, cell, geometry, generator)
        # Prefer an aggressor that is not itself defective so fault effects
        # do not overlap; fall back to whatever neighbour was drawn.
        if fault.aggressors:
            aggressor = fault.aggressors[0]
            if geometry.cell_index(aggressor) in used:
                free = [
                    n
                    for n in geometry.neighbors(cell)
                    if geometry.cell_index(n) not in used
                ]
                if free:
                    replacement = free[int(generator.integers(len(free)))]
                    fault = _retarget_aggressor(fault, replacement)
            used.add(geometry.cell_index(fault.aggressors[0]))
        faults.append(fault)
    return FaultPopulation(geometry, defect_rate, faults)


def _retarget_aggressor(fault: Fault, aggressor) -> Fault:
    """Rebuild a coupling fault with a different aggressor cell."""
    from repro.faults.coupling import (
        IdempotentCouplingFault,
        InversionCouplingFault,
        StateCouplingFault,
    )

    victim = fault.victims[0]
    if isinstance(fault, InversionCouplingFault):
        return InversionCouplingFault(aggressor, victim, fault.trigger_rising)
    if isinstance(fault, IdempotentCouplingFault):
        return IdempotentCouplingFault(
            aggressor, victim, fault.trigger_rising, fault.forced_value
        )
    if isinstance(fault, StateCouplingFault):
        return StateCouplingFault(
            aggressor, victim, fault.aggressor_state, fault.forced_value
        )
    raise TypeError(f"cannot retarget {type(fault).__name__}")
