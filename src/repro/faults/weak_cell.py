"""Weak cells: reliability defects with no logical misbehaviour.

Section 4.1 of the paper credits NWRTM with covering "other defects not
causing faulty logical behaviors but possibly causing reliability problems".
A resistive (rather than open) pull-up is the canonical example: the cell
reads, writes and *retains* correctly under every logical test, but the
weakened device cannot flip the cell within an NWRC cycle, where the
floating-GND bitline leaves the pull-up as the only driver.

Such cells are invisible to March tests and to delay-based retention tests;
only the NWRTM screen catches them, which is precisely the coverage increase
claimed by the proposed scheme.
"""

from __future__ import annotations

from repro.faults.base import KIND_WEAK, CellFault, FaultClass, LoweredFault
from repro.memory.geometry import CellRef
from repro.util.validation import require


class WeakCellDefect(CellFault):
    """A cell whose ``weak_value`` side pull-up is resistive.

    Normal writes, reads and retention are unaffected.  An NWRC write *to*
    ``weak_value`` fails to flip the cell.
    """

    def __init__(self, cell: CellRef, weak_value: int = 1) -> None:
        require(weak_value in (0, 1), "weak_value must be 0 or 1")
        self.weak_value = weak_value
        self.fault_class = FaultClass.WEAK
        self.victims = (cell,)

    def on_nwrc_write(self, memory, word, bit, old_bit, new_bit):
        if new_bit == self.weak_value and old_bit != new_bit:
            return old_bit
        return new_bit

    def vector_lowerable(self) -> bool:
        return True

    def lower(self) -> LoweredFault:
        return LoweredFault(KIND_WEAK, self.victims[0], value=self.weak_value)
