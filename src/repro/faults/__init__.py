"""Functional fault models for embedded SRAM diagnosis.

The fault universe follows the classical memory-test taxonomy used by the
paper and its references (March C- [12], RAMSES/March CW [13], NWRTM [11]):

* stuck-at faults (SAF0/SAF1),
* transition faults (TF up/down),
* coupling faults (inversion, idempotent, state; inter- or intra-word),
* address-decoder faults (types A-D) and column-decoder faults,
* data-retention faults (DRFs -- open pull-up PMOS, polarity-aware),
* weak cells (reliability-only defects detectable *only* by NWRTM).

Faults attach to a :class:`repro.memory.SRAM` through ``fault.attach(sram)``;
cell-level faults hook the read/write/NWRC path, decoder faults mutate the
address decoder or column mux.
"""

from repro.faults.address_fault import (
    AddressMultiFault,
    AddressOpenFault,
    AddressRemapFault,
    ColumnBridgeFault,
    ColumnOpenFault,
    ColumnSwapFault,
)
from repro.faults.base import CellFault, Fault, FaultClass, LoweredFault
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.defects import DefectProfile, DefectType
from repro.faults.dynamic import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
    WriteDisturbFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.intermittent import (
    IntermittentReadFault,
    SoftErrorUpsetFault,
    sample_intermittent_population,
)
from repro.faults.population import FaultPopulation, sample_population
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.faults.weak_cell import WeakCellDefect

__all__ = [
    "AddressMultiFault",
    "AddressOpenFault",
    "AddressRemapFault",
    "CellFault",
    "ColumnBridgeFault",
    "ColumnOpenFault",
    "ColumnSwapFault",
    "DataRetentionFault",
    "DeceptiveReadDestructiveFault",
    "DefectProfile",
    "DefectType",
    "Fault",
    "IncorrectReadFault",
    "ReadDestructiveFault",
    "WriteDisturbFault",
    "FaultClass",
    "FaultInjector",
    "FaultPopulation",
    "IdempotentCouplingFault",
    "IntermittentReadFault",
    "InversionCouplingFault",
    "LoweredFault",
    "SoftErrorUpsetFault",
    "StateCouplingFault",
    "StuckAtFault",
    "TransitionFault",
    "WeakCellDefect",
    "sample_intermittent_population",
    "sample_population",
]
