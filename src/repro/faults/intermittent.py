"""Intermittent and soft-error fault models (per-access upsets).

Manufacturing defects are permanent: the existing fault library perturbs
every access the same way.  Field behaviour adds a *transient* regime --
alpha/neutron-induced single-event upsets and marginal cells whose sense
amplifier loses races intermittently (the event-wise soft-error
characterization of Gomi et al. observed one scanning error every ~125 ns
in a 55-nm SRAM).  These classes extend the library with per-access
Bernoulli behaviour:

* **INT_READ** (:class:`IntermittentReadFault`) -- each read of the victim
  returns the complement with probability ``upset_probability``; the
  stored value is untouched (a transient sense failure);
* **SEU** (:class:`SoftErrorUpsetFault`) -- each read of the victim flips
  the *stored* bit with probability ``upset_probability`` and observes the
  flipped value (a particle strike during the access window; persistent
  until the next write refreshes the cell).

Determinism contract
--------------------
Each fault owns a private :class:`~repro.util.rng.SplitMix64Stream` whose
draws depend only on the fault's seed and on how many times its hooks have
fired.  The engine's vectorized paths replay fault-hooked words in exact
reference order (:mod:`repro.engine.kernel`, :mod:`repro.engine.serial_kernel`),
so the reference and numpy backends see identical draw sequences and stay
bit-exact -- the differential fuzz harness asserts this over random
intermittent populations.  The streams are pure Python, so the fault
library keeps working without the ``[fast]`` numpy extra.
"""

from __future__ import annotations

from repro.faults.base import CellFault, FaultClass
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.util.rng import SplitMix64Stream, mix_seed
from repro.util.validation import require_in_range


class _PerAccessUpset(CellFault):
    """Shared plumbing: a victim cell plus a private Bernoulli stream."""

    def __init__(
        self, cell: CellRef, upset_probability: float, seed: int = 0
    ) -> None:
        require_in_range(upset_probability, 0.0, 1.0, "upset_probability")
        self.victims = (cell,)
        self.upset_probability = upset_probability
        self.seed = int(seed)
        self._stream = SplitMix64Stream(self.seed)

    def _upset(self) -> bool:
        """Draw the next per-access Bernoulli outcome."""
        return self._stream.next_float() < self.upset_probability

    def vector_lowerable(self) -> bool:
        """Never lowerable: each access consumes one private stream draw.

        The draw sequence is part of the determinism contract, so these
        classes always take the behavioural replay lane, which fires every
        hook in exact reference order.
        """
        return False

    def describe(self) -> str:
        return (
            f"{self.fault_class.value} @ {self.victims[0]} "
            f"(p={self.upset_probability:g})"
        )


class IntermittentReadFault(_PerAccessUpset):
    """Transient read upset: the observed bit flips, the cell does not."""

    def __init__(
        self, cell: CellRef, upset_probability: float, seed: int = 0
    ) -> None:
        self.fault_class = FaultClass.INT_READ
        super().__init__(cell, upset_probability, seed)

    def on_read(self, memory, word, bit, stored_bit):
        if self._upset():
            return 1 - stored_bit
        return stored_bit


class SoftErrorUpsetFault(_PerAccessUpset):
    """SEU: the stored bit flips during the access and is read flipped."""

    def __init__(
        self, cell: CellRef, upset_probability: float, seed: int = 0
    ) -> None:
        self.fault_class = FaultClass.SEU
        super().__init__(cell, upset_probability, seed)

    def on_read(self, memory, word, bit, stored_bit):
        if self._upset():
            flipped = 1 - stored_bit
            memory.force_stored_bit(word, bit, flipped)
            return flipped
        return stored_bit


#: Intermittent-class constructors in sampling order.
INTERMITTENT_CLASSES = (IntermittentReadFault, SoftErrorUpsetFault)


def sample_intermittent_population(
    geometry: MemoryGeometry,
    rate: float,
    upset_probability: float,
    seed: int = 0,
) -> list[CellFault]:
    """Sample a seeded intermittent/soft-error population for one memory.

    ``rate`` is the fraction of cells carrying an intermittent mechanism
    (``round(cells * rate)`` faults, victims drawn without replacement);
    each fault alternates between the INT_READ and SEU classes and gets a
    private stream seed derived from ``seed`` and its victim cell, so the
    population is invariant under fault-list reordering.  Pure Python:
    no numpy required.
    """
    require_in_range(rate, 0.0, 1.0, "rate")
    require_in_range(upset_probability, 0.0, 1.0, "upset_probability")
    count = round(geometry.cells * rate)
    picker = SplitMix64Stream(mix_seed(seed, 0x1A7))
    # Partial Fisher-Yates over cell indices: draw `count` distinct cells.
    chosen: list[int] = []
    swapped: dict[int, int] = {}
    remaining = geometry.cells
    for _ in range(count):
        offset = picker.next_u64() % remaining
        index = swapped.get(offset, offset)
        last = remaining - 1
        swapped[offset] = swapped.get(last, last)
        chosen.append(index)
        remaining -= 1
    faults: list[CellFault] = []
    for index in sorted(chosen):
        cell = geometry.cell_at(index)
        cls = INTERMITTENT_CLASSES[
            mix_seed(seed, 0x5E0, index) % len(INTERMITTENT_CLASSES)
        ]
        faults.append(
            cls(cell, upset_probability, seed=mix_seed(seed, index))
        )
    return faults
