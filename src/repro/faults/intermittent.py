"""Intermittent and soft-error fault models (per-access upsets).

Manufacturing defects are permanent: the existing fault library perturbs
every access the same way.  Field behaviour adds a *transient* regime --
alpha/neutron-induced single-event upsets and marginal cells whose sense
amplifier loses races intermittently (the event-wise soft-error
characterization of Gomi et al. observed one scanning error every ~125 ns
in a 55-nm SRAM).  These classes extend the library with per-access
Bernoulli behaviour:

* **INT_READ** (:class:`IntermittentReadFault`) -- each read of the victim
  returns the complement with probability ``upset_probability``; the
  stored value is untouched (a transient sense failure);
* **SEU** (:class:`SoftErrorUpsetFault`) -- each read of the victim flips
  the *stored* bit with probability ``upset_probability`` and observes the
  flipped value (a particle strike during the access window; persistent
  until the next write refreshes the cell).

Determinism contract
--------------------
The upset decision for the ``k``-th read of a fault is the *counter-based*
draw ``counter_bernoulli(fault_seed, k, p)`` (:mod:`repro.util.rng`) -- a
pure function of the fault's seed and its access index, never of global
state, worker layout or numpy availability.  Every engine path agrees on
how many times each cell has been read and in what order, so the decision
sequence is identical whether the hooks fire behaviourally (reference,
replay lane) or the compiled fault table computes whole visit schedules
analytically from the march plan (:mod:`repro.engine.fault_table`); the
differential fuzz harness asserts this bit-exactly over random
intermittent populations.

``legacy_stream=True`` restores the pre-counter behaviour: a private
sequential :class:`~repro.util.rng.SplitMix64Stream` whose k-th draw
requires the k-1 draws before it.  Legacy faults are *not* lowerable and
always take the behavioural replay lane; the flag exists so populations
sampled against the old stream reproduce historical results.  The hash
helpers are pure Python, so the fault library keeps working without the
``[fast]`` numpy extra.
"""

from __future__ import annotations

from repro.faults.base import (
    KIND_INT_READ,
    KIND_SEU,
    CellFault,
    FaultClass,
    LoweredFault,
)
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.util.rng import SplitMix64Stream, counter_bernoulli, mix_seed
from repro.util.rounding import round_half_up
from repro.util.validation import require, require_in_range


class _PerAccessUpset(CellFault):
    """Shared plumbing: a victim cell plus a counter-based Bernoulli stream."""

    def __init__(
        self,
        cell: CellRef,
        upset_probability: float,
        seed: int = 0,
        legacy_stream: bool = False,
    ) -> None:
        require_in_range(upset_probability, 0.0, 1.0, "upset_probability")
        self.victims = (cell,)
        self.upset_probability = upset_probability
        self.seed = int(seed)
        self.legacy_stream = bool(legacy_stream)
        self._stream = SplitMix64Stream(self.seed) if legacy_stream else None
        #: Number of Bernoulli decisions consumed so far (the counter of
        #: the next draw).  The compiled fault table advances this
        #: analytically and publishes the final value back after each
        #: batched session, so mixed table/replay flows stay in step.
        self._draws = 0

    def _upset(self) -> bool:
        """Draw the next per-access Bernoulli outcome."""
        if self._stream is not None:
            return self._stream.next_float() < self.upset_probability
        counter = self._draws
        self._draws = counter + 1
        return counter_bernoulli(self.seed, counter, self.upset_probability)

    def vector_lowerable(self) -> bool:
        """Counter-mode faults lower; the legacy stream stays behavioural.

        A counter-based decision is a pure function of ``(seed, k)``, so
        the table evaluator computes each visit's draw directly from the
        march plan's per-cell access counts.  The sequential legacy
        stream has no such closed form and keeps the replay lane, which
        fires every hook in exact reference order.
        """
        return not self.legacy_stream

    def lower(self) -> LoweredFault:
        return LoweredFault(
            self._LOWERED_KIND,
            self.victims[0],
            probability=self.upset_probability,
            seed=self.seed,
            counter_base=self._draws,
            source=self,
        )

    def describe(self) -> str:
        return (
            f"{self.fault_class.value} @ {self.victims[0]} "
            f"(p={self.upset_probability:g})"
        )


class IntermittentReadFault(_PerAccessUpset):
    """Transient read upset: the observed bit flips, the cell does not."""

    _LOWERED_KIND = KIND_INT_READ

    def __init__(
        self,
        cell: CellRef,
        upset_probability: float,
        seed: int = 0,
        legacy_stream: bool = False,
    ) -> None:
        self.fault_class = FaultClass.INT_READ
        super().__init__(cell, upset_probability, seed, legacy_stream)

    def on_read(self, memory, word, bit, stored_bit):
        if self._upset():
            return 1 - stored_bit
        return stored_bit


class SoftErrorUpsetFault(_PerAccessUpset):
    """SEU: the stored bit flips during the access and is read flipped."""

    _LOWERED_KIND = KIND_SEU

    def __init__(
        self,
        cell: CellRef,
        upset_probability: float,
        seed: int = 0,
        legacy_stream: bool = False,
    ) -> None:
        self.fault_class = FaultClass.SEU
        super().__init__(cell, upset_probability, seed, legacy_stream)

    def on_read(self, memory, word, bit, stored_bit):
        if self._upset():
            flipped = 1 - stored_bit
            memory.force_stored_bit(word, bit, flipped)
            return flipped
        return stored_bit


#: Intermittent-class constructors in sampling order.
INTERMITTENT_CLASSES = (IntermittentReadFault, SoftErrorUpsetFault)


#: Wire labels for streamed arrival events (stable across releases: they
#: appear in per-window metrics JSON and in ring-checkpoint payloads).
EVENT_KIND_SEU = "seu"
EVENT_KIND_INT_READ = "int-read"
EVENT_KINDS = (EVENT_KIND_SEU, EVENT_KIND_INT_READ)

_EVENT_CLASSES = {
    EVENT_KIND_SEU: SoftErrorUpsetFault,
    EVENT_KIND_INT_READ: IntermittentReadFault,
}


def fault_for_event(
    kind: str,
    cell: CellRef,
    upset_probability: float,
    seed: int,
) -> CellFault:
    """Materialize the fault model of one streamed arrival event.

    The streaming timeline (:mod:`repro.streaming.timeline`) describes
    events as plain records -- kind label, victim cell, per-event seed --
    so they serialize into metrics/checkpoints; this factory is the
    single place an event becomes an injectable fault (always
    counter-mode, hence vector-lowerable on every backend).
    """
    require(
        kind in _EVENT_CLASSES,
        f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}",
    )
    return _EVENT_CLASSES[kind](cell, upset_probability, seed=seed)


def sample_intermittent_population(
    geometry: MemoryGeometry,
    rate: float,
    upset_probability: float,
    seed: int = 0,
    legacy_stream: bool = False,
) -> list[CellFault]:
    """Sample a seeded intermittent/soft-error population for one memory.

    ``rate`` is the fraction of cells carrying an intermittent mechanism
    (``round_half_up(cells * rate)`` faults, victims drawn without
    replacement); each fault's class is a seeded per-cell selection --
    ``mix_seed(seed, 0x5E0, cell_index)`` picks INT_READ or SEU, so the
    choice depends only on the master seed and the victim's cell index,
    roughly half-and-half over large populations and invariant under
    fault-list reordering.  Each fault gets a private stream seed derived
    from ``seed`` and its victim cell.  ``legacy_stream`` threads the
    sequential-stream compat flag through to every sampled fault.  Pure
    Python: no numpy required.
    """
    require_in_range(rate, 0.0, 1.0, "rate")
    require_in_range(upset_probability, 0.0, 1.0, "upset_probability")
    count = round_half_up(geometry.cells * rate)
    picker = SplitMix64Stream(mix_seed(seed, 0x1A7))
    # Partial Fisher-Yates over cell indices: draw `count` distinct cells.
    chosen: list[int] = []
    swapped: dict[int, int] = {}
    remaining = geometry.cells
    for _ in range(count):
        offset = picker.next_u64() % remaining
        index = swapped.get(offset, offset)
        last = remaining - 1
        swapped[offset] = swapped.get(last, last)
        chosen.append(index)
        remaining -= 1
    faults: list[CellFault] = []
    for index in sorted(chosen):
        cell = geometry.cell_at(index)
        cls = INTERMITTENT_CLASSES[
            mix_seed(seed, 0x5E0, index) % len(INTERMITTENT_CLASSES)
        ]
        faults.append(
            cls(
                cell,
                upset_probability,
                seed=mix_seed(seed, index),
                legacy_stream=legacy_stream,
            )
        )
    return faults
