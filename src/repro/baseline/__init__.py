"""The [7, 8] baseline: Huang-Jone parallel BISD with a bi-directional
serial interface and the DiagRSMarch algorithm.

This is the comparator system the paper improves on.  Its defining
behaviours, all reproduced here:

* one shared BISD controller, local address generators, serial data paths;
* DiagRSMarch: 9 auxiliary serial sweeps plus a 17-sweep diagnosis kernel
  (M1) iterated ``k`` times (Eq. (1): ``T = (17k + 9) n c t``);
* at most **two** faults localized per M1 iteration (the extremal
  defective bits, one per shift direction), each repaired with a spare
  cell before the next iteration -- diagnosis time grows with defect rate;
* **no** data-retention-fault coverage; bolting DRF testing on costs
  ``8k`` extra sweeps plus 200 ms of retention pauses (Eq. (4) numerator).
"""

from repro.baseline.diag_rsmarch import (
    AUX_SWEEPS,
    DIAG_KERNEL_SWEEPS,
    DRF_SWEEPS_PER_ITERATION,
    DiagRSMarch,
    min_iterations,
)
from repro.baseline.scheme import BaselineReport, HuangJoneScheme
from repro.baseline.timing import baseline_diagnosis_time_ns, baseline_drf_extra_ns

__all__ = [
    "AUX_SWEEPS",
    "BaselineReport",
    "DIAG_KERNEL_SWEEPS",
    "DRF_SWEEPS_PER_ITERATION",
    "DiagRSMarch",
    "HuangJoneScheme",
    "baseline_diagnosis_time_ns",
    "baseline_drf_extra_ns",
    "min_iterations",
]
