"""Executable models of the other related-work architectures.

Section 1 of the paper dismisses two alternatives before building on
[7, 8]; modelling them makes the architecture comparison quantitative
(benchmark X5):

* **Per-memory BISD** [5, 6]: every memory gets its own controller --
  pattern generator, comparator, sequencer.  Diagnosis is fully parallel
  (wall-clock time = the slowest memory's standalone March) and
  full-bandwidth (writes and reads cost one cycle each: no serialization),
  but the controller area is replicated per memory, which is what makes
  the scheme "generally not feasible" for many small memories.

* **Same-size shared-parallel** [4]: one controller drives all memories
  over parallel buses.  Fast and cheap in control logic, but it only
  supports banks of *identical* memories (the paper: "usually impractical
  in a real SoC") and pays wide global routing per memory.

Both run genuine March simulations against the faulty memories; their
diagnosis quality matches the algorithm they run (March CW here, like the
proposed scheme), so the comparison isolates time / area / routing /
deployability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.area import AreaModel
from repro.march.library import march_cw
from repro.march.simulator import MarchResult, MarchSimulator
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef
from repro.soc.routing import PER_MEMORY_CONTROLLER_TRANSISTORS
from repro.util.records import Record
from repro.util.validation import require


@dataclass
class AlternativeReport(Record):
    """Outcome of one alternative-architecture diagnosis session."""

    architecture: str
    time_ns: float
    results: dict[str, MarchResult] = field(default_factory=dict)
    extra_controller_transistors: int = 0
    wires_per_memory: float = 0.0

    @property
    def passed(self) -> bool:
        """True when no memory failed."""
        return all(result.passed for result in self.results.values())

    def detected_cells(self, memory_name: str) -> set[CellRef]:
        """Cells implicated in one memory."""
        return self.results[memory_name].detected_cells()


class PerMemoryBisdScheme:
    """[5, 6]: a replicated BISD controller at every memory."""

    def __init__(self, bank: MemoryBank, period_ns: float = 10.0) -> None:
        self.bank = bank
        self.period_ns = period_ns

    def diagnose(self, algorithm_factory=march_cw) -> AlternativeReport:
        """Run every memory's own March in parallel (full bandwidth)."""
        simulator = MarchSimulator()
        results = {}
        worst_cycles = 0
        for memory in self.bank:
            result = simulator.run(memory, algorithm_factory(memory.bits))
            results[memory.name] = result
            worst_cycles = max(worst_cycles, result.cycles)
        return AlternativeReport(
            architecture="per-memory BISD [5,6]",
            time_ns=worst_cycles * self.period_ns,
            results=results,
            extra_controller_transistors=(
                PER_MEMORY_CONTROLLER_TRANSISTORS * len(self.bank)
            ),
            wires_per_memory=2.0,  # start/done daisy chain only
        )


class SameSizeParallelScheme:
    """[4]: one shared controller over parallel buses, identical memories only."""

    def __init__(self, bank: MemoryBank, period_ns: float = 10.0) -> None:
        require(
            bank.is_homogeneous(),
            "the [4] architecture only supports memories of identical size",
        )
        self.bank = bank
        self.period_ns = period_ns

    def diagnose(self, algorithm_factory=march_cw) -> AlternativeReport:
        """One March drives all (identical) memories in lock-step."""
        simulator = MarchSimulator()
        results = {}
        cycles = 0
        for memory in self.bank:
            result = simulator.run(memory, algorithm_factory(memory.bits))
            results[memory.name] = result
            cycles = result.cycles  # identical for every memory
        sample = self.bank[0]
        bus_width = sample.bits + sample.geometry.address_bits + 3
        return AlternativeReport(
            architecture="shared parallel [4]",
            time_ns=cycles * self.period_ns,
            results=results,
            extra_controller_transistors=0,
            wires_per_memory=float(bus_width),
        )


def per_memory_area_penalty(bank: MemoryBank, model: AreaModel | None = None) -> float:
    """Replicated-controller area as a fraction of the bank's cell area."""
    model = model or AreaModel()
    array_transistors = bank.total_cells * 6
    controllers = PER_MEMORY_CONTROLLER_TRANSISTORS * len(bank)
    return controllers / array_transistors
