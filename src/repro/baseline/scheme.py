"""The Huang-Jone [7, 8] diagnosis scheme (Fig. 1 of the paper).

A single shared BISD controller drives every memory in parallel through its
bi-directional serial interface.  Detection runs the 9 auxiliary sweeps;
localization iterates the 17-sweep M1 kernel, and each iteration pinpoints
at most two defective cells per memory -- the first mismatch of the
right-shift observation stream and the first of the left-shift stream --
which are repaired with spare cells before the next iteration.

Two execution modes:

* **effective** (default): the localization outcome of each iteration is
  computed from the ground-truth fault list using the closed-form stream
  semantics (lowest failing address, extremal bit per direction).  This is
  exact for the iteration count and scales to the 512x100 case study.
* **bit-accurate** (``bit_accurate=True``): every serial cycle is actually
  shifted through the faulty memory and a fault-free twin; localization
  uses the first observed stream mismatch.  Used by the test suite to
  validate the effective mode on small memories.

DRF handling follows the paper's accounting: when ``include_drf`` is set,
each iteration additionally runs the 8 DRF sweeps (with two 100 ms pauses
charged once), and DRFs join the two-per-iteration localization budget of
those sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.diag_rsmarch import DiagRSMarch, min_iterations
from repro.baseline.timing import (
    DRF_PAUSE_TOTAL_NS,
    baseline_diagnosis_time_ns,
    baseline_drf_extra_ns,
)
from repro.faults.base import Fault, M1_LOCALIZABLE_CLASSES
from repro.faults.injector import FaultInjector
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef
from repro.memory.sram import SRAM
from repro.serial.bidirectional import BidirectionalSerialInterface
from repro.serial.shift_register import ShiftDirection
from repro.util.bitops import checkerboard, mask
from repro.util.records import Record
from repro.util.validation import require_positive


@dataclass(frozen=True)
class LocalizedFault(Record):
    """One cell pinpointed by the baseline's iterate-repair loop."""

    memory_name: str
    cell: CellRef
    iteration: int
    direction: str  # "right" or "left"
    fault_class: str


@dataclass
class BaselineReport(Record):
    """Outcome of one full baseline diagnosis session."""

    iterations: int
    localized: list[LocalizedFault] = field(default_factory=list)
    #: Ground-truth faults the scheme never localized (DRFs when DRF mode is
    #: off, weak cells always, peripheral faults outside M1's reach).
    missed: list[tuple[str, Fault]] = field(default_factory=list)
    include_drf: bool = False
    controller_words: int = 0
    controller_bits: int = 0
    period_ns: float = 10.0

    @property
    def cycles(self) -> int:
        """Serial cycles consumed, per the Eq. (1)/(4) accounting."""
        march = DiagRSMarch()
        base = march.total_cycles(
            self.controller_words, self.controller_bits, self.iterations
        )
        if self.include_drf:
            base += 8 * self.iterations * self.controller_words * self.controller_bits
        return base

    @property
    def pause_ns(self) -> float:
        """Retention pauses incurred (200 ms when DRF testing is on)."""
        return DRF_PAUSE_TOTAL_NS if self.include_drf else 0.0

    @property
    def time_ns(self) -> float:
        """Total diagnosis time in nanoseconds."""
        if self.include_drf:
            return (
                baseline_diagnosis_time_ns(
                    self.controller_words,
                    self.controller_bits,
                    self.period_ns,
                    self.iterations,
                )
                + baseline_drf_extra_ns(
                    self.controller_words,
                    self.controller_bits,
                    self.period_ns,
                    self.iterations,
                )
            )
        return baseline_diagnosis_time_ns(
            self.controller_words, self.controller_bits, self.period_ns, self.iterations
        )

    def localized_cells(self, memory_name: str) -> set[CellRef]:
        """Cells localized in ``memory_name``."""
        return {f.cell for f in self.localized if f.memory_name == memory_name}


def _primary_cell(fault: Fault) -> CellRef:
    """The cell a localization event maps to (the fault's first victim)."""
    return fault.victims[0]


class HuangJoneScheme:
    """Baseline parallel BISD over a bank of memories."""

    def __init__(self, bank: MemoryBank, period_ns: float = 10.0) -> None:
        require_positive(period_ns, "period_ns")
        self.bank = bank
        self.period_ns = period_ns
        self.march = DiagRSMarch()

    # ------------------------------------------------------------------ #
    # Public API                                                         #
    # ------------------------------------------------------------------ #
    def diagnose(
        self,
        injector: FaultInjector,
        include_drf: bool = False,
        bit_accurate: bool = False,
        max_iterations: int | None = None,
        early_abort: bool = False,
        localize=None,
    ) -> BaselineReport:
        """Run the full iterate-repair diagnosis over the bank.

        ``early_abort`` (bit-accurate mode) skips the trailing
        no-progress iterations once every pending fault is serially
        invisible -- weak cells never misbehave logically and DRFs only
        decay across retention pauses, which the probes never take -- so
        it can lower the reported iteration count (and therefore cycles
        and time) but never changes the localized fault set.

        ``localize`` (bit-accurate mode) overrides the per-(memory,
        direction) localization probe; it is the hook the engine's sparse
        serial replay (:mod:`repro.engine.baseline_session`) plugs in, so
        report assembly and iterate-repair bookkeeping exist only here.
        """
        report = BaselineReport(
            iterations=0,
            include_drf=include_drf,
            controller_words=self.bank.max_words,
            controller_bits=self.bank.max_bits,
            period_ns=self.period_ns,
        )
        if bit_accurate:
            self._diagnose_bit_accurate(
                injector,
                report,
                max_iterations,
                localize=localize,
                early_abort=early_abort,
            )
        else:
            self._diagnose_effective(injector, report, max_iterations)
        return report

    def expected_iterations(self, injector: FaultInjector) -> int:
        """The paper's minimum-k for the injected population."""
        per_memory = []
        for memory in self.bank:
            faults = injector.faults_for(memory.name)
            localizable = sum(
                1 for f in faults if f.fault_class in M1_LOCALIZABLE_CLASSES
            )
            per_memory.append(min_iterations(localizable, kernel_share=1.0))
        return max(per_memory, default=0)

    # ------------------------------------------------------------------ #
    # Effective mode                                                     #
    # ------------------------------------------------------------------ #
    def _diagnose_effective(
        self,
        injector: FaultInjector,
        report: BaselineReport,
        max_iterations: int | None,
    ) -> None:
        remaining: dict[str, list[Fault]] = {}
        drf_pending: dict[str, list[Fault]] = {}
        for memory in self.bank:
            faults = injector.faults_for(memory.name)
            remaining[memory.name] = [
                f for f in faults if f.fault_class in M1_LOCALIZABLE_CLASSES
            ]
            retention = [f for f in faults if f.fault_class.is_retention]
            if report.include_drf:
                drf_pending[memory.name] = retention
            else:
                report.missed.extend((memory.name, f) for f in retention)
            report.missed.extend(
                (memory.name, f)
                for f in faults
                if f.fault_class not in M1_LOCALIZABLE_CLASSES
                and not f.fault_class.is_retention
            )

        limit = max_iterations if max_iterations is not None else 10_000_000
        while any(remaining.values()) or any(drf_pending.values()):
            if report.iterations >= limit:
                break
            report.iterations += 1
            for name, faults in remaining.items():
                self._localize_pair(report, name, faults)
            for name, faults in drf_pending.items():
                self._localize_pair(report, name, faults)

    def _localize_pair(
        self, report: BaselineReport, name: str, faults: list[Fault]
    ) -> None:
        """Localize up to two faults: first-per-direction stream captures.

        The right-shift stream's first mismatch is at the lowest failing
        address and, within that word, the highest defective bit; the
        left-shift stream mirrors it.
        """
        if not faults:
            return
        right = min(faults, key=lambda f: (_primary_cell(f).word, -_primary_cell(f).bit))
        faults.remove(right)
        report.localized.append(
            LocalizedFault(
                name, _primary_cell(right), report.iterations, "right",
                right.fault_class.value,
            )
        )
        if not faults:
            return
        left = min(faults, key=lambda f: (_primary_cell(f).word, _primary_cell(f).bit))
        faults.remove(left)
        report.localized.append(
            LocalizedFault(
                name, _primary_cell(left), report.iterations, "left",
                left.fault_class.value,
            )
        )

    # ------------------------------------------------------------------ #
    # Bit-accurate mode                                                  #
    # ------------------------------------------------------------------ #
    def _diagnose_bit_accurate(
        self,
        injector: FaultInjector,
        report: BaselineReport,
        max_iterations: int | None,
        localize=None,
        early_abort: bool = False,
    ) -> None:
        """Shift every cycle through the real memories and a good twin.

        ``localize`` overrides the per-(memory, direction) probe -- the
        engine's sparse serial replay
        (:mod:`repro.engine.baseline_session`) hooks in here so the
        iterate-repair bookkeeping exists in exactly one place.
        """
        if localize is None:
            localize = self._localize_stream_mismatch
        limit = max_iterations if max_iterations is not None else 4 * (
            self.bank.max_words * self.bank.max_bits
        )
        pending = {
            memory.name: list(injector.faults_for(memory.name)) for memory in self.bank
        }
        # Peripheral faults (decoder/column) cannot be repaired by spare
        # cells; once their mismatch re-localizes an already-seen cell we
        # stop attributing, otherwise the loop would spin forever.
        seen: dict[str, set[CellRef]] = {memory.name: set() for memory in self.bank}
        progress = True
        while progress and report.iterations < limit:
            if not any(pending.values()):
                break
            # Serially invisible faults can never produce a stream
            # mismatch, so once only they remain, further iterations are
            # provably unproductive and may be skipped without changing
            # the localized set.
            if early_abort and all(
                fault.fault_class.is_retention
                or fault.fault_class.is_reliability_only
                for faults in pending.values()
                for fault in faults
            ):
                break
            progress = False
            report.iterations += 1
            for memory in self.bank:
                for direction in (ShiftDirection.RIGHT, ShiftDirection.LEFT):
                    cell = localize(memory, direction)
                    if cell is None or cell in seen[memory.name]:
                        continue
                    seen[memory.name].add(cell)
                    progress = True
                    fault_class = self._repair_cell(memory, pending[memory.name], cell)
                    report.localized.append(
                        LocalizedFault(
                            memory.name,
                            cell,
                            report.iterations,
                            direction.value,
                            fault_class,
                        )
                    )
        for name, faults in pending.items():
            report.missed.extend((name, f) for f in faults)

    def _localize_stream_mismatch(
        self, memory: SRAM, read_direction: ShiftDirection
    ) -> CellRef | None:
        """First stream mismatch for one read direction over the M1 sweeps.

        Each probe fills the array in the *opposite* direction (so the fill
        data reaches every cell on the far side of any defect) and then
        observes the array while refilling it with the complementary
        pattern.  Both solid polarities and a checkerboard pair are probed,
        mirroring the kernel's pattern mix; the capture register keeps the
        first mismatch only.
        """
        bits = memory.bits
        ones = mask(bits)
        checker = checkerboard(bits, phase=1)
        checker_inv = checkerboard(bits, phase=0)
        write_direction = (
            ShiftDirection.LEFT
            if read_direction is ShiftDirection.RIGHT
            else ShiftDirection.RIGHT
        )
        probes = [(ones, 0), (0, ones), (checker, checker_inv)]
        for fill_pattern, read_refill in probes:
            twin = SRAM(memory.geometry, period_ns=self.period_ns)
            snapshot = memory.dump()
            for address in range(memory.words):
                twin.write(address, snapshot[address])

            iface = BidirectionalSerialInterface(memory)
            good = BidirectionalSerialInterface(twin)
            iface.fill_all(fill_pattern, write_direction)
            good.fill_all(fill_pattern, write_direction)
            observed = iface.read_sweep(read_refill, read_direction)
            expected = good.read_sweep(read_refill, read_direction)
            for address in range(memory.words):
                for cycle, (got, want) in enumerate(
                    zip(observed[address], expected[address])
                ):
                    if got != want:
                        if read_direction is ShiftDirection.RIGHT:
                            return CellRef(address, bits - 1 - cycle)
                        return CellRef(address, cycle)
        return None

    def _repair_cell(
        self, memory: SRAM, pending: list[Fault], cell: CellRef
    ) -> str:
        """Spare-replace ``cell``: detach every fault touching it."""
        matched = [f for f in pending if cell in f.victims or cell in f.aggressors]
        for fault in matched:
            memory.remove_cell_fault(fault)
            pending.remove(fault)
        if matched:
            return matched[0].fault_class.value
        return "unattributed"
