"""Closed-form diagnosis-time model for the [7, 8] baseline.

Equation (1) of the paper, plus the DRF surcharge used in Eq. (4):

* ``T[7,8] = (17 k + 9) n c t``  (no DRF coverage),
* DRF extra = ``8 k n c t + 200 ms``  (the ``(w0/r0)R+L, (w1/r1)R+L``
  sweeps per iteration plus two 100 ms retention pauses).

All times are in nanoseconds; ``t`` is the diagnosis clock period in ns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.diag_rsmarch import (
    AUX_SWEEPS,
    DIAG_KERNEL_SWEEPS,
    DRF_SWEEPS_PER_ITERATION,
)
from repro.util.records import Record
from repro.util.units import NS_PER_MS
from repro.util.validation import require, require_positive

#: Total retention pause budget for delay-based DRF testing: 100 ms per
#: data polarity (Sec. 1 and Sec. 4.2 of the paper).
DRF_PAUSE_TOTAL_NS = 200.0 * NS_PER_MS


def baseline_diagnosis_time_ns(
    words: int, bits: int, period_ns: float, iterations: int
) -> float:
    """Eq. (1): ``T[7,8] = (17 k + 9) n c t`` in nanoseconds.

    >>> baseline_diagnosis_time_ns(512, 100, 10.0, 96)
    840192000.0
    """
    require_positive(words, "words")
    require_positive(bits, "bits")
    require_positive(period_ns, "period_ns")
    require(iterations >= 0, "iterations must be non-negative")
    sweeps = DIAG_KERNEL_SWEEPS * iterations + AUX_SWEEPS
    return sweeps * words * bits * period_ns


def baseline_drf_extra_ns(
    words: int, bits: int, period_ns: float, iterations: int
) -> float:
    """DRF surcharge for the baseline: ``8 k n c t + 200 ms`` (Eq. (4))."""
    require_positive(words, "words")
    require_positive(bits, "bits")
    require_positive(period_ns, "period_ns")
    require(iterations >= 0, "iterations must be non-negative")
    sweeps = DRF_SWEEPS_PER_ITERATION * iterations
    return sweeps * words * bits * period_ns + DRF_PAUSE_TOTAL_NS


@dataclass(frozen=True)
class BaselineTimingBreakdown(Record):
    """Itemized baseline diagnosis time."""

    words: int
    bits: int
    period_ns: float
    iterations: int
    include_drf: bool

    @property
    def base_ns(self) -> float:
        """Eq. (1) component."""
        return baseline_diagnosis_time_ns(
            self.words, self.bits, self.period_ns, self.iterations
        )

    @property
    def drf_extra_ns(self) -> float:
        """DRF surcharge (zero when DRFs are not diagnosed)."""
        if not self.include_drf:
            return 0.0
        return baseline_drf_extra_ns(
            self.words, self.bits, self.period_ns, self.iterations
        )

    @property
    def total_ns(self) -> float:
        """Total baseline diagnosis time."""
        return self.base_ns + self.drf_extra_ns
