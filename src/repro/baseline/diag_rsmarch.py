"""DiagRSMarch: the serialized diagnosis March of [7, 8] (reconstruction).

The original papers are not reproduced here; the DATE'05 paper fixes the
algorithm's *cost* -- Eq. (1): ``T = (17k + 9) n c t`` -- and its
*behaviour* (based on a right-shift RSMarch with extra left-shift and
checkerboard elements; at most one fault localized per element direction).
We reconstruct a concrete sweep list with exactly those properties:

* one *sweep* serially refills every word (``n * c`` cycles);
* 9 auxiliary sweeps form the initial detection March;
* the 17-sweep diagnosis kernel **M1** mixes right/left shifts over solid
  and checkerboard patterns and is iterated ``k`` times, localizing the
  extremal defective bits (at most two) per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.serial.shift_register import ShiftDirection
from repro.util.bitops import checkerboard, mask
from repro.util.validation import require, require_positive

#: Serial sweeps in the auxiliary (detection) part of DiagRSMarch.
AUX_SWEEPS = 9
#: Serial sweeps in one iteration of the M1 diagnosis kernel.
DIAG_KERNEL_SWEEPS = 17
#: Extra serial sweeps per iteration for DRF testing ((w0/r0)R+L,
#: (w1/r1)R+L), as charged by Eq. (4).
DRF_SWEEPS_PER_ITERATION = 8
#: Faults localizable per M1 iteration (one per shift direction).
FAULTS_PER_ITERATION = 2
#: Share of the fault population the M1 kernel can localize (the three
#: logical defect classes out of four equally likely ones).
M1_COVERAGE_SHARE = 0.75


@dataclass(frozen=True)
class SerialSweep:
    """One full serial refill of the memory: direction + target pattern."""

    direction: ShiftDirection
    pattern_kind: str  # "solid0" | "solid1" | "checker" | "checker_inv"
    ascending: bool = True

    def pattern(self, bits: int) -> int:
        """Concrete pattern word for a ``bits``-wide memory."""
        if self.pattern_kind == "solid0":
            return 0
        if self.pattern_kind == "solid1":
            return mask(bits)
        if self.pattern_kind == "checker":
            return checkerboard(bits, phase=1)
        if self.pattern_kind == "checker_inv":
            return checkerboard(bits, phase=0)
        raise ValueError(f"unknown pattern kind {self.pattern_kind!r}")


_R = ShiftDirection.RIGHT
_L = ShiftDirection.LEFT


class DiagRSMarch:
    """Sweep-level description of the reconstructed DiagRSMarch."""

    #: The auxiliary detection March (9 sweeps): a serialized March C- core
    #: plus one checkerboard pass, right-shift operational.
    AUX: tuple[SerialSweep, ...] = (
        SerialSweep(_R, "solid0"),
        SerialSweep(_R, "solid1"),
        SerialSweep(_R, "solid0"),
        SerialSweep(_R, "solid1", ascending=False),
        SerialSweep(_R, "solid0", ascending=False),
        SerialSweep(_R, "checker"),
        SerialSweep(_R, "checker_inv"),
        SerialSweep(_R, "solid0"),
        SerialSweep(_R, "solid0", ascending=False),
    )

    #: One M1 iteration (17 sweeps): solid and checkerboard patterns in
    #: both shift directions and both address orders.  The direction pairs
    #: (write one way, observe while rewriting the other way) are what let
    #: the controller pinpoint the extremal defective bit per direction.
    KERNEL: tuple[SerialSweep, ...] = (
        SerialSweep(_R, "solid0"),
        SerialSweep(_L, "solid1"),
        SerialSweep(_R, "solid0"),
        SerialSweep(_R, "solid1"),
        SerialSweep(_L, "solid0"),
        SerialSweep(_L, "solid1", ascending=False),
        SerialSweep(_R, "solid0", ascending=False),
        SerialSweep(_R, "solid1", ascending=False),
        SerialSweep(_L, "solid0", ascending=False),
        SerialSweep(_R, "checker"),
        SerialSweep(_L, "checker_inv"),
        SerialSweep(_R, "checker"),
        SerialSweep(_L, "checker_inv", ascending=False),
        SerialSweep(_R, "checker", ascending=False),
        SerialSweep(_L, "solid0"),
        SerialSweep(_R, "solid1"),
        SerialSweep(_L, "solid0"),
    )

    def __init__(self) -> None:
        require(len(self.AUX) == AUX_SWEEPS, "aux sweep count drifted")
        require(len(self.KERNEL) == DIAG_KERNEL_SWEEPS, "kernel sweep count drifted")

    def cycles_per_iteration(self, words: int, bits: int) -> int:
        """Serial cycles for one M1 iteration (17 n c)."""
        return DIAG_KERNEL_SWEEPS * words * bits

    def aux_cycles(self, words: int, bits: int) -> int:
        """Serial cycles for the auxiliary detection March (9 n c)."""
        return AUX_SWEEPS * words * bits

    def total_cycles(self, words: int, bits: int, iterations: int) -> int:
        """Eq. (1) in cycles: ``(17 k + 9) n c``."""
        require(iterations >= 0, "iterations must be non-negative")
        return (
            DIAG_KERNEL_SWEEPS * iterations + AUX_SWEEPS
        ) * words * bits


def min_iterations(
    fault_count: int,
    kernel_share: float = M1_COVERAGE_SHARE,
    faults_per_iteration: int = FAULTS_PER_ITERATION,
) -> int:
    """The paper's minimum-k arithmetic (Sec. 4.2).

    With ``F`` faults of which the kernel localizes a ``kernel_share``
    fraction at ``faults_per_iteration`` per iteration:
    ``k = ceil(F * share / per_iteration)`` -- 96 for the case study's 256.

    >>> min_iterations(256)
    96
    """
    require(fault_count >= 0, "fault_count must be non-negative")
    require_positive(faults_per_iteration, "faults_per_iteration")
    require(0.0 <= kernel_share <= 1.0, "kernel_share must be in [0, 1]")
    return math.ceil(fault_count * kernel_share / faults_per_iteration)
