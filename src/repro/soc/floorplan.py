"""Abstract die floorplan: memory placement for routing estimates.

Distances are in abstract grid units; only *relative* routing costs matter
for the architecture comparison (Sec. 1's difficulty (iii): wire routing to
spatially distributed memories).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.chip import SoCConfig
from repro.util.rng import make_rng
from repro.util.validation import require_positive


@dataclass(frozen=True)
class Placement:
    """One memory instance at a die location."""

    memory_name: str
    x: float
    y: float

    def manhattan_to(self, x: float, y: float) -> float:
        """Manhattan distance to a point (wire-length proxy)."""
        return abs(self.x - x) + abs(self.y - y)


class Floorplan:
    """Controller-centred placement of an SoC's memories."""

    def __init__(
        self,
        soc: SoCConfig,
        die_size: float = 100.0,
        controller_xy: tuple[float, float] | None = None,
        rng=0,
    ) -> None:
        require_positive(die_size, "die_size")
        self.soc = soc
        self.die_size = die_size
        self.controller_xy = controller_xy or (die_size / 2.0, die_size / 2.0)
        generator = make_rng(rng)
        self.placements = [
            Placement(
                geometry.name,
                float(generator.uniform(0, die_size)),
                float(generator.uniform(0, die_size)),
            )
            for geometry in soc.geometries
        ]

    def distance_to_controller(self, memory_name: str) -> float:
        """Manhattan distance from one memory to the BISD controller."""
        for placement in self.placements:
            if placement.memory_name == memory_name:
                return placement.manhattan_to(*self.controller_xy)
        raise KeyError(f"no memory named {memory_name!r}")

    def total_star_length(self) -> float:
        """Sum of controller-to-memory distances (star routing)."""
        return sum(
            p.manhattan_to(*self.controller_xy) for p in self.placements
        )

    def daisy_chain_length(self) -> float:
        """Length of a controller-rooted nearest-neighbour chain.

        Serial broadcast wires (the pattern-delivery trunk) can be routed
        as a chain through the memories instead of a star.
        """
        remaining = list(self.placements)
        x, y = self.controller_xy
        total = 0.0
        while remaining:
            nearest = min(remaining, key=lambda p: p.manhattan_to(x, y))
            total += nearest.manhattan_to(x, y)
            x, y = nearest.x, nearest.y
            remaining.remove(nearest)
        return total
