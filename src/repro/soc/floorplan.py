"""Abstract die floorplan: memory placement for routing estimates.

Distances are in abstract grid units; only *relative* routing costs matter
for the architecture comparison (Sec. 1's difficulty (iii): wire routing to
spatially distributed memories).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.chip import SoCConfig
from repro.util.rng import SplitMix64Stream, make_rng, mix_seed, name_seed
from repro.util.validation import require_positive


@dataclass(frozen=True)
class Placement:
    """One memory instance at a die location."""

    memory_name: str
    x: float
    y: float

    def manhattan_to(self, x: float, y: float) -> float:
        """Manhattan distance to a point (wire-length proxy)."""
        return abs(self.x - x) + abs(self.y - y)


class Floorplan:
    """Controller-centred placement of an SoC's memories."""

    def __init__(
        self,
        soc: SoCConfig,
        die_size: float = 100.0,
        controller_xy: tuple[float, float] | None = None,
        rng=0,
    ) -> None:
        require_positive(die_size, "die_size")
        self.soc = soc
        self.die_size = die_size
        self.controller_xy = controller_xy or (die_size / 2.0, die_size / 2.0)
        generator = make_rng(rng)
        self.placements = [
            Placement(
                geometry.name,
                float(generator.uniform(0, die_size)),
                float(generator.uniform(0, die_size)),
            )
            for geometry in soc.geometries
        ]

    @classmethod
    def name_seeded(
        cls,
        soc: SoCConfig,
        die_size: float = 100.0,
        controller_xy: tuple[float, float] | None = None,
        seed: int = 0,
    ) -> "Floorplan":
        """Floorplan whose placements depend only on (seed, memory name).

        The default constructor draws positions from one shared stream in
        geometry order, so reordering an SoC's memory list moves every
        instance.  Scenario workloads (:mod:`repro.scenarios`) need the
        opposite: the placement of ``esram_3`` must be a pure function of
        its *name*, so that relabeling/permuting the bank is a behavioural
        no-op (a metamorphic invariant of the cluster sampler).  Each
        memory gets a private pure-Python stream derived from its name.
        """
        require_positive(die_size, "die_size")
        plan = cls.__new__(cls)
        plan.soc = soc
        plan.die_size = die_size
        plan.controller_xy = controller_xy or (die_size / 2.0, die_size / 2.0)
        placements = []
        for geometry in soc.geometries:
            stream = SplitMix64Stream(mix_seed(seed, name_seed(geometry.name)))
            placements.append(
                Placement(
                    geometry.name,
                    stream.next_float() * die_size,
                    stream.next_float() * die_size,
                )
            )
        plan.placements = placements
        return plan

    def placement_of(self, memory_name: str) -> Placement:
        """The placement record of one memory instance."""
        for placement in self.placements:
            if placement.memory_name == memory_name:
                return placement
        raise KeyError(f"no memory named {memory_name!r}")

    def distance_to_controller(self, memory_name: str) -> float:
        """Manhattan distance from one memory to the BISD controller."""
        return self.placement_of(memory_name).manhattan_to(*self.controller_xy)

    def total_star_length(self) -> float:
        """Sum of controller-to-memory distances (star routing)."""
        return sum(
            p.manhattan_to(*self.controller_xy) for p in self.placements
        )

    def daisy_chain_length(self) -> float:
        """Length of a controller-rooted nearest-neighbour chain.

        Serial broadcast wires (the pattern-delivery trunk) can be routed
        as a chain through the memories instead of a star.
        """
        remaining = list(self.placements)
        x, y = self.controller_xy
        total = 0.0
        while remaining:
            nearest = min(remaining, key=lambda p: p.manhattan_to(x, y))
            total += nearest.manhattan_to(x, y)
            x, y = nearest.x, nearest.y
            remaining.remove(nearest)
        return total
