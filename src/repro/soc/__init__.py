"""SoC-level context: distributed memories, floorplans, routing, benchmarks.

The paper's motivation is *system*-level: many small e-SRAMs scattered
across a die, one shared BISD controller, and wires that must reach every
memory.  This subpackage provides:

* :mod:`repro.soc.chip` -- named SoC configurations (heterogeneous banks);
* :mod:`repro.soc.floorplan` -- memory placement on an abstract die;
* :mod:`repro.soc.routing` -- wire-length comparison of the architecture
  alternatives the paper's related work discusses (per-memory BIST,
  parallel buses, shared serial);
* :mod:`repro.soc.case_study` -- the [16] benchmark configuration behind
  every Sec. 4.2 number (n = 512, c = 100, t = 10 ns, 1 % defects).
"""

from repro.soc.case_study import (
    CASE_STUDY_DEFECT_RATE,
    CASE_STUDY_FAULTS,
    CASE_STUDY_ITERATIONS,
    CASE_STUDY_PERIOD_NS,
    PAPER_AREA_OVERHEAD,
    PAPER_EXTRA_CELLS_PER_BIT,
    PAPER_REDUCTION_NO_DRF,
    PAPER_REDUCTION_WITH_DRF,
    case_study_bank,
    case_study_geometry,
    case_study_population,
)
from repro.soc.chip import SoCConfig
from repro.soc.floorplan import Floorplan, Placement
from repro.soc.routing import RoutingEstimate, compare_routing

__all__ = [
    "CASE_STUDY_DEFECT_RATE",
    "CASE_STUDY_FAULTS",
    "CASE_STUDY_ITERATIONS",
    "CASE_STUDY_PERIOD_NS",
    "Floorplan",
    "PAPER_AREA_OVERHEAD",
    "PAPER_EXTRA_CELLS_PER_BIT",
    "PAPER_REDUCTION_NO_DRF",
    "PAPER_REDUCTION_WITH_DRF",
    "Placement",
    "RoutingEstimate",
    "SoCConfig",
    "case_study_bank",
    "case_study_geometry",
    "case_study_population",
    "compare_routing",
]
