"""The [16] case-study benchmark behind every Sec. 4.2 number.

Parameters as stated in the paper: ``n = 512`` words, ``c = 100`` IOs,
``t = 10`` ns, 1 % defective cells, the four defect classes of [8] equally
likely.  The paper's arithmetic: 256 faults maximum, M1 localizes 75 % of
them at two per iteration, so ``k = 96``; the claimed results are
``R >= 84`` (no DRF), ``R >= 145`` (with DRF), ~1.8 % area and +1 wire.
"""

from __future__ import annotations

from repro.baseline.diag_rsmarch import min_iterations
from repro.faults.defects import DefectProfile
from repro.faults.population import FaultPopulation, expected_fault_count, sample_population
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.validation import require_positive

#: Case-study parameters (Sec. 4.2, quoting [16]).
CASE_STUDY_WORDS = 512
CASE_STUDY_BITS = 100
CASE_STUDY_PERIOD_NS = 10.0
CASE_STUDY_DEFECT_RATE = 0.01

#: Derived by the paper: 1 % of 51,200 cells at ~2 cells/fault.
CASE_STUDY_FAULTS = 256
#: ceil(256 * 0.75 / 2)
CASE_STUDY_ITERATIONS = 96

#: The paper's claims, recorded for EXPERIMENTS.md comparisons.
PAPER_REDUCTION_NO_DRF = 84.0
PAPER_REDUCTION_WITH_DRF = 145.0
PAPER_AREA_OVERHEAD = 0.018
PAPER_EXTRA_CELLS_PER_BIT = 3.0
PAPER_EXTRA_GLOBAL_WIRES = 1


def case_study_geometry(name: str = "esram_16") -> MemoryGeometry:
    """One benchmark e-SRAM (512 x 100)."""
    return MemoryGeometry(CASE_STUDY_WORDS, CASE_STUDY_BITS, name)


def case_study_bank(
    memories: int = 3, period_ns: float = CASE_STUDY_PERIOD_NS
) -> MemoryBank:
    """A bank of identical benchmark e-SRAMs (3 as drawn in Figs. 1/3)."""
    require_positive(memories, "memories")
    return MemoryBank(
        [
            SRAM(case_study_geometry(f"esram_{i}"), period_ns=period_ns)
            for i in range(memories)
        ]
    )


def case_study_population(rng=0) -> FaultPopulation:
    """A seeded 1 %-defect-rate population for one benchmark memory.

    Sanity properties (asserted in tests): 256 faults, ~75 % of them
    M1-localizable, ~25 % data-retention faults.
    """
    return sample_population(
        case_study_geometry(),
        CASE_STUDY_DEFECT_RATE,
        profile=DefectProfile(),
        rng=rng,
    )


def case_study_soc(
    memories: int = 8,
    heterogeneous: bool = True,
    period_ns: float = CASE_STUDY_PERIOD_NS,
):
    """A distributed-SRAM SoC anchored by the [16] benchmark memory.

    The largest/widest instance is the 512x100 benchmark (it sizes the
    shared controller); the remaining instances are smaller buffers in a
    plausible mix, exercising the wrap-around machinery.  With
    ``heterogeneous=False`` every instance is the benchmark memory (the
    configuration the [4] scheme is limited to).
    """
    from repro.soc.chip import SoCConfig

    require_positive(memories, "memories")
    geometries = [case_study_geometry("esram_0")]
    smaller_shapes = [(256, 64), (128, 32), (256, 100), (64, 16), (512, 50)]
    for index in range(1, memories):
        if heterogeneous:
            words, bits = smaller_shapes[(index - 1) % len(smaller_shapes)]
        else:
            words, bits = CASE_STUDY_WORDS, CASE_STUDY_BITS
        geometries.append(MemoryGeometry(words, bits, f"esram_{index}"))
    return SoCConfig(
        name="case-study-soc", geometries=geometries, period_ns=period_ns
    )


def check_paper_arithmetic() -> dict[str, int]:
    """Re-derive the paper's fault-count and k from first principles."""
    geometry = case_study_geometry()
    faults = expected_fault_count(geometry, CASE_STUDY_DEFECT_RATE)
    return {
        "cells": geometry.cells,
        "faults": faults,
        "iterations": min_iterations(faults),
    }
