"""SoC configurations: named collections of distributed e-SRAM geometries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.validation import require


@dataclass
class SoCConfig:
    """A reproducible SoC description: geometries plus clocking.

    ``build_bank()`` materializes fresh SRAM instances, so one config can
    drive many independent experiments.
    """

    name: str
    geometries: list[MemoryGeometry] = field(default_factory=list)
    period_ns: float = 10.0

    def __post_init__(self) -> None:
        require(len(self.geometries) > 0, "an SoC needs at least one memory")

    @property
    def memory_count(self) -> int:
        """Number of e-SRAM instances."""
        return len(self.geometries)

    @property
    def total_cells(self) -> int:
        """Total storage cells across the SoC."""
        return sum(g.cells for g in self.geometries)

    def is_heterogeneous(self) -> bool:
        """Whether memory sizes differ (the [4] scheme cannot handle this)."""
        return len({(g.words, g.bits) for g in self.geometries}) > 1

    def build_bank(self, trace: bool = False, has_idle_mode: bool = True) -> MemoryBank:
        """Instantiate fresh memories for one experiment."""
        return MemoryBank(
            [
                SRAM(
                    geometry,
                    period_ns=self.period_ns,
                    has_idle_mode=has_idle_mode,
                    trace=trace,
                )
                for geometry in self.geometries
            ]
        )

    @classmethod
    def buffer_cluster(cls, period_ns: float = 10.0) -> "SoCConfig":
        """A typical networking-SoC buffer cluster (motivating example [1]).

        Three heterogeneous small buffers hanging off one controller, as in
        Figs. 1 and 3 of the paper.
        """
        return cls(
            name="buffer-cluster",
            geometries=[
                MemoryGeometry(256, 32, "rx_fifo"),
                MemoryGeometry(128, 18, "hdr_buf"),
                MemoryGeometry(64, 9, "tag_ram"),
            ],
            period_ns=period_ns,
        )

    def __repr__(self) -> str:
        shapes = ", ".join(f"{g.name}:{g.words}x{g.bits}" for g in self.geometries)
        return f"SoCConfig({self.name!r}, [{shapes}])"
