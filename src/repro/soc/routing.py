"""Routing-cost comparison of the diagnosis-architecture alternatives.

Section 1 of the paper rejects two alternatives before proposing its
scheme; this module quantifies the wire budgets on a common floorplan:

* **per-memory BIST** [5, 6]: no global test wires, but a full controller
  replicated at each memory (area, not wires, is the cost -- included for
  completeness with its local-area penalty);
* **shared parallel buses**: one shared controller driving each memory's
  full data/address bus -- wire length scales with ``c + log2 n`` per
  memory;
* **shared serial** ([7, 8] and the proposed scheme): a handful of global
  wires per memory; the proposed scheme costs exactly one more than the
  baseline (``scan_en``), plus NWRTM if DRF screening is on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.area import AreaModel
from repro.core.control_gen import ControlGenerator
from repro.soc.floorplan import Floorplan
from repro.util.records import Record


@dataclass(frozen=True)
class RoutingEstimate(Record):
    """Wire budget for one architecture on one floorplan."""

    architecture: str
    global_wire_length: float
    wires_per_memory: float
    replicated_controller_transistors: int

    def summary(self) -> str:
        return (
            f"{self.architecture:24s} wire-length={self.global_wire_length:10.1f}  "
            f"wires/mem={self.wires_per_memory:6.1f}  "
            f"extra-controllers={self.replicated_controller_transistors}"
        )


#: Transistor estimate for one replicated BIST/BISD controller (pattern
#: generator + comparator + sequencer), used by the per-memory alternative.
PER_MEMORY_CONTROLLER_TRANSISTORS = 5_000


def compare_routing(floorplan: Floorplan) -> list[RoutingEstimate]:
    """Wire budgets of the three architectures on one floorplan."""
    soc = floorplan.soc
    star = floorplan.total_star_length()
    chain = floorplan.daisy_chain_length()

    estimates = [
        RoutingEstimate(
            architecture="per-memory BIST [5,6]",
            global_wire_length=chain,  # only a start/done daisy chain
            wires_per_memory=2.0,
            replicated_controller_transistors=(
                PER_MEMORY_CONTROLLER_TRANSISTORS * soc.memory_count
            ),
        )
    ]

    parallel_wires = 0.0
    for geometry in soc.geometries:
        bus = geometry.bits + max(1, math.ceil(math.log2(geometry.words))) + 3
        parallel_wires += bus * floorplan.distance_to_controller(geometry.name)
    estimates.append(
        RoutingEstimate(
            architecture="shared parallel buses",
            global_wire_length=parallel_wires,
            wires_per_memory=sum(
                g.bits + max(1, math.ceil(math.log2(g.words))) + 3
                for g in soc.geometries
            )
            / soc.memory_count,
            replicated_controller_transistors=0,
        )
    )

    baseline_wires = ControlGenerator.baseline_wires().count
    proposed_wires = ControlGenerator(drf_screening=True).wires().count
    for name, count in (
        ("shared serial [7,8]", baseline_wires),
        ("shared serial (proposed)", proposed_wires),
    ):
        # The trunk signals (clock, pattern, control) daisy-chain; the
        # per-memory response wire stars back to the comparator array.
        estimates.append(
            RoutingEstimate(
                architecture=name,
                global_wire_length=chain * (count - 1) + star,
                wires_per_memory=float(count),
                replicated_controller_transistors=0,
            )
        )
    return estimates


def proposed_extra_area_summary(area_model: AreaModel | None = None) -> str:
    """One-line restatement of the Sec. 4.3 area claim."""
    model = area_model or AreaModel()
    return (
        f"proposed - baseline = {model.extra_per_bit_cells():.1f} "
        "6T-cell equivalents per interface bit, +1 global wire (scan_en)"
    )
