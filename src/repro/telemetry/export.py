"""Telemetry exporters: Chrome ``trace_event`` JSON and flat metrics JSON.

The trace exporter emits the *JSON Object Format* of the Chrome trace
event specification -- a ``traceEvents`` list of matched ``B``/``E``
duration events -- loadable directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  Each traced process becomes one ``pid``/``tid``
track (the engine's workers are processes, not threads), timestamps are
re-zeroed to the earliest span and converted to microseconds, and events
are sorted so that every ``B`` strictly nests: ties are broken end-first,
then by span depth, which is exactly the order a correctly nested LIFO
tracer produced them in.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.report import TelemetryReport

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_metrics_json",
]


def chrome_trace_events(report: TelemetryReport) -> list[dict]:
    """Render every retained span as a matched B/E event pair.

    Events are sorted by timestamp; at equal timestamps ``E`` events come
    first (a sibling ending exactly where the next begins must close
    before it opens), ``B`` events of shallower spans precede deeper ones
    and ``E`` events of deeper spans precede shallower ones, preserving
    strict nesting per track.
    """
    if not report.spans:
        return []
    origin_ns = min(start for _, (_, _, start, _, _, _) in report.spans)
    keyed: list[tuple[tuple, dict]] = []
    for pid, (name, category, start_ns, duration_ns, depth, args) in report.spans:
        begin = {
            "name": name,
            "cat": category,
            "ph": "B",
            "ts": (start_ns - origin_ns) / 1000.0,
            "pid": pid,
            "tid": pid,
        }
        if args:
            begin["args"] = dict(args)
        end = {
            "name": name,
            "cat": category,
            "ph": "E",
            "ts": (start_ns + duration_ns - origin_ns) / 1000.0,
            "pid": pid,
            "tid": pid,
        }
        keyed.append(((begin["ts"], 1, depth), begin))
        keyed.append(((end["ts"], 0, -depth), end))
    keyed.sort(key=lambda item: item[0])
    return [event for _, event in keyed]


def write_chrome_trace(report: TelemetryReport, path) -> None:
    """Write the Chrome trace JSON document to ``path``."""
    document = {
        "traceEvents": chrome_trace_events(report),
        "displayTimeUnit": "ms",
        "otherData": {
            "processes": sorted(report.processes),
            "dropped_spans": report.dropped_spans,
        },
    }
    Path(path).write_text(json.dumps(document) + "\n", encoding="utf-8")


def write_metrics_json(report: TelemetryReport, path) -> None:
    """Write the flat metrics JSON document to ``path``."""
    Path(path).write_text(
        json.dumps(report.to_json_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
