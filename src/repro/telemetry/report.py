"""Cross-process telemetry aggregation: the fleet's performance report.

Each worker process traces its chunks with a private
:class:`~repro.telemetry.core.Tracer` and ships
:meth:`~repro.telemetry.core.Tracer.snapshot` dicts back inside chunk
results; the scheduler folds them -- together with its own parent-side
tracer -- into one :class:`TelemetryReport` attached to
:class:`~repro.engine.aggregate.FleetReport`.

The report is *run metadata*: like ``elapsed_s`` and the plan-cache
traffic it describes how the run executed, never what it computed, so it
is excluded from ``deterministic_dict()`` and never reaches checkpoint
bytes.  Its headline derived view is the **per-lane attribution** of
march time -- how much wall time the engine spent in the behavioural
replay lane vs the compiled fault-table lane vs the clean block-op lane,
and what fraction of word visits each lane carried -- the measurement the
heavy-diagnostic perf work is gated on.
"""

from __future__ import annotations

from repro.telemetry.core import Counters, Tracer

__all__ = ["TelemetryReport", "LANE_COUNTER_KEYS"]

#: Counter names the lane-attribution view is derived from (time in
#: integer nanoseconds, words in word-visits per march element).
LANE_COUNTER_KEYS = (
    "lane.replay.ns",
    "lane.table.ns",
    "lane.clean.ns",
    "lane.replay.words",
    "lane.table.words",
    "lane.clean.words",
)

#: Raw spans kept across all merged snapshots (aggregate span statistics
#: are unbounded and always exact; only the trace-viewer buffer is capped).
MAX_REPORT_SPANS = 200_000


class TelemetryReport:
    """Merged spans and counters of one fleet/scenario/bench run."""

    def __init__(self) -> None:
        self.counters = Counters()
        #: name -> [count, total_ns, min_ns, max_ns], merged across processes.
        self.span_stats: dict[str, list] = {}
        #: (pid, span-tuple) pairs feeding the Chrome trace exporter.
        self.spans: list[tuple[int, tuple]] = []
        self.dropped_spans = 0
        self.processes: set[int] = set()

    # ------------------------------------------------------------------ #
    # Merging                                                            #
    # ------------------------------------------------------------------ #
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold one worker (or parent) tracer snapshot in."""
        pid = snapshot.get("pid", 0)
        self.processes.add(pid)
        self.counters.merge(snapshot.get("counters", {}))
        for name, stats in snapshot.get("span_stats", {}).items():
            merged = self.span_stats.get(name)
            if merged is None:
                self.span_stats[name] = list(stats)
            else:
                merged[0] += stats[0]
                merged[1] += stats[1]
                merged[2] = min(merged[2], stats[2])
                merged[3] = max(merged[3], stats[3])
        self.dropped_spans += snapshot.get("dropped_spans", 0)
        for span in snapshot.get("spans", ()):
            if len(self.spans) < MAX_REPORT_SPANS:
                self.spans.append((pid, tuple(span)))
            else:
                self.dropped_spans += 1

    def merge_tracer(self, tracer: Tracer) -> None:
        """Convenience: merge a live tracer's snapshot."""
        self.merge_snapshot(tracer.snapshot())

    def merge_report(self, other: "TelemetryReport") -> None:
        """Fold another merged report in.

        The streaming monitor schedules an unbounded run as a sequence of
        bounded epochs, each producing its own report via
        :meth:`~repro.engine.fleet.FleetScheduler.stream`; this folds the
        epoch reports into the monitor's cumulative one.
        """
        self.processes |= other.processes
        self.counters.merge(other.counters.to_dict())
        for name, stats in other.span_stats.items():
            merged = self.span_stats.get(name)
            if merged is None:
                self.span_stats[name] = list(stats)
            else:
                merged[0] += stats[0]
                merged[1] += stats[1]
                merged[2] = min(merged[2], stats[2])
                merged[3] = max(merged[3], stats[3])
        self.dropped_spans += other.dropped_spans
        for pid, span in other.spans:
            if len(self.spans) < MAX_REPORT_SPANS:
                self.spans.append((pid, span))
            else:
                self.dropped_spans += 1

    # ------------------------------------------------------------------ #
    # Derived views                                                      #
    # ------------------------------------------------------------------ #
    def lane_attribution(self) -> dict:
        """Per-lane share of march execution time and word visits.

        ``march_time_s`` is the instrumented element-execution time (the
        sum of the three lanes); shares are ``None`` when nothing was
        instrumented (e.g. a reference-backend run, which has no lanes).
        """
        get = self.counters.get
        lanes = {}
        total_ns = 0
        total_words = 0
        for lane in ("replay", "table", "clean"):
            ns = get(f"lane.{lane}.ns")
            words = get(f"lane.{lane}.words")
            total_ns += ns
            total_words += words
            lanes[lane] = {"time_s": ns / 1e9, "words": words}
        for lane in lanes.values():
            lane["time_share"] = (
                lane["time_s"] * 1e9 / total_ns if total_ns else None
            )
            lane["word_share"] = (
                lane["words"] / total_words if total_words else None
            )
        return {
            "march_time_s": total_ns / 1e9,
            "total_words": total_words,
            "lanes": lanes,
            "clean_skipped_compares": get("clean.compares_skipped"),
            "replay_accesses": get("replay.accesses"),
        }

    def fleet_stats(self) -> dict:
        """Scheduler-level derived metrics (utilization, queue wait, I/O)."""
        get = self.counters.get
        workers = get("fleet.workers")
        elapsed_ns = get("fleet.elapsed.ns")
        busy_ns = get("fleet.worker_busy.ns")
        utilization = None
        if workers and elapsed_ns:
            utilization = min(1.0, busy_ns / (workers * elapsed_ns))
        return {
            "workers": int(workers) or None,
            "chunks": int(get("fleet.chunks")),
            "chunks_resumed": int(get("fleet.chunks_resumed")),
            "worker_busy_s": busy_ns / 1e9,
            "worker_utilization": utilization,
            "queue_wait_s": get("fleet.queue_wait.ns") / 1e9,
            "checkpoint_save_s": get("checkpoint.save.ns") / 1e9,
            "checkpoint_load_s": get("checkpoint.load.ns") / 1e9,
            # Fault-tolerance accounting (supervised executor).
            "retries": int(get("fleet.retries")),
            "respawns": int(get("fleet.respawns")),
            "quarantined": int(get("fleet.quarantined")),
            "chunks_recovered": int(get("fleet.chunks_recovered")),
        }

    def stream_stats(self) -> dict:
        """Streaming-monitor derived metrics (per-window attribution).

        Derived from the ``stream.window`` spans each worker emits per
        diagnosed window and the ``stream.*`` counters; all zeros/None
        for non-streaming runs.
        """
        get = self.counters.get
        sweep = self.span_stats.get("stream.window")
        windows = int(get("stream.windows"))
        return {
            "windows": windows,
            "empty_windows": int(get("stream.windows_empty")),
            "events": int(get("stream.events")),
            "detected_events": int(get("stream.detected")),
            "sweep_time_s": sweep[1] / 1e9 if sweep else 0.0,
            "mean_window_s": (
                sweep[1] / sweep[0] / 1e9 if sweep and sweep[0] else None
            ),
            "max_window_s": sweep[3] / 1e9 if sweep else None,
        }

    # ------------------------------------------------------------------ #
    # Rendering                                                          #
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict:
        """The flat metrics document (``--metrics-out`` / ``--json``)."""
        stream = self.stream_stats()
        extra = {"stream": stream} if stream["windows"] else {}
        return {
            **extra,
            "processes": len(self.processes),
            "counters": self.counters.to_dict(),
            "span_stats": {
                name: {
                    "count": stats[0],
                    "total_s": stats[1] / 1e9,
                    "min_s": stats[2] / 1e9,
                    "max_s": stats[3] / 1e9,
                }
                for name, stats in sorted(self.span_stats.items())
            },
            "lane_attribution": self.lane_attribution(),
            "fleet": self.fleet_stats(),
            "dropped_spans": self.dropped_spans,
        }

    def summary_lines(self) -> list[str]:
        """Human-readable telemetry summary for the CLI."""

        def pct(share) -> str:
            return "n/a" if share is None else f"{share:.1%}"

        attribution = self.lane_attribution()
        fleet = self.fleet_stats()
        lines = ["telemetry:"]
        if attribution["march_time_s"] > 0:
            lines.append(
                f"  march time      : {attribution['march_time_s']:.3f} s "
                f"instrumented over {attribution['total_words']} word visits"
            )
            for lane in ("replay", "table", "clean"):
                entry = attribution["lanes"][lane]
                lines.append(
                    f"  {lane + ' lane':<16}: {pct(entry['time_share'])} of march "
                    f"time, {pct(entry['word_share'])} of words "
                    f"({entry['time_s']:.3f} s, {entry['words']} words)"
                )
            if attribution["clean_skipped_compares"]:
                lines.append(
                    f"  clean skips     : "
                    f"{attribution['clean_skipped_compares']} provably-clean "
                    f"compares skipped"
                )
        if fleet["chunks"]:
            utilization = fleet["worker_utilization"]
            lines.append(
                f"  fleet           : {fleet['chunks']} chunks "
                f"({fleet['chunks_resumed']} resumed) over "
                f"{fleet['workers'] or '?'} workers, utilization "
                f"{pct(utilization)}, queue wait {fleet['queue_wait_s']:.3f} s"
            )
            if fleet["checkpoint_save_s"] or fleet["checkpoint_load_s"]:
                lines.append(
                    f"  checkpoint I/O  : save {fleet['checkpoint_save_s']:.3f} s, "
                    f"load {fleet['checkpoint_load_s']:.3f} s"
                )
            if (
                fleet["retries"]
                or fleet["respawns"]
                or fleet["quarantined"]
                or fleet["chunks_recovered"]
            ):
                lines.append(
                    f"  fault tolerance : {fleet['retries']} retries, "
                    f"{fleet['respawns']} respawns, "
                    f"{fleet['quarantined']} quarantined, "
                    f"{fleet['chunks_recovered']} checkpoint chunks recovered"
                )
        stream = self.stream_stats()
        if stream["windows"]:
            mean = stream["mean_window_s"]
            lines.append(
                f"  stream          : {stream['windows']} windows "
                f"({stream['empty_windows']} empty), {stream['events']} events "
                f"({stream['detected_events']} detected), mean sweep "
                f"{'n/a' if mean is None else f'{mean * 1e3:.2f} ms'}"
            )
        hits = self.counters.get("plan_cache.hits")
        misses = self.counters.get("plan_cache.misses")
        if hits or misses:
            lines.append(
                f"  plan cache      : {hits} hits, {misses} misses"
            )
        if self.dropped_spans:
            lines.append(
                f"  spans dropped   : {self.dropped_spans} "
                f"(raw-span buffer full; aggregates stay exact)"
            )
        return lines
