"""Zero-dependency tracing and metrics primitives.

The engine's hot paths are instrumented with *sites* -- a span around a
march element, a counter bump after a replay sweep -- that all route
through one process-global tracer handle (:func:`tracer`).  Two
implementations exist:

* :class:`Tracer` records nestable spans against the monotonic clock
  (``time.perf_counter_ns``), keeps per-name aggregate span statistics,
  and owns a :class:`Counters` registry of cheap int/float accumulators.
  A bounded raw-span buffer feeds the Chrome ``trace_event`` exporter;
  when it fills, spans degrade to aggregate statistics only (counted in
  ``dropped_spans``) so long fleets never hoard memory.
* :class:`NullTracer` is the default: every operation is a no-op and
  ``enabled`` is ``False``, so instrumentation sites reduce to one
  attribute check and the un-instrumented hot path pays (almost) nothing.

Workers serialize their tracer via :meth:`Tracer.snapshot` -- a plain
JSON-friendly dict shipped back inside chunk results -- and the fleet
scheduler merges snapshots into a
:class:`~repro.telemetry.report.TelemetryReport`.  Timestamps are raw
``perf_counter_ns`` values; on the platforms the engine targets that
clock is system-wide monotonic, so spans from forked workers land on the
same timeline as the parent's (the exporters re-zero to the earliest
span anyway).
"""

from __future__ import annotations

import os
import time

__all__ = [
    "Counters",
    "NullTracer",
    "Tracer",
    "activate",
    "deactivate",
    "set_tracer",
    "tracer",
    "NULL_TRACER",
]


class Counters:
    """A flat registry of named int/float accumulators.

    Names are dotted paths (``"lane.replay.ns"``); values only ever add.
    Deliberately dict-backed and method-light: one ``dict.get`` plus an
    add per bump, no dataclass or attribute machinery on the hot path.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: dict[str, int | float] = {}

    def add(self, name: str, value: int | float = 1) -> None:
        """Accumulate ``value`` into counter ``name`` (created at 0)."""
        values = self.values
        values[name] = values.get(name, 0) + value

    def get(self, name: str, default: int | float = 0) -> int | float:
        """Current value of counter ``name``."""
        return self.values.get(name, default)

    def merge(self, other: "Counters | dict[str, int | float]") -> None:
        """Fold another registry (or its dict form) into this one."""
        values = other.values if isinstance(other, Counters) else other
        for name, value in values.items():
            self.add(name, value)

    def to_dict(self) -> dict[str, int | float]:
        """Name-sorted plain dict of every counter."""
        return {name: self.values[name] for name in sorted(self.values)}


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span` (one per entry)."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str, args) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> "_SpanContext":
        self._depth = len(self._tracer._stack)
        self._tracer._stack.append(self._name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = time.perf_counter_ns()
        tracer = self._tracer
        tracer._stack.pop()
        tracer._finish(
            self._name,
            self._category,
            self._start_ns,
            end_ns - self._start_ns,
            self._depth,
            self._args,
        )


class _NullSpan:
    """Reusable no-op context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every site reduces to ``if tracer.enabled``.

    ``counters`` is a real (empty) registry so accidental unguarded adds
    cannot crash; the contract sites follow is to check ``enabled`` first
    so even that cost is skipped.
    """

    enabled = False

    def __init__(self) -> None:
        self.counters = Counters()

    def span(self, name: str, category: str = "engine", **args) -> _NullSpan:
        """A shared no-op context manager."""
        return _NULL_SPAN

    def snapshot(self) -> dict:
        """An empty snapshot (merging it is a no-op)."""
        return {
            "pid": os.getpid(),
            "counters": {},
            "span_stats": {},
            "spans": [],
            "dropped_spans": 0,
        }


class Tracer:
    """Records nestable spans and counters against the monotonic clock.

    Spans close in LIFO order (the context manager guarantees it), so the
    recorded depth reconstructs the tree and the Chrome exporter can emit
    properly nested B/E pairs.  Aggregate per-name statistics are always
    maintained; raw spans are kept only up to ``max_spans``.
    """

    enabled = True

    def __init__(self, max_spans: int = 100_000) -> None:
        self.counters = Counters()
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.pid = os.getpid()
        #: Finished spans as (name, category, start_ns, duration_ns,
        #: depth, args) tuples, in completion order.
        self.spans: list[tuple] = []
        #: name -> [count, total_ns, min_ns, max_ns]
        self.span_stats: dict[str, list] = {}
        self._stack: list[str] = []

    def span(self, name: str, category: str = "engine", **args) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        return _SpanContext(self, name, category, args or None)

    def _finish(
        self,
        name: str,
        category: str,
        start_ns: int,
        duration_ns: int,
        depth: int,
        args,
    ) -> None:
        stats = self.span_stats.get(name)
        if stats is None:
            self.span_stats[name] = [1, duration_ns, duration_ns, duration_ns]
        else:
            stats[0] += 1
            stats[1] += duration_ns
            if duration_ns < stats[2]:
                stats[2] = duration_ns
            if duration_ns > stats[3]:
                stats[3] = duration_ns
        if len(self.spans) < self.max_spans:
            self.spans.append((name, category, start_ns, duration_ns, depth, args))
        else:
            self.dropped_spans += 1

    def snapshot(self) -> dict:
        """JSON-friendly dump for cross-process shipping.

        Open spans (a snapshot taken mid-span) are not included; the
        fleet protocol snapshots only after the chunk's top span closed.
        """
        return {
            "pid": self.pid,
            "counters": dict(self.counters.values),
            "span_stats": {
                name: list(stats) for name, stats in self.span_stats.items()
            },
            "spans": [list(span) for span in self.spans],
            "dropped_spans": self.dropped_spans,
        }


#: The process-wide default: telemetry off, hot paths unencumbered.
NULL_TRACER = NullTracer()

_current: "Tracer | NullTracer" = NULL_TRACER


def tracer() -> "Tracer | NullTracer":
    """The process-global tracer handle every instrumentation site reads."""
    return _current


def set_tracer(instance: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install ``instance`` as the process-global tracer; returns the old one."""
    global _current
    previous = _current
    _current = instance
    return previous


def activate(max_spans: int = 100_000) -> Tracer:
    """Install and return a fresh active :class:`Tracer`."""
    instance = Tracer(max_spans=max_spans)
    set_tracer(instance)
    return instance


def deactivate() -> "Tracer | NullTracer":
    """Restore the null tracer; returns the tracer that was active."""
    return set_tracer(NULL_TRACER)
