"""Engine telemetry: spans, counters and per-lane perf attribution.

A zero-dependency tracing/metrics subsystem threaded through the whole
execution stack (session -> kernels -> fleet scheduler -> bench):

* :mod:`repro.telemetry.core` -- the :class:`Tracer` (nestable
  monotonic-clock spans, a :class:`Counters` registry) and the no-op
  :class:`NullTracer` the hot path sees when telemetry is off;
* :mod:`repro.telemetry.report` -- :class:`TelemetryReport`, the
  cross-process merge of worker tracer snapshots with the per-lane
  (replay / table / clean) time and word attribution derived from it;
* :mod:`repro.telemetry.export` -- Chrome ``trace_event`` JSON
  (``chrome://tracing`` / Perfetto) and flat metrics JSON exporters.

Telemetry is run metadata: enabling it changes no result byte -- it is
excluded from ``FleetReport.deterministic_dict()`` and from checkpoint
chunk files, exactly like the wall clock and the plan-cache traffic.
"""

from repro.telemetry.core import (
    NULL_TRACER,
    Counters,
    NullTracer,
    Tracer,
    activate,
    deactivate,
    set_tracer,
    tracer,
)
from repro.telemetry.export import (
    chrome_trace_events,
    write_chrome_trace,
    write_metrics_json,
)
from repro.telemetry.report import TelemetryReport

__all__ = [
    "Counters",
    "NULL_TRACER",
    "NullTracer",
    "TelemetryReport",
    "Tracer",
    "activate",
    "chrome_trace_events",
    "deactivate",
    "set_tracer",
    "tracer",
    "write_chrome_trace",
    "write_metrics_json",
]
