"""Bitline precharge circuit with the NWRTM control gate (Fig. 6).

In normal operation the precharge devices pull both bitlines high between
accesses and the write drivers then force them to the write data.  With the
``NWRTM`` signal asserted, the precharge of the *high-side* bitline is
gated off and its write driver is disabled, leaving it at floating GND
(it was discharged by the previous cycle and nothing drives it).  The
low-side bitline is driven to true GND exactly as in a normal write.

The paper stresses that a single control gate per memory suffices, so the
area cost of NWRTM is one gate plus one routed global signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.electrical.levels import Level
from repro.util.validation import require


@dataclass(frozen=True)
class BitlineDrive:
    """The (BL, BLb) levels a write cycle presents to the cell."""

    bl: Level
    blb: Level


class PrechargeCircuit:
    """Generates bitline conditioning for normal writes and NWRCs."""

    def __init__(self) -> None:
        self.nwrtm_enabled = False

    def set_nwrtm(self, enabled: bool) -> None:
        """Assert or deassert the global NWRTM signal."""
        self.nwrtm_enabled = enabled

    def drive_for_write(self, value: int) -> BitlineDrive:
        """Bitline levels for writing ``value`` into the cell.

        Normal mode: the value side is driven to VCC, the other side to
        true GND.  NWRTM mode: the value side is left at floating GND (its
        precharge is gated off and its driver disabled), the other side is
        driven to true GND -- the No Write Recovery Cycle.
        """
        require(value in (0, 1), f"value must be 0 or 1, got {value!r}")
        if self.nwrtm_enabled:
            high_side = Level.FLOAT_GND
        else:
            high_side = Level.VCC
        if value == 1:
            return BitlineDrive(bl=high_side, blb=Level.GND)
        return BitlineDrive(bl=Level.GND, blb=high_side)

    def drive_for_read(self) -> BitlineDrive:
        """Bitline levels at the start of a read (both precharged high)."""
        return BitlineDrive(bl=Level.FLOAT_VCC, blb=Level.FLOAT_VCC)

    def __repr__(self) -> str:
        return f"PrechargeCircuit(nwrtm={self.nwrtm_enabled})"
