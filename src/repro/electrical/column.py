"""A column of 6T cells sharing bitlines and one precharge circuit.

Used by the Figure 6 benchmark and the NWRTM example to exercise a
realistic mix of good, open-pull-up (DRF) and resistive-pull-up (weak)
cells through normal writes, NWRCs, reads and retention pauses -- and to
cross-check the functional fault models against the switch-level outcomes.
"""

from __future__ import annotations

from repro.electrical.cell6t import SixTransistorCell
from repro.electrical.devices import DeviceHealth
from repro.electrical.write_cycle import WriteKind, WriteOutcome, simulate_write
from repro.util.validation import require


class CellColumn:
    """A vertical slice of cells behind one bitline pair."""

    def __init__(self, cells: list[SixTransistorCell]) -> None:
        require(len(cells) > 0, "a column needs at least one cell")
        self.cells = list(cells)

    @classmethod
    def build(
        cls,
        rows: int,
        open_pullup_rows: dict[int, str] | None = None,
        resistive_pullup_rows: dict[int, str] | None = None,
        retention_ns: float = 1_000_000.0,
    ) -> "CellColumn":
        """Build a column with defects injected at chosen rows.

        ``open_pullup_rows``/``resistive_pullup_rows`` map row index to the
        affected node ('a' or 'b').
        """
        open_pullup_rows = open_pullup_rows or {}
        resistive_pullup_rows = resistive_pullup_rows or {}
        cells = []
        for row in range(rows):
            pullup_a = DeviceHealth.OK
            pullup_b = DeviceHealth.OK
            if open_pullup_rows.get(row) == "a":
                pullup_a = DeviceHealth.OPEN
            elif open_pullup_rows.get(row) == "b":
                pullup_b = DeviceHealth.OPEN
            if resistive_pullup_rows.get(row) == "a":
                pullup_a = DeviceHealth.RESISTIVE
            elif resistive_pullup_rows.get(row) == "b":
                pullup_b = DeviceHealth.RESISTIVE
            cells.append(
                SixTransistorCell(
                    pullup_a=pullup_a, pullup_b=pullup_b, retention_ns=retention_ns
                )
            )
        return cls(cells)

    def __len__(self) -> int:
        return len(self.cells)

    def write_all(self, value: int, kind: WriteKind = WriteKind.NORMAL) -> list[WriteOutcome]:
        """Apply one write cycle per row and return the outcomes."""
        return [simulate_write(cell, value, kind) for cell in self.cells]

    def read_all(self) -> list[int]:
        """Sense every row."""
        return [cell.read() for cell in self.cells]

    def elapse(self, duration_ns: float) -> None:
        """Let retention time pass for every cell."""
        for cell in self.cells:
            cell.elapse(duration_ns)

    def rows_not_storing(self, value: int) -> list[int]:
        """Rows whose sensed value differs from ``value`` (failing rows)."""
        return [row for row, cell in enumerate(self.cells) if cell.read() != value]
