"""The 6T SRAM cell at switch level.

The cell of Fig. 6: storage node A and complementary node B, each with a
pull-up PMOS to VCC and a pull-down NMOS to GND (the cross-coupled
inverters), plus one access NMOS per side connecting A to bitline BL and B
to bitline BLb when the wordline rises.

State is kept as the pair of node logic values plus a *retention health*
flag per node: a node holding 1 without a conducting pull-up has nothing to
replenish its charge and decays after the cell's retention time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.electrical.devices import DeviceHealth
from repro.util.validation import require


@dataclass
class CellNodes:
    """Logic values of the two storage nodes."""

    a: int
    b: int

    def __post_init__(self) -> None:
        require(self.a in (0, 1), "node A must be 0 or 1")
        require(self.b in (0, 1), "node B must be 0 or 1")

    @property
    def is_valid(self) -> bool:
        """Whether the nodes are complementary (a legal latch state)."""
        return self.a != self.b


class SixTransistorCell:
    """One 6T cell with configurable pull-up health on either side.

    ``pullup_a`` guards node A's ability to *hold* a 1 (stored value 1);
    ``pullup_b`` guards node B's, i.e. the cell's ability to hold a 0.
    Pull-downs and access transistors are assumed good -- their defects
    produce ordinary stuck-at/transition faults already covered by the
    functional models.
    """

    def __init__(
        self,
        pullup_a: DeviceHealth = DeviceHealth.OK,
        pullup_b: DeviceHealth = DeviceHealth.OK,
        retention_ns: float = 1_000_000.0,
        initial_value: int = 0,
    ) -> None:
        require(initial_value in (0, 1), "initial_value must be 0 or 1")
        self.pullup_a = pullup_a
        self.pullup_b = pullup_b
        self.retention_ns = retention_ns
        self.nodes = CellNodes(a=initial_value, b=1 - initial_value)
        self._stored_at_ns = 0.0
        self._now_ns = 0.0

    # ------------------------------------------------------------------ #
    # Observation                                                        #
    # ------------------------------------------------------------------ #
    @property
    def value(self) -> int:
        """Stored logic value (node A)."""
        return self.nodes.a

    def high_node_pullup(self) -> DeviceHealth:
        """Health of the pull-up behind the currently-high node."""
        return self.pullup_a if self.nodes.a == 1 else self.pullup_b

    @property
    def retention_compromised(self) -> bool:
        """True when nothing replenishes the charge of the high node."""
        return not self.high_node_pullup().conducts

    def read(self) -> int:
        """Sense the stored value (applies any pending retention decay)."""
        self._apply_decay()
        return self.value

    # ------------------------------------------------------------------ #
    # Time                                                               #
    # ------------------------------------------------------------------ #
    def elapse(self, duration_ns: float) -> None:
        """Let time pass (retention decay applies on the next read)."""
        require(duration_ns >= 0, "duration_ns must be non-negative")
        self._now_ns += duration_ns

    def _apply_decay(self) -> None:
        if not self.retention_compromised:
            return
        if self._now_ns - self._stored_at_ns >= self.retention_ns:
            decayed = 1 - self.value
            self._set_value(decayed)

    # ------------------------------------------------------------------ #
    # Node forcing (used by the write engine)                            #
    # ------------------------------------------------------------------ #
    def _set_value(self, value: int) -> None:
        self.nodes = CellNodes(a=value, b=1 - value)
        self._stored_at_ns = self._now_ns

    def force(self, value: int) -> None:
        """Set the latch state directly (test setup helper)."""
        require(value in (0, 1), "value must be 0 or 1")
        self._set_value(value)

    def pullup_for_node(self, node: str) -> DeviceHealth:
        """Health of the pull-up PMOS behind node ``'a'`` or ``'b'``."""
        require(node in ("a", "b"), f"node must be 'a' or 'b', got {node!r}")
        return self.pullup_a if node == "a" else self.pullup_b

    def __repr__(self) -> str:
        return (
            f"SixTransistorCell(value={self.value}, pullup_a={self.pullup_a.value}, "
            f"pullup_b={self.pullup_b.value})"
        )
