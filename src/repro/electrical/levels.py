"""Node and bitline voltage levels at switch-level abstraction.

The paper's NWRTM argument distinguishes "true GND" (driven low by an
active device) from "float GND" (at ground potential but undriven): a
floating-GND bitline cannot pull a storage node up *and* contributes no
charge sharing, which is what makes the NWRC discriminate good cells from
open-pull-up cells.
"""

from __future__ import annotations

import enum


class Level(enum.Enum):
    """Voltage level of a node or bitline."""

    VCC = "vcc"  # driven to the supply rail
    GND = "gnd"  # driven to ground ("true GND")
    FLOAT_VCC = "float-vcc"  # precharged high, currently undriven
    FLOAT_GND = "float-gnd"  # at ground potential, currently undriven
    WEAK_VCC = "weak-vcc"  # degraded high (e.g. through an NMOS pass gate)

    @property
    def is_driven(self) -> bool:
        """Whether an active device holds this level."""
        return self in (Level.VCC, Level.GND)

    @property
    def logic_value(self) -> int:
        """Logic interpretation of the level (weak/floating kept as-is)."""
        if self in (Level.VCC, Level.FLOAT_VCC, Level.WEAK_VCC):
            return 1
        return 0

    @property
    def can_charge_node(self) -> bool:
        """Whether a bitline at this level can raise a storage node.

        Only a level at or near VCC can charge a node through the access
        transistor; any flavour of GND (driven or floating) cannot.
        """
        return self in (Level.VCC, Level.FLOAT_VCC, Level.WEAK_VCC)

    @property
    def can_discharge_node(self) -> bool:
        """Whether a bitline at this level can pull a storage node low.

        Discharging requires a *driven* ground: a floating-GND bitline would
        simply charge up from the node (charge sharing) without flipping it.
        """
        return self is Level.GND
