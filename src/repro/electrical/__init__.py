"""Switch-level model of the 6T SRAM cell and the NWRTM precharge circuit.

This subpackage executes the electrical argument of Sec. 3.4 / Fig. 6 of the
paper at the level of abstraction the paper itself uses: node potentials in
{driven high, driven low, floating} and devices in {ok, open, resistive}.

* a **normal write** drives one bitline to VCC and the other to true GND;
  the high storage node is charged through the access transistor, so even a
  cell with an *open pull-up PMOS* flips -- it just cannot retain the value
  (a data-retention fault, detectable only after a long pause);
* a **No-Write-Recovery Cycle (NWRC)** leaves the high-side bitline at
  *floating* GND, so the pull-up PMOS is the only path that can raise the
  node: a good cell flips, an open-pull-up cell fails immediately, and a
  resistive (weak) pull-up fails within the cycle -- making both defect
  classes observable by the very next read with zero pause time.

The functional fault models (:class:`repro.faults.DataRetentionFault`,
:class:`repro.faults.WeakCellDefect`) are behavioural summaries of exactly
these outcomes; the tests cross-validate the two abstraction levels.
"""

from repro.electrical.cell6t import CellNodes, SixTransistorCell
from repro.electrical.column import CellColumn
from repro.electrical.devices import DeviceHealth
from repro.electrical.levels import Level
from repro.electrical.precharge import PrechargeCircuit
from repro.electrical.write_cycle import WriteKind, WriteOutcome, simulate_write

__all__ = [
    "CellColumn",
    "CellNodes",
    "DeviceHealth",
    "Level",
    "PrechargeCircuit",
    "SixTransistorCell",
    "WriteKind",
    "WriteOutcome",
    "simulate_write",
]
