"""Device-health states for the transistors of a 6T cell."""

from __future__ import annotations

import enum


class DeviceHealth(enum.Enum):
    """Manufacturing state of one transistor."""

    OK = "ok"
    #: Fully open (disconnected) device: conducts nothing, ever.
    OPEN = "open"
    #: Resistive device: conducts, but too slowly to win a ratioed fight
    #: within one clock cycle.  Retention is preserved (leakage is slower
    #: still), which is what makes resistive pull-ups *weak cells* rather
    #: than data-retention faults.
    RESISTIVE = "resistive"

    @property
    def conducts(self) -> bool:
        """Whether the device conducts at all."""
        return self is not DeviceHealth.OPEN

    @property
    def conducts_at_speed(self) -> bool:
        """Whether the device can flip a node within one write cycle."""
        return self is DeviceHealth.OK
