"""Closed-form diagnosis-time model for the proposed scheme.

Equations (2)-(4) of the paper, plus a generic cycle counter that maps any
March algorithm onto the scheme's cost model:

* background delivery: ``c`` cycles per element that writes (the pattern is
  broadcast serially to all SPCs at once);
* write operation: 1 cycle (applied in parallel through the SPC);
* read operation: 1 capture cycle + ``c`` PSC shift cycles = ``c + 1``.

March C- under this model costs ``5n + 5c + 5n(c+1)`` and each March CW
extension background adds ``3n + 3c + 2n(c+1)`` -- exactly Eq. (2).
"""

from __future__ import annotations

import math

from repro.baseline.timing import (
    DRF_PAUSE_TOTAL_NS,
    baseline_diagnosis_time_ns,
    baseline_drf_extra_ns,
)
from repro.march.algorithm import MarchAlgorithm
from repro.util.validation import require, require_positive


def proposed_operation_cycles(words: int, bits: int) -> int:
    """Eq. (2) in cycles: March CW under the SPC/PSC cost model.

    ``(5n + 5c + 5n(c+1)) + (3n + 3c + 2n(c+1)) * ceil(log2 c)``

    >>> proposed_operation_cycles(512, 100)
    998440
    """
    require_positive(words, "words")
    require_positive(bits, "bits")
    n, c = words, bits
    backgrounds = math.ceil(math.log2(c)) if c > 1 else 0
    march_c_part = 5 * n + 5 * c + 5 * n * (c + 1)
    extension_part = (3 * n + 3 * c + 2 * n * (c + 1)) * backgrounds
    return march_c_part + extension_part


def proposed_diagnosis_time_ns(words: int, bits: int, period_ns: float) -> float:
    """Eq. (2): ``T_proposed`` in nanoseconds (March CW, no DRF increment).

    >>> proposed_diagnosis_time_ns(512, 100, 10.0)
    9984400.0
    """
    require_positive(period_ns, "period_ns")
    return proposed_operation_cycles(words, bits) * period_ns


def proposed_drf_extra_ns(words: int, bits: int, period_ns: float) -> float:
    """The paper's DRF increment for the proposed scheme: ``(2n + 2c) t``.

    Zero pause time -- the whole point of NWRTM.  (Our executable merge
    costs nothing at all; this is the paper's own, slightly conservative,
    accounting.  See DESIGN.md.)
    """
    require_positive(period_ns, "period_ns")
    return (2 * words + 2 * bits) * period_ns


def proposed_cycles(algorithm: MarchAlgorithm, words: int, bits: int) -> int:
    """Cycle count of running ``algorithm`` on the proposed scheme.

    Generic form of Eq. (2): writes cost 1 cycle, reads cost ``c + 1``,
    and each writing element costs one ``c``-cycle background delivery.
    """
    require_positive(words, "words")
    require(
        algorithm.bits == bits,
        f"algorithm width {algorithm.bits} != controller width {bits}",
    )
    cycles = 0
    for step in algorithm.march_steps:
        element = step.element
        if element.writes_anything:
            cycles += bits  # SPC pattern delivery
        cycles += element.write_count * words
        cycles += element.read_count * words * (bits + 1)
    return cycles


def reduction_factor(
    words: int, bits: int, period_ns: float, iterations: int
) -> float:
    """Eq. (3): ``R = T[7,8] / T_proposed`` without DRF diagnosis.

    >>> round(reduction_factor(512, 100, 10.0, 96), 2)
    84.15
    """
    baseline = baseline_diagnosis_time_ns(words, bits, period_ns, iterations)
    proposed = proposed_diagnosis_time_ns(words, bits, period_ns)
    return baseline / proposed


def reduction_factor_with_drf(
    words: int, bits: int, period_ns: float, iterations: int
) -> float:
    """Eq. (4): the reduction factor with DRF diagnosis included.

    Baseline pays ``8k`` extra sweeps plus 200 ms of retention pauses;
    the proposed scheme pays the paper's ``(2n + 2c) t`` NWRTM increment.

    >>> round(reduction_factor_with_drf(512, 100, 10.0, 96), 1)
    143.4
    """
    baseline = baseline_diagnosis_time_ns(
        words, bits, period_ns, iterations
    ) + baseline_drf_extra_ns(words, bits, period_ns, iterations)
    proposed = proposed_diagnosis_time_ns(
        words, bits, period_ns
    ) + proposed_drf_extra_ns(words, bits, period_ns)
    return baseline / proposed


def drf_pause_budget_ns() -> float:
    """The 200 ms retention-pause budget NWRTM eliminates."""
    return DRF_PAUSE_TOTAL_NS
