"""The fast diagnosis scheme: full cycle-accurate session (Fig. 3).

One :class:`FastDiagnosisScheme` owns the shared BISD controller (data
background generator, address trigger, control generator, comparator
array) and the per-memory SPC/PSC pairs and local address generators.  A
``diagnose()`` call runs the March algorithm over every memory *in
parallel* with the paper's cost model:

* per writing element: one serial background delivery (``c`` cycles,
  broadcast to all SPCs simultaneously);
* per write operation: one cycle (parallel application);
* per read operation: one capture cycle plus ``c`` PSC shift cycles,
  during which every memory idles (or runs reads with data ignored).

The resulting cycle count equals Eq. (2) for March CW by construction and
is verified bit-accurately in the test suite (``bit_accurate=True`` runs
every SPC/PSC shift for real).
"""

from __future__ import annotations

from repro.core.address_gen import LocalAddressGenerator
from repro.core.address_trigger import AddressTrigger
from repro.core.background_gen import DataBackgroundGenerator
from repro.core.comparator import ComparatorArray
from repro.core.control_gen import ControlGenerator
from repro.core.nwrtm import NwrtmController
from repro.core.psc import ParallelToSerialConverter
from repro.core.report import ProposedReport
from repro.core.spc import SerialToParallelConverter
from repro.ecc.code import secded_code
from repro.ecc.observer import EccConfig, EccMemorySummary, EccObserver
from repro.march.algorithm import MarchStep, PauseStep
from repro.march.library import march_cw_nw
from repro.memory.bank import MemoryBank
from repro.util.bitops import bits_to_int, mask
from repro.util.validation import require, require_positive


class FastDiagnosisScheme:
    """The paper's proposed diagnosis architecture over a memory bank.

    Parameters
    ----------
    bank:
        The distributed e-SRAMs under diagnosis (heterogeneous sizes
        welcome; the controller is sized by the largest/widest).
    period_ns:
        Diagnosis clock period (the paper's ``t``; 10 ns in the case study).
    algorithm_factory:
        Maps the controller width to the March algorithm to run.  Defaults
        to March CW with NWRTM merged (the paper's configuration).
    msb_first:
        Serial delivery order.  ``True`` is the paper's design; ``False``
        reproduces the flawed LSB-first delivery of Sec. 3.2, in which
        narrower memories receive the *top* pattern bits while the
        comparator expects the low ones -- the coverage-loss scenario.
    drf_screening:
        Whether the NWRTM wire is routed (Sec. 3.4).
    ecc:
        Optional :class:`repro.ecc.EccConfig`.  When set, every word read
        passes through an on-die SEC-DED decoder *before* the PSC captures
        it, so the comparator -- like a real tester -- only sees
        post-correction data.  Single-bit upsets are silently repaired
        (and logged per cell), multi-bit patterns flow through raw or
        miscorrected per the extended-Hamming rules.
    """

    def __init__(
        self,
        bank: MemoryBank,
        period_ns: float = 10.0,
        algorithm_factory=march_cw_nw,
        msb_first: bool = True,
        drf_screening: bool = True,
        monitor=None,
        ecc: EccConfig | None = None,
    ) -> None:
        require_positive(period_ns, "period_ns")
        self.bank = bank
        self.period_ns = period_ns
        self.algorithm_factory = algorithm_factory
        self.msb_first = msb_first
        #: Optional :class:`repro.core.protocol.ProtocolMonitor` receiving
        #: the controller's event stream (used by validation runs).
        self.monitor = monitor
        self.controller_words = bank.max_words
        self.controller_bits = bank.max_bits
        self.control = ControlGenerator(drf_screening)
        self.nwrtm = NwrtmController(self.control)
        self.trigger = AddressTrigger()
        self.background_gen = DataBackgroundGenerator(self.controller_bits, msb_first)
        self.spcs = {
            m.name: SerialToParallelConverter(m.bits, msb_first) for m in bank
        }
        self.pscs = {m.name: ParallelToSerialConverter(m.bits) for m in bank}
        self.address_gens = {
            m.name: LocalAddressGenerator(m.words, self.controller_words) for m in bank
        }
        self.comparators = {m.name: ComparatorArray(m.name, m.bits) for m in bank}
        self.ecc = ecc
        self._ecc_codes = (
            {m.name: secded_code(m.bits) for m in bank} if ecc else {}
        )
        #: Per-memory decoder bookkeeping for the *current* session; reset
        #: by :meth:`begin_ecc` (empty when no ECC layer is configured).
        self.ecc_observers: dict[str, EccObserver] = {}

    def begin_ecc(self) -> None:
        """Start a session's ECC bookkeeping with fresh observers."""
        self.ecc_observers = {
            name: EccObserver(name, code)
            for name, code in self._ecc_codes.items()
        }

    def ecc_summaries(self) -> dict[str, EccMemorySummary] | None:
        """Freeze the current observers, or ``None`` without ECC."""
        if self.ecc is None:
            return None
        return {
            name: observer.summary()
            for name, observer in self.ecc_observers.items()
        }

    # ------------------------------------------------------------------ #
    # Public API                                                         #
    # ------------------------------------------------------------------ #
    def diagnose(
        self, bit_accurate: bool = False, early_abort: bool = False
    ) -> ProposedReport:
        """Run one full diagnosis session over the bank.

        With ``bit_accurate=True`` every background delivery is actually
        shifted through the SPCs and every response through the PSCs, and
        the reconstructed words are checked against the fast path -- the
        converters' correctness proof, used on small memories in tests.

        ``early_abort=True`` runs the session as a go/no-go production
        *test* instead of a diagnosis: the session stops at the end of the
        first March element by which every memory has failed (a fault-free
        bank still runs to completion).  Localization data is partial; the
        time saved is the test-vs-diagnosis trade-off.
        """
        algorithm = self.algorithm_factory(self.controller_bits)
        require(
            algorithm.bits == self.controller_bits,
            "algorithm must be generated for the controller width",
        )
        for comparator in self.comparators.values():
            comparator.reset()
        self.begin_ecc()
        report = ProposedReport(
            algorithm_name=algorithm.name,
            controller_words=self.controller_words,
            controller_bits=self.controller_bits,
            period_ns=self.period_ns,
            failures={m.name: [] for m in self.bank},
        )

        for step_index, step in enumerate(algorithm.steps):
            if isinstance(step, PauseStep):
                for memory in self.bank:
                    memory.pause(step.duration_ns)
                report.pause_ns += step.duration_ns
                continue
            self._run_element(step, step_index, report, bit_accurate)
            if early_abort and all(
                self.comparators[m.name].failures for m in self.bank
            ):
                report.aborted_early = True
                break

        for memory in self.bank:
            report.failures[memory.name] = list(
                self.comparators[memory.name].failures
            )
        report.nwrc_ops = self.nwrtm.nwrc_ops
        report.deliveries = self.background_gen.deliveries
        report.ecc = self.ecc_summaries()
        if self.monitor is not None:
            self.monitor.on_session_end()
        return report

    def adapted_background(self, memory_name: str, background: int) -> int:
        """The background word memory ``memory_name`` actually receives."""
        return self.spcs[memory_name].expected_pattern(
            background, self.controller_bits
        )

    # ------------------------------------------------------------------ #
    # Element execution                                                  #
    # ------------------------------------------------------------------ #
    def _run_element(
        self,
        step: MarchStep,
        step_index: int,
        report: ProposedReport,
        bit_accurate: bool,
    ) -> None:
        element = step.element
        if element.writes_anything:
            self._deliver_background(step.background, report, bit_accurate)

        self.trigger.fire()
        addresses = element.order.addresses(self.controller_words)
        for step_pos, controller_address in enumerate(addresses):
            for op_index, op in enumerate(element.operations):
                if op.is_read:
                    self._read_op(
                        step, step_index, op_index, controller_address, step_pos,
                        report, bit_accurate,
                    )
                else:
                    self._write_op(
                        step, op, controller_address, report
                    )
        self.trigger.element_done()

    def _deliver_background(
        self, background: int, report: ProposedReport, bit_accurate: bool
    ) -> None:
        """Broadcast one pattern serially to all SPCs (c cycles)."""
        if bit_accurate:
            self.background_gen.deliver(background, self.spcs.values())
            for name, spc in self.spcs.items():
                expected = spc.expected_pattern(background, self.controller_bits)
                require(
                    spc.parallel_out == expected,
                    f"SPC of {name} delivered {spc.parallel_out:#x}, "
                    f"expected {expected:#x}",
                )
        else:
            self.background_gen.cycles += self.controller_bits
            self.background_gen.deliveries += 1
        report.cycles += self.controller_bits
        for memory in self.bank:
            memory.timebase.tick(self.controller_bits)

    def _write_op(self, step, op, controller_address: int, report) -> None:
        """Apply one (parallel) write or NWRC write to every memory."""
        report.cycles += 1
        is_nwrc = op.is_nwrc
        window = self.nwrtm.nwrc_window() if is_nwrc else None
        if window is not None:
            window.__enter__()
            if self.monitor is not None:
                self.monitor.on_nwrtm(True)
        if self.monitor is not None:
            self.monitor.on_write(nwrc=is_nwrc)
        try:
            for memory in self.bank:
                local = self.address_gens[memory.name].local_address(
                    controller_address
                )
                background = self.adapted_background(memory.name, step.background)
                word = op.word_for(background, memory.bits)
                if is_nwrc:
                    memory.nwrc_write(local, word)
                else:
                    memory.write(local, word)
        finally:
            if window is not None:
                window.__exit__(None, None, None)
                if self.monitor is not None:
                    self.monitor.on_nwrtm(False)

    def _read_op(
        self,
        step,
        step_index: int,
        op_index: int,
        controller_address: int,
        step_pos: int,
        report: ProposedReport,
        bit_accurate: bool,
    ) -> None:
        """Capture + serial shift-out of one read across every memory.

        Costs ``1 + c`` cycles: all PSCs shift back in parallel on separate
        return wires, so the schedule is set by the controller width.
        """
        element = step.element
        op = element.operations[op_index]
        report.cycles += 1 + self.controller_bits

        # Capture phase: the read happens with scan_en low; the PSCs latch
        # the responses in parallel.
        observations: dict[str, tuple[int, int, bool]] = {}
        for memory in self.bank:
            generator = self.address_gens[memory.name]
            local = generator.local_address(controller_address)
            observed = memory.read(local)
            wrapped = generator.has_wrapped(step_pos)
            observer = self.ecc_observers.get(memory.name)
            if observer is not None:
                # On-die ECC sits inside the macro: decode (and possibly
                # correct) before the PSC latches the response.
                expected = self.comparators[memory.name].expected_word(
                    element,
                    op_index,
                    step.background & mask(memory.bits),
                    wrapped,
                )
                if observed != expected:
                    observed = observer.observe(local, expected, observed)
            observations[memory.name] = (observed, local, wrapped)
        if self.monitor is not None:
            self.monitor.on_capture()

        # Shift phase: scan_en high, memories idle (or read-ignored) while
        # every PSC serializes back to the controller in parallel.
        self.control.set_scan_en(True)
        if self.monitor is not None:
            self.monitor.on_scan_en(True)
            for _ in range(self.controller_bits):
                self.monitor.on_idle_shift()
        for memory in self.bank:
            observed, local, wrapped = observations[memory.name]
            # The memory's local clock runs through the shift window.
            memory.timebase.tick(self.controller_bits)
            if bit_accurate:
                psc = self.pscs[memory.name]
                bits = psc.serialize(observed)
                reconstructed = bits_to_int(bits)
                require(
                    reconstructed == observed,
                    f"PSC of {memory.name} returned {reconstructed:#x}, "
                    f"captured {observed:#x}",
                )
            else:
                self.pscs[memory.name].captures += 1
                self.pscs[memory.name].cycles += memory.bits

            # Expected value: the *correct* width-adapted background.  With
            # MSB-first delivery this equals what the SPC holds; with the
            # flawed LSB-first delivery it does not, and narrow memories
            # mis-compare -- the Sec. 3.2 coverage-loss scenario.
            correct_background = step.background & mask(memory.bits)
            comparator = self.comparators[memory.name]
            expected = comparator.expected_word(
                element,
                op_index,
                correct_background,
                wrapped,
            )
            comparator.compare(
                observed,
                expected,
                step_index=step_index,
                step_label=step.label or element.notation(),
                op_index=op_index,
                operation=op.notation(),
                local_address=local,
                background=correct_background,
            )
        self.control.set_scan_en(False)
        if self.monitor is not None:
            self.monitor.on_scan_en(False)
