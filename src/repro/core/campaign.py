"""One-call diagnosis campaigns: inject -> diagnose -> repair -> verify.

The examples and CLI all follow the same outer loop; this module is that
loop as a library object, producing a single report with every artefact
(injection ground truth, proposed-scheme session, optional baseline
session, repair outcome, verification verdict).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.baseline.scheme import BaselineReport, HuangJoneScheme
from repro.core.repair import RepairController, RepairResult
from repro.core.report import ProposedReport
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.base import Fault
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.memory.sram import SRAM
from repro.soc.chip import SoCConfig
from repro.util.records import Record
from repro.util.units import format_duration_ns
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.defects import DefectProfile
    from repro.memory.bank import MemoryBank

#: Population sampler: maps ``(bank_index, memory)`` to the faults to
#: inject into that memory.  The default samples a uniform-rate
#: population; scenario workloads plug in spatially-correlated samplers.
PopulationSampler = Callable[[int, SRAM], "list[Fault]"]


@dataclass
class CampaignReport(Record):
    """Everything one campaign produced."""

    soc_name: str
    injected_faults: int
    proposed: ProposedReport | None = None
    baseline: BaselineReport | None = None
    repair: RepairResult | None = None
    verification_passed: bool | None = None
    localization_rate: float = 0.0

    @property
    def reduction_factor(self) -> float | None:
        """Measured baseline/proposed time ratio (None without baseline)."""
        if self.baseline is None or self.proposed is None:
            return None
        return self.baseline.time_ns / self.proposed.time_ns

    def summary_lines(self) -> list[str]:
        """Human-readable campaign summary."""
        lines = [
            f"campaign on {self.soc_name}: {self.injected_faults} faults injected",
        ]
        if self.proposed is not None:
            lines.append(
                f"  proposed : {format_duration_ns(self.proposed.time_ns)}, "
                f"localization {self.localization_rate:.1%}"
            )
        if self.baseline is not None:
            lines.append(
                f"  baseline : {format_duration_ns(self.baseline.time_ns)} "
                f"(k={self.baseline.iterations}, "
                f"{len(self.baseline.missed)} faults missed)"
            )
        if self.reduction_factor is not None:
            lines.append(f"  reduction: {self.reduction_factor:.1f}x")
        if self.repair is not None:
            lines.append(
                f"  repair   : {self.repair.total_repaired_words} words, "
                f"fully repaired: {self.repair.fully_repaired}"
            )
        if self.verification_passed is not None:
            verdict = "PASS" if self.verification_passed else "FAIL"
            lines.append(f"  verify   : {verdict}")
        return lines


class DiagnosisCampaign:
    """Orchestrates a complete campaign over one SoC configuration."""

    def __init__(
        self,
        soc: SoCConfig,
        defect_rate: float = 0.005,
        seed: int = 0,
        spares_per_memory: int = 32,
        backend: str = "reference",
        profile: "DefectProfile | None" = None,
        baseline_bit_accurate: bool = False,
        sampler: PopulationSampler | None = None,
    ) -> None:
        require(0.0 <= defect_rate <= 1.0, "defect_rate must be in [0, 1]")
        self.soc = soc
        self.defect_rate = defect_rate
        self.seed = seed
        self.spares_per_memory = spares_per_memory
        #: Optional population-sampling strategy.  ``None`` keeps the
        #: uniform-rate default; :mod:`repro.scenarios` plugs in
        #: floorplan-driven clustered samplers here.
        self.sampler = sampler
        #: March-simulation backend for the proposed-scheme *and* baseline
        #: sessions: ``reference`` (the classic cell-by-cell path),
        #: ``numpy``/``fast`` (vectorized, bit-identical results),
        #: ``batched`` (same-geometry memories swept as one stacked array
        #: per vector op, bit-identical again) or ``auto``.  See
        #: :mod:`repro.engine.backends` and :mod:`repro.engine.batched`.
        self.backend = backend
        #: Defect-class mix for fault sampling (defaults to the paper's
        #: equal-likelihood profile).
        self.profile = profile
        #: Run the baseline session in bit-accurate serial-replay mode
        #: instead of the closed-form effective mode.  Exact but
        #: ``O(k * n * c)`` -- intended for small geometries.
        self.baseline_bit_accurate = baseline_bit_accurate

    def _default_sampler(self, index: int, memory: SRAM) -> list[Fault]:
        """Uniform-rate population, seeded per bank position."""
        return sample_population(
            memory.geometry,
            self.defect_rate,
            profile=self.profile,
            rng=self.seed + index,
        ).faults

    def faulty_bank(self) -> tuple["MemoryBank", FaultInjector]:
        """Build a fresh bank with this campaign's faults injected.

        Each call materializes new SRAM instances and new fault objects
        (stateful fault models must not be shared between sessions), so
        one campaign can drive independent proposed/baseline banks -- or,
        for multi-session scenario flows, hand the bank out for chained
        diagnose/repair/retest stages.
        """
        bank = self.soc.build_bank()
        sampler = self.sampler or self._default_sampler
        injector = FaultInjector()
        for index, memory in enumerate(bank):
            injector.inject(memory, sampler(index, memory))
        return bank, injector

    # Backwards-compatible private alias (pre-scenario API).
    _faulty_bank = faulty_bank

    def run(
        self,
        include_baseline: bool = True,
        repair: bool = True,
    ) -> CampaignReport:
        """Execute the campaign and return the combined report."""
        bank, injector = self.faulty_bank()
        scheme = FastDiagnosisScheme(bank, period_ns=self.soc.period_ns)
        proposed = self.diagnose_proposed(scheme)
        report = CampaignReport(
            soc_name=self.soc.name,
            injected_faults=injector.total,
            proposed=proposed,
            localization_rate=proposed.localization_rate(injector),
        )

        if include_baseline:
            baseline_bank, baseline_injector = self.faulty_bank()
            report.baseline = self.diagnose_baseline(
                HuangJoneScheme(baseline_bank, period_ns=self.soc.period_ns),
                baseline_injector,
            )

        if repair:
            controller = RepairController(bank, self.spares_per_memory)
            report.repair = controller.apply(proposed)
            report.verification_passed = self.diagnose_proposed(scheme).passed
        return report

    def diagnose_proposed(self, scheme: FastDiagnosisScheme) -> ProposedReport:
        """Run one session through the configured backend.

        ``run_session`` dispatches the ``batched`` backend to the
        fleet-batched stacked sweep and everything else to the per-memory
        fast path or the reference, all bit-identical.
        """
        if self.backend == "reference":
            return scheme.diagnose()
        # Imported lazily: repro.engine imports this module for the fleet
        # scheduler, so a top-level import would be circular.
        from repro.engine.session import run_session

        return run_session(scheme, backend=self.backend)

    def diagnose_baseline(
        self, scheme: HuangJoneScheme, injector: FaultInjector
    ) -> BaselineReport:
        """Run the baseline session through the configured backend."""
        if self.backend == "reference":
            return scheme.diagnose(
                injector, include_drf=True, bit_accurate=self.baseline_bit_accurate
            )
        from repro.engine.baseline_session import run_baseline_session

        return run_baseline_session(
            scheme,
            injector,
            backend=self.backend,
            include_drf=True,
            bit_accurate=self.baseline_bit_accurate,
        )
