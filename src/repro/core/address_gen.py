"""Local address generators with wrap-around for smaller memories.

Each e-SRAM keeps its own address generator (Sec. 3.1, inherited from
[7, 8]) to avoid routing wide address buses.  The shared controller steps
through the address space of the *largest* memory; a smaller memory's
generator wraps around, so the same pattern is applied to its addresses
multiple times.  The comparator must know the memory's size to tolerate the
resulting redundant read-modify-write operations (see
:mod:`repro.core.comparator`).
"""

from __future__ import annotations

from repro.march.element import AddressOrder
from repro.util.validation import require, require_positive


class LocalAddressGenerator:
    """Wrap-around address counter local to one memory."""

    def __init__(self, words: int, controller_words: int) -> None:
        require_positive(words, "words")
        require(
            controller_words >= words,
            "the controller spans at least the largest memory",
        )
        self.words = words
        self.controller_words = controller_words

    @property
    def wraps(self) -> bool:
        """Whether this memory is smaller than the controller's span."""
        return self.controller_words > self.words

    def local_address(self, controller_address: int) -> int:
        """Map one controller step to this memory's address."""
        require(
            0 <= controller_address < self.controller_words,
            f"controller address {controller_address} out of range",
        )
        return controller_address % self.words

    def has_wrapped(self, step_index: int) -> bool:
        """Whether the element sweep has revisited addresses by ``step_index``.

        ``step_index`` counts controller steps *within one March element*
        (0-based).  Any ``words`` consecutive controller addresses cover
        ``words`` distinct local addresses, so the first revisit happens
        exactly at step ``words`` -- in either sweep direction.
        """
        require(step_index >= 0, "step_index must be non-negative")
        return step_index >= self.words

    def sweep(self, order: AddressOrder) -> list[tuple[int, int, bool]]:
        """Full element sweep: (controller address, local address, wrapped)."""
        result = []
        for step, controller_address in enumerate(order.addresses(self.controller_words)):
            result.append(
                (
                    controller_address,
                    self.local_address(controller_address),
                    self.has_wrapped(step),
                )
            )
        return result

    def __repr__(self) -> str:
        return (
            f"LocalAddressGenerator(words={self.words}, "
            f"controller_words={self.controller_words})"
        )
