"""Control generator and the global-wire inventory.

Besides sequencing reads/writes, the control generator is where the
paper's *wire accounting* lives (Sec. 4.3): relative to [7, 8], the
proposed scheme adds exactly **one** global wire -- the PSC ``scan_en`` --
plus the ``NWRTM`` wire when DRF screening is enabled (a capability the
baseline lacks altogether, so the paper counts it separately).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.records import Record


class GlobalWire(enum.Enum):
    """Named global diagnosis wires routed from the controller."""

    CLOCK = "clock"
    RESET = "reset"
    SERIAL_PATTERN = "serial_pattern"  # background delivery (shared bus)
    SERIAL_RESPONSE = "serial_response"  # PSC return stream (one per memory)
    ADDRESS_TRIGGER = "address_trigger"
    CONTROL_BUS = "control_bus"  # read/write enable sequencing
    BISD_DONE = "bisddone"
    SCAN_EN = "scan_en"  # the +1 wire of the proposed scheme
    NWRTM = "nwrtm"  # DRF screening (absent from the baseline)


#: Wires present in the [7, 8] baseline architecture.
BASELINE_WIRES = frozenset(
    {
        GlobalWire.CLOCK,
        GlobalWire.RESET,
        GlobalWire.SERIAL_PATTERN,
        GlobalWire.SERIAL_RESPONSE,
        GlobalWire.ADDRESS_TRIGGER,
        GlobalWire.CONTROL_BUS,
        GlobalWire.BISD_DONE,
    }
)


@dataclass(frozen=True)
class WireInventory(Record):
    """Wire sets for one scheme configuration."""

    wires: frozenset[GlobalWire]

    @property
    def count(self) -> int:
        """Number of distinct global wires."""
        return len(self.wires)

    def extra_over(self, other: "WireInventory") -> set[GlobalWire]:
        """Wires present here but not in ``other``."""
        return set(self.wires - other.wires)


class ControlGenerator:
    """Controller-side sequencing signals plus the wire inventory."""

    def __init__(self, drf_screening: bool = True) -> None:
        self.drf_screening = drf_screening
        self.scan_en = False
        self.nwrtm = False

    def wires(self) -> WireInventory:
        """Global wires the proposed scheme routes."""
        wires = set(BASELINE_WIRES) | {GlobalWire.SCAN_EN}
        if self.drf_screening:
            wires.add(GlobalWire.NWRTM)
        return WireInventory(frozenset(wires))

    @staticmethod
    def baseline_wires() -> WireInventory:
        """Global wires the [7, 8] baseline routes."""
        return WireInventory(BASELINE_WIRES)

    def set_scan_en(self, value: bool) -> None:
        """Drive the PSC scan-enable (the +1 global wire)."""
        self.scan_en = value

    def set_nwrtm(self, value: bool) -> None:
        """Drive the NWRTM precharge-gate signal for all memories."""
        if value and not self.drf_screening:
            raise ValueError("NWRTM is not routed in this configuration")
        self.nwrtm = value

    def __repr__(self) -> str:
        return (
            f"ControlGenerator(scan_en={self.scan_en}, nwrtm={self.nwrtm}, "
            f"drf_screening={self.drf_screening})"
        )
