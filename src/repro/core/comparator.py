"""Comparator array with wrap-around-tolerant expected values.

The controller compares every serialized response bit by bit against the
expected value (Sec. 3.1).  For memories smaller than the controller's
address span, the expected value *changes after the first wrap-around*:
March elements are read-modify-write, so the second visit to a local
address reads the element's final data, not the data the element started
from.  The comparator stores each memory's size (as the paper chooses to)
and switches expectation accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.march.element import MarchElement
from repro.march.simulator import FailureRecord
from repro.util.bitops import mask
from repro.util.validation import require


@dataclass
class ComparatorArray:
    """Per-memory bit-by-bit response comparison."""

    memory_name: str
    memory_bits: int
    failures: list[FailureRecord] = field(default_factory=list)
    comparisons: int = 0

    def expected_word(
        self,
        element: MarchElement,
        op_index: int,
        background: int,
        wrapped: bool,
    ) -> int | None:
        """Expected read data for one op, given wrap state.

        ``background`` must already be width-adapted to this memory.  On a
        wrapped visit the expectation is the element's *final* write data
        (the previous visit's read-modify-write result); a read-only
        element is unaffected by wrap.  Returns None when the operation is
        not a read.
        """
        op = element.operations[op_index]
        if not op.is_read:
            return None
        require(
            0 <= background <= mask(self.memory_bits),
            f"background {background:#x} too wide for {self.memory_bits} bits",
        )
        if wrapped:
            data = None
            for previous in reversed(element.operations[:op_index]):
                if previous.is_write:
                    # A write earlier in *this* visit already refreshed the
                    # word; the read sees that, wrap or no wrap.
                    data = previous.data
                    break
            if data is None:
                final = element.final_data()
                data = final if final is not None else op.data
        else:
            data = op.data
        if data == 1:
            return background
        return background ^ mask(self.memory_bits)

    def compare(
        self,
        observed: int,
        expected: int,
        *,
        step_index: int,
        step_label: str,
        op_index: int,
        operation: str,
        local_address: int,
        background: int,
    ) -> bool:
        """Compare one response; record and return whether it failed."""
        self.comparisons += 1
        if observed == expected:
            return False
        self.failures.append(
            FailureRecord(
                memory_name=self.memory_name,
                step_index=step_index,
                step_label=step_label,
                op_index=op_index,
                operation=operation,
                address=local_address,
                background=background,
                expected=expected,
                observed=observed,
            )
        )
        return True

    def reset(self) -> None:
        """Clear recorded failures (new diagnosis session)."""
        self.failures.clear()
        self.comparisons = 0
