"""Built-in self-repair (BISR) hook: spare allocation from diagnosis.

Figure 1/3 of the paper: "once a defective cell is found, the diagnosis
information ... will be either registered for on-chip repair or scanned out
for off-line analysis".  This module implements the on-chip path at word
granularity: failing addresses are remapped onto each memory's backup
(spare) words, and the faults touching a repaired word are detached from
the access path -- after which a verification re-run must come back clean
(unless the spare pool ran dry or the defect sits in the periphery).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import ProposedReport
from repro.memory.bank import MemoryBank
from repro.memory.spare import SpareBank
from repro.util.records import Record
from repro.util.validation import require


@dataclass
class RepairResult(Record):
    """Outcome of one repair pass."""

    repaired: dict[str, set[int]] = field(default_factory=dict)
    out_of_spares: dict[str, set[int]] = field(default_factory=dict)
    detached_faults: int = 0

    @property
    def fully_repaired(self) -> bool:
        """True when every failing address got a spare."""
        return not any(self.out_of_spares.values())

    @property
    def total_repaired_words(self) -> int:
        """Number of words remapped onto spares."""
        return sum(len(v) for v in self.repaired.values())


class RepairController:
    """Allocates backup-memory spares based on a diagnosis report."""

    def __init__(self, bank: MemoryBank, spares_per_memory: int = 8) -> None:
        require(spares_per_memory >= 0, "spares_per_memory must be >= 0")
        self.bank = bank
        self.spares = {
            m.name: SpareBank(spares_per_memory, m.bits) for m in bank
        }

    def apply(self, report: ProposedReport) -> RepairResult:
        """Remap every failing address onto a spare word where possible.

        Repairing a word detaches all cell faults whose victims *or*
        aggressors live in it (replacing the row breaks bridges too).
        Address-decoder and column faults are peripheral and cannot be
        repaired by word spares; they remain and will fail verification.
        """
        result = RepairResult()
        for memory in self.bank:
            failing = {f.address for f in report.failures.get(memory.name, [])}
            spare_bank = self.spares[memory.name]
            repaired: set[int] = set()
            exhausted: set[int] = set()
            for address in sorted(failing):
                if spare_bank.allocate(address):
                    repaired.add(address)
                else:
                    exhausted.add(address)
            if repaired:
                result.detached_faults += self._detach_word_faults(memory, repaired)
            result.repaired[memory.name] = repaired
            result.out_of_spares[memory.name] = exhausted
        return result

    def _detach_word_faults(self, memory, repaired_words: set[int]) -> int:
        detached = 0
        for fault in memory.cell_faults:
            involved = {cell.word for cell in fault.victims}
            involved.update(cell.word for cell in fault.aggressors)
            if involved & repaired_words:
                memory.remove_cell_fault(fault)
                detached += 1
        return detached

    def spare_usage(self) -> dict[str, tuple[int, int]]:
        """Per-memory (used, total) spare counts."""
        return {
            name: (bank.used, bank.spare_words)
            for name, bank in self.spares.items()
        }
