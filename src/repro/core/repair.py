"""Built-in self-repair (BISR) hook: spare allocation from diagnosis.

Figure 1/3 of the paper: "once a defective cell is found, the diagnosis
information ... will be either registered for on-chip repair or scanned out
for off-line analysis".  This module implements the on-chip path at word
granularity: failing addresses are remapped onto each memory's backup
(spare) words, and the faults touching a repaired word are detached from
the access path -- after which a verification re-run must come back clean
(unless the spare pool ran dry or the defect sits in the periphery).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.redundancy import RedundancyBudget, allocate_redundancy
from repro.core.report import ProposedReport
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef
from repro.memory.spare import SpareBank
from repro.util.records import Record
from repro.util.validation import require


@dataclass
class RepairResult(Record):
    """Outcome of one repair pass."""

    repaired: dict[str, set[int]] = field(default_factory=dict)
    out_of_spares: dict[str, set[int]] = field(default_factory=dict)
    detached_faults: int = 0

    @property
    def fully_repaired(self) -> bool:
        """True when every failing address got a spare."""
        return not any(self.out_of_spares.values())

    @property
    def total_repaired_words(self) -> int:
        """Number of words remapped onto spares."""
        return sum(len(v) for v in self.repaired.values())


class RepairController:
    """Allocates backup-memory spares based on a diagnosis report."""

    def __init__(self, bank: MemoryBank, spares_per_memory: int = 8) -> None:
        require(spares_per_memory >= 0, "spares_per_memory must be >= 0")
        self.bank = bank
        self.spares = {
            m.name: SpareBank(spares_per_memory, m.bits) for m in bank
        }

    def apply(self, report: ProposedReport) -> RepairResult:
        """Remap every failing address onto a spare word where possible.

        Repairing a word detaches the cell faults whose victims *all*
        live in repaired words.  Address-decoder and column faults are
        peripheral and cannot be repaired by word spares; they remain and
        will fail verification.
        """
        result = RepairResult()
        for memory in self.bank:
            failing = {f.address for f in report.failures.get(memory.name, [])}
            spare_bank = self.spares[memory.name]
            repaired: set[int] = set()
            exhausted: set[int] = set()
            for address in sorted(failing):
                if spare_bank.allocate(address):
                    repaired.add(address)
                else:
                    exhausted.add(address)
            if repaired:
                result.detached_faults += self._detach_word_faults(memory, repaired)
            result.repaired[memory.name] = repaired
            result.out_of_spares[memory.name] = exhausted
        return result

    def _detach_word_faults(self, memory, repaired_words: set[int]) -> int:
        # Detach only when *every* victim word has been remapped: a fault
        # with a victim in an unrepaired word still corrupts that word, so
        # detaching it wholesale (as any-involved-word matching would)
        # silently erases live defects and deflates the escape rate.
        # Repairing only an aggressor word is treated conservatively: the
        # remap may break just that coupling edge, but the victim cell
        # stays in the array, so the fault stays attached.
        detached = 0
        for fault in list(memory.cell_faults):
            victim_words = {cell.word for cell in fault.victims}
            if victim_words and victim_words <= repaired_words:
                memory.remove_cell_fault(fault)
                detached += 1
        return detached

    def spare_usage(self) -> dict[str, tuple[int, int]]:
        """Per-memory (used, total) spare counts."""
        return {
            name: (bank.used, bank.spare_words)
            for name, bank in self.spares.items()
        }


@dataclass
class BisrResult(Record):
    """Outcome of one BISR (row/column) allocation pass."""

    #: Spare rows newly committed this pass, per memory.
    new_rows: dict[str, set[int]] = field(default_factory=dict)
    #: Spare columns newly committed this pass, per memory.
    new_cols: dict[str, set[int]] = field(default_factory=dict)
    detached_faults: int = 0

    @property
    def total_new_rows(self) -> int:
        """Spare rows committed across the bank this pass."""
        return sum(len(v) for v in self.new_rows.values())

    @property
    def total_new_cols(self) -> int:
        """Spare columns committed across the bank this pass."""
        return sum(len(v) for v in self.new_cols.values())

    @property
    def total_new_spares(self) -> int:
        """Total spares (rows + columns) committed this pass."""
        return self.total_new_rows + self.total_new_cols


class BisrController:
    """Row/column built-in self-repair driven by diagnosis reports.

    The word-spare :class:`RepairController` models the paper's simple
    backup memory; real macros ship spare *rows and columns*, and
    deciding which failing cells take which is the classical
    repair-allocation problem solved by
    :func:`repro.core.redundancy.allocate_redundancy` (must-repair fixed
    point + exact final-repair with a greedy fallback).  The controller
    keeps each memory's committed allocation across retest rounds,
    re-solving only the *residual* cells each pass with whatever budget
    remains, and detaches a fault once every one of its victim cells is
    covered by a committed row or column.
    """

    def __init__(self, bank: MemoryBank, budget: RedundancyBudget) -> None:
        self.bank = bank
        self.budget = budget
        self.rows: dict[str, set[int]] = {m.name: set() for m in bank}
        self.cols: dict[str, set[int]] = {m.name: set() for m in bank}
        #: Memories that ever presented failing cells to the allocator.
        self.needing: set[str] = set()
        #: Memories whose failure pattern exceeded the remaining budget.
        self.infeasible: set[str] = set()

    def covered(self, memory_name: str, cell: CellRef) -> bool:
        """Whether a committed spare row/column repairs ``cell``."""
        return (
            cell.word in self.rows[memory_name]
            or cell.bit in self.cols[memory_name]
        )

    def apply(self, report: ProposedReport) -> BisrResult:
        """Allocate spares for every memory's uncovered failing cells.

        Cells already covered by committed spares are excluded before
        solving, so repeated passes converge: a pass that commits no new
        spare means the remaining failures are unrepairable (budget
        exhausted or peripheral) and the flow should stop retesting.
        """
        result = BisrResult()
        for memory in self.bank:
            name = memory.name
            result.new_rows[name] = set()
            result.new_cols[name] = set()
            residual = {
                cell
                for cell in report.detected_cells(name)
                if not self.covered(name, cell)
            }
            if not residual:
                continue
            self.needing.add(name)
            remaining_budget = RedundancyBudget(
                self.budget.spare_rows - len(self.rows[name]),
                self.budget.spare_cols - len(self.cols[name]),
            )
            plan = allocate_redundancy(residual, remaining_budget)
            result.new_rows[name] = set(plan.repair_rows)
            result.new_cols[name] = set(plan.repair_cols)
            self.rows[name] |= plan.repair_rows
            self.cols[name] |= plan.repair_cols
            if not plan.feasible:
                self.infeasible.add(name)
            if plan.repair_rows or plan.repair_cols:
                result.detached_faults += self._detach_covered_faults(memory)
        return result

    def _detach_covered_faults(self, memory) -> int:
        # Same conservative rule as the word controller, at cell
        # granularity: a fault leaves the access path only when every
        # victim cell sits in a replaced row or column.
        name = memory.name
        detached = 0
        for fault in list(memory.cell_faults):
            victims = fault.victims
            if victims and all(self.covered(name, cell) for cell in victims):
                memory.remove_cell_fault(fault)
                detached += 1
        return detached

    def repair_yield(self) -> float | None:
        """Fraction of repair-needing memories whose cells are all covered.

        ``None`` when no memory ever needed repair (yield is undefined,
        not perfect, on a clean bank).
        """
        if not self.needing:
            return None
        covered = len(self.needing) - len(self.infeasible & self.needing)
        return covered / len(self.needing)

    def spare_usage(self) -> dict[str, tuple[int, int]]:
        """Per-memory (rows used, columns used) counts."""
        return {
            name: (len(self.rows[name]), len(self.cols[name]))
            for name in self.rows
        }
