"""Data Background Generator: serializes patterns for SPC delivery.

Sized for the *widest* memory in the bank (Sec. 3.1: "the global BISD
controller is designed based on the largest and the widest e-SRAM").  The
paper's key detail is the delivery order: the generator shifts patterns out
MSB-first so that every narrower SPC retains the correct low bits.
"""

from __future__ import annotations

from repro.util.bitops import bit_of, mask
from repro.util.validation import require, require_positive


class DataBackgroundGenerator:
    """Controller-side pattern serializer."""

    def __init__(self, controller_bits: int, msb_first: bool = True) -> None:
        require_positive(controller_bits, "controller_bits")
        self.controller_bits = controller_bits
        self.msb_first = msb_first
        #: Total serial delivery cycles issued (c per delivered pattern).
        self.cycles = 0
        #: Number of patterns delivered (one per writing March element).
        self.deliveries = 0

    def stream(self, pattern: int) -> list[int]:
        """The bit sequence a delivery of ``pattern`` puts on the wire."""
        require(
            0 <= pattern <= mask(self.controller_bits),
            f"pattern {pattern:#x} too wide for {self.controller_bits} bits",
        )
        if self.msb_first:
            order = range(self.controller_bits - 1, -1, -1)
        else:
            order = range(self.controller_bits)
        return [bit_of(pattern, i) for i in order]

    def deliver(self, pattern: int, converters) -> None:
        """Broadcast ``pattern`` serially to every SPC (one shared wire).

        All SPCs shift simultaneously, so one delivery costs
        ``controller_bits`` cycles regardless of how many memories listen.
        """
        bits = self.stream(pattern)
        for bit in bits:
            for converter in converters:
                converter.shift_in(bit)
        self.cycles += len(bits)
        self.deliveries += 1

    def __repr__(self) -> str:
        order = "msb-first" if self.msb_first else "lsb-first"
        return f"DataBackgroundGenerator(bits={self.controller_bits}, {order})"
