"""Parallel-to-Serial Converter (PSC), Sec. 3.3 / Fig. 5 of the paper.

Scan-type flip-flops capture the memory's read data in parallel
(``scan_en = 0``) and then serialize it back to the BISD controller LSB
first (``scan_en = 1``) while the memory sits in an idle -- or
read-with-data-ignored -- mode.  Because the shift path contains only the
PSC's own flops, never memory cells, a defective cell cannot corrupt
another cell's response: no serial fault masking.

The paper's at-speed argument is also modelled: between the read and the
last shift, the memory's write-enable and data inputs must be *held*, so
the WEN decoding and input circuitry still see at-speed transitions.  The
scheme asserts that hold via :meth:`begin_shift`/:meth:`end_shift`.
"""

from __future__ import annotations

from repro.serial.shift_register import ShiftDirection, ShiftRegister
from repro.util.bitops import mask
from repro.util.validation import require, require_positive


class ParallelToSerialConverter:
    """Per-memory PSC built from scan DFFs."""

    def __init__(self, width: int) -> None:
        require_positive(width, "width")
        self.width = width
        self._register = ShiftRegister(width)
        self.scan_en = False
        #: Serial cycles consumed by this PSC.
        self.cycles = 0
        #: Captures performed (one per March read).
        self.captures = 0

    def capture(self, response: int) -> None:
        """Latch the memory's read data in parallel (``scan_en`` low)."""
        require(not self.scan_en, "cannot capture while scan_en is asserted")
        require(0 <= response <= mask(self.width), f"response {response:#x} too wide")
        self._register.load(response)
        self.captures += 1

    def begin_shift(self) -> None:
        """Assert ``scan_en``; the memory enters idle/read-ignored mode."""
        self.scan_en = True

    def shift_out(self) -> int:
        """Emit one bit toward the controller (LSB first)."""
        require(self.scan_en, "assert scan_en before shifting")
        out = self._register.shift(0, ShiftDirection.LEFT)
        self.cycles += 1
        return out

    def end_shift(self) -> None:
        """Deassert ``scan_en``; the memory may resume March operations."""
        self.scan_en = False

    def serialize(self, response: int) -> list[int]:
        """Capture and fully serialize one response (LSB..MSB bit list)."""
        self.capture(response)
        self.begin_shift()
        bits = [self.shift_out() for _ in range(self.width)]
        self.end_shift()
        return bits

    def __repr__(self) -> str:
        return f"ParallelToSerialConverter(width={self.width}, scan_en={self.scan_en})"
