"""Address trigger: the controller-side start pulse for March elements.

The shared controller does not route addresses to the memories; it routes a
single *trigger* that tells every local address generator to run one full
March element (Sec. 3.1: "the controller triggers the local address
generator to conduct a full March element before providing a new test
pattern").  This module is a small bookkeeping model of that handshake,
used for wire counting and sequencing assertions.
"""

from __future__ import annotations

from repro.util.validation import require


class AddressTrigger:
    """One-wire element-start handshake between controller and memories."""

    def __init__(self) -> None:
        self.triggers_issued = 0
        self._element_open = False

    def fire(self) -> None:
        """Start a March element across all local address generators."""
        require(not self._element_open, "previous element still running")
        self._element_open = True
        self.triggers_issued += 1

    def element_done(self) -> None:
        """All local generators completed the element (``bisddone`` edge)."""
        require(self._element_open, "no element in flight")
        self._element_open = False

    @property
    def busy(self) -> bool:
        """Whether an element is currently in flight."""
        return self._element_open

    def __repr__(self) -> str:
        return f"AddressTrigger(issued={self.triggers_issued}, busy={self.busy})"
