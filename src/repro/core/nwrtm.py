"""NWRTM controller: DRF screening without retention pauses (Sec. 3.4).

The No Write Recovery Test Mode needs only a single precharge-gating
control per memory, driven by one global ``NWRTM`` wire.  This module ties
the March-level NWRC operations to that signal and carries the paper's
cost accounting for the DRF increment.
"""

from __future__ import annotations

from repro.core.control_gen import ControlGenerator
from repro.util.validation import require_positive


class NwrtmController:
    """Asserts the NWRTM signal around No-Write-Recovery cycles."""

    def __init__(self, control: ControlGenerator) -> None:
        self.control = control
        #: NWRC write operations issued.
        self.nwrc_ops = 0

    def nwrc_window(self) -> "_NwrcWindow":
        """Context manager asserting NWRTM for the duration of one NWRC."""
        return _NwrcWindow(self)

    def paper_extra_cycles(self, words: int, bits: int) -> int:
        """The paper's DRF increment for the proposed scheme: ``2n + 2c``.

        Eq. (4) charges two extra NWRC elements (2n single-cycle writes)
        plus their two background deliveries (2c).  Our executable merge
        replaces two normal writes instead and costs nothing extra; both
        accountings are reported side by side in the benchmarks.
        """
        require_positive(words, "words")
        require_positive(bits, "bits")
        return 2 * words + 2 * bits


class _NwrcWindow:
    """Scoped NWRTM assertion (one per NWRC write)."""

    def __init__(self, controller: NwrtmController) -> None:
        self._controller = controller

    def __enter__(self) -> "_NwrcWindow":
        self._controller.control.set_nwrtm(True)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._controller.control.set_nwrtm(False)
        if exc_type is None:
            self._controller.nwrc_ops += 1
