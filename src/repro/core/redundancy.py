"""Two-dimensional redundancy allocation (spare rows + spare columns).

The paper's motivation for diagnosis is repair: "locating the faulty cells
such that repair can be done to improve the production yield".  Word-level
spares (:mod:`repro.core.repair`) handle scattered single cells; real
macros ship *row and column* redundancy, and deciding which failing cells
get a spare row vs a spare column is the classical repair-allocation
problem (NP-complete in general, Kuo & Fuchs).

The allocator implements the standard two phases:

1. **must-repair**: a row containing more distinct failing columns than
   the remaining column spares *must* take a spare row (and symmetrically
   for columns) -- iterated to a fixed point;
2. **final-repair**: the sparse residue is solved exactly by
   branch-and-bound over (repair-row vs repair-column) choices per
   remaining failing cell.

Inputs are exactly what the diagnosis session produces: the set of
localized failing cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.geometry import CellRef
from repro.util.records import Record
from repro.util.validation import require


@dataclass(frozen=True)
class RedundancyBudget(Record):
    """Available spare resources for one memory."""

    spare_rows: int
    spare_cols: int

    def __post_init__(self) -> None:
        require(self.spare_rows >= 0, "spare_rows must be >= 0")
        require(self.spare_cols >= 0, "spare_cols must be >= 0")


@dataclass
class RedundancyPlan(Record):
    """Allocation result: which rows/columns to replace."""

    repair_rows: set[int] = field(default_factory=set)
    repair_cols: set[int] = field(default_factory=set)
    feasible: bool = True
    #: Failing cells no allocation could cover (only when infeasible).
    uncovered: set[CellRef] = field(default_factory=set)

    def covers(self, cell: CellRef) -> bool:
        """Whether the plan repairs ``cell``."""
        return cell.word in self.repair_rows or cell.bit in self.repair_cols

    @property
    def spares_used(self) -> tuple[int, int]:
        """(rows, columns) consumed."""
        return len(self.repair_rows), len(self.repair_cols)


def _must_repair(
    cells: set[CellRef], budget: RedundancyBudget
) -> tuple[set[int], set[int], set[CellRef], bool]:
    """Iterate the must-repair rules to a fixed point, one spare at a time."""
    rows: set[int] = set()
    cols: set[int] = set()
    while True:
        remaining = {
            c for c in cells if c.word not in rows and c.bit not in cols
        }
        cols_left = budget.spare_cols - len(cols)
        rows_left = budget.spare_rows - len(rows)

        by_row: dict[int, set[int]] = {}
        by_col: dict[int, set[int]] = {}
        for cell in remaining:
            by_row.setdefault(cell.word, set()).add(cell.bit)
            by_col.setdefault(cell.bit, set()).add(cell.word)

        forced_row = next(
            (row for row, columns in sorted(by_row.items()) if len(columns) > cols_left),
            None,
        )
        if forced_row is not None:
            if rows_left == 0:
                return rows, cols, remaining, False
            rows.add(forced_row)
            continue
        forced_col = next(
            (col for col, words in sorted(by_col.items()) if len(words) > rows_left),
            None,
        )
        if forced_col is not None:
            if cols_left == 0:
                return rows, cols, remaining, False
            cols.add(forced_col)
            continue
        return rows, cols, remaining, True


class _BudgetExhausted(Exception):
    """Raised when branch-and-bound exceeds its node budget."""


def _branch(
    cells: list[CellRef],
    rows: set[int],
    cols: set[int],
    rows_left: int,
    cols_left: int,
    nodes: list[int],
) -> tuple[set[int], set[int]] | None:
    """Exact branch-and-bound over the sparse residue.

    ``nodes`` is a single-element mutable node budget; dense residues
    whose search would blow past it abort via :class:`_BudgetExhausted`
    and the caller falls back to the greedy allocator.
    """
    if nodes[0] <= 0:
        raise _BudgetExhausted
    nodes[0] -= 1
    cells = [c for c in cells if c.word not in rows and c.bit not in cols]
    if not cells:
        return rows, cols
    if rows_left == 0 and cols_left == 0:
        return None
    cell = cells[0]
    if rows_left > 0:
        solution = _branch(
            cells[1:], rows | {cell.word}, cols, rows_left - 1, cols_left, nodes
        )
        if solution is not None:
            return solution
    if cols_left > 0:
        solution = _branch(
            cells[1:], rows, cols | {cell.bit}, rows_left, cols_left - 1, nodes
        )
        if solution is not None:
            return solution
    return None


def _greedy(
    cells: set[CellRef],
    rows: set[int],
    cols: set[int],
    budget: RedundancyBudget,
) -> tuple[set[int], set[int], set[CellRef]]:
    """Largest-cover-first fallback when the exact search is cut off.

    Repeatedly spends whichever single spare (row or column) covers the
    most still-uncovered cells; ties break toward rows, then the lowest
    index, so the result is deterministic.  Returns the extended
    allocation plus the uncovered residue (empty on success).
    """
    rows = set(rows)
    cols = set(cols)
    remaining = {
        c for c in cells if c.word not in rows and c.bit not in cols
    }
    while remaining:
        rows_left = budget.spare_rows - len(rows)
        cols_left = budget.spare_cols - len(cols)
        if rows_left <= 0 and cols_left <= 0:
            break
        by_row: dict[int, int] = {}
        by_col: dict[int, int] = {}
        for cell in remaining:
            by_row[cell.word] = by_row.get(cell.word, 0) + 1
            by_col[cell.bit] = by_col.get(cell.bit, 0) + 1
        best_row = (
            min(by_row, key=lambda r: (-by_row[r], r)) if rows_left > 0 else None
        )
        best_col = (
            min(by_col, key=lambda c: (-by_col[c], c)) if cols_left > 0 else None
        )
        row_gain = by_row[best_row] if best_row is not None else -1
        col_gain = by_col[best_col] if best_col is not None else -1
        if row_gain >= col_gain:
            rows.add(best_row)
            remaining = {c for c in remaining if c.word != best_row}
        else:
            cols.add(best_col)
            remaining = {c for c in remaining if c.bit != best_col}
    return rows, cols, remaining


#: Default node budget for the exact final-repair search.  Far above what
#: the sparse post-must-repair residues of real campaigns need, while
#: bounding the worst case (the problem is NP-complete) to milliseconds.
DEFAULT_BRANCH_NODES = 50_000


def allocate_redundancy(
    failing_cells: set[CellRef] | list[CellRef],
    budget: RedundancyBudget,
    max_nodes: int = DEFAULT_BRANCH_NODES,
) -> RedundancyPlan:
    """Allocate spare rows/columns to cover every failing cell.

    Runs must-repair analysis to a fixed point, then solves the sparse
    residue exactly by branch-and-bound; residues dense enough to exceed
    ``max_nodes`` search nodes fall back to a greedy largest-cover-first
    allocation (which may miss feasible patterns an exhaustive search
    would cover, but never mislabels an infeasible one as covered).
    Returns an infeasible plan (with the uncovered residue) when no
    allocation within budget covers the failure pattern.
    """
    cells = set(failing_cells)
    if not cells:
        return RedundancyPlan()

    rows, cols, remaining, ok = _must_repair(cells, budget)
    if not ok:
        return RedundancyPlan(
            repair_rows=rows, repair_cols=cols, feasible=False, uncovered=remaining
        )
    try:
        solution = _branch(
            sorted(remaining),
            rows,
            cols,
            budget.spare_rows - len(rows),
            budget.spare_cols - len(cols),
            [max_nodes],
        )
    except _BudgetExhausted:
        greedy_rows, greedy_cols, uncovered = _greedy(remaining, rows, cols, budget)
        if uncovered:
            return RedundancyPlan(
                repair_rows=greedy_rows,
                repair_cols=greedy_cols,
                feasible=False,
                uncovered=uncovered,
            )
        return RedundancyPlan(repair_rows=greedy_rows, repair_cols=greedy_cols)
    if solution is None:
        return RedundancyPlan(
            repair_rows=rows, repair_cols=cols, feasible=False, uncovered=remaining
        )
    final_rows, final_cols = solution
    return RedundancyPlan(repair_rows=final_rows, repair_cols=final_cols)


def unrepaired_must_repair_rows(
    failing_cells: set[CellRef], budget: RedundancyBudget
) -> set[int]:
    """Must-repair rows the given residue leaves without a spare.

    A row whose distinct failing columns outnumber the column-spare
    budget *must* take a spare row; any such row still failing after a
    repair pass is an unrepairable defect under that strategy.  Used to
    compare repair strategies on dense defect patterns.
    """
    by_row: dict[int, set[int]] = {}
    for cell in failing_cells:
        by_row.setdefault(cell.word, set()).add(cell.bit)
    return {
        row
        for row, columns in by_row.items()
        if len(columns) > budget.spare_cols
    }
