"""Diagnosis scan-out: serializing failure records for off-line analysis.

Section 3.1: "once a defective cell is found, the diagnosis information,
e.g., failure addresses, data background, etc., will be either registered
for on-chip repair or scanned out for off-line analysis."  This module
implements the scan path: failure records are packed into fixed-width
frames and shifted out as a bitstream; the off-line side parses the stream
back into records (and typically feeds them to the diagnosis dictionary in
:mod:`repro.analysis.resolution`).

Frame layout (LSB first on the wire), all widths fixed per memory:

====================  ==========================================
field                 width
====================  ==========================================
address               ``geometry.address_bits``
syndrome              ``geometry.bits`` (failing-bit mask)
step index            ``STEP_FIELD_BITS``
op index              ``OP_FIELD_BITS``
====================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.march.simulator import FailureRecord
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.util.bitops import bits_to_int, int_to_bits, mask
from repro.util.records import Record
from repro.util.validation import require

#: Field widths for the frame header (generous for any realistic March).
STEP_FIELD_BITS = 8
OP_FIELD_BITS = 4


@dataclass(frozen=True)
class ScanFrame(Record):
    """One decoded diagnosis frame."""

    address: int
    syndrome: int
    step_index: int
    op_index: int

    def failing_cells(self) -> list[CellRef]:
        """Cells implicated by the frame."""
        return [
            CellRef(self.address, bit)
            for bit in range(self.syndrome.bit_length())
            if (self.syndrome >> bit) & 1
        ]


class DiagnosisScanChain:
    """Packs failure records into a serial bitstream and back."""

    def __init__(self, geometry: MemoryGeometry) -> None:
        self.geometry = geometry

    @property
    def frame_bits(self) -> int:
        """Bits per frame for this memory."""
        return (
            self.geometry.address_bits
            + self.geometry.bits
            + STEP_FIELD_BITS
            + OP_FIELD_BITS
        )

    def encode_frame(self, failure: FailureRecord) -> list[int]:
        """Pack one failure record into a frame (LSB-first bit list)."""
        require(
            failure.step_index < (1 << STEP_FIELD_BITS),
            f"step index {failure.step_index} exceeds the frame field",
        )
        require(
            failure.op_index < (1 << OP_FIELD_BITS),
            f"op index {failure.op_index} exceeds the frame field",
        )
        self.geometry.check_address(failure.address)
        syndrome = failure.syndrome & mask(self.geometry.bits)
        bits: list[int] = []
        bits.extend(int_to_bits(failure.address, self.geometry.address_bits))
        bits.extend(int_to_bits(syndrome, self.geometry.bits))
        bits.extend(int_to_bits(failure.step_index, STEP_FIELD_BITS))
        bits.extend(int_to_bits(failure.op_index, OP_FIELD_BITS))
        return bits

    def encode(self, failures: list[FailureRecord]) -> list[int]:
        """Serialize a full failure list into one bitstream."""
        stream: list[int] = []
        for failure in failures:
            stream.extend(self.encode_frame(failure))
        return stream

    def decode(self, stream: list[int]) -> list[ScanFrame]:
        """Parse a bitstream back into frames."""
        require(
            len(stream) % self.frame_bits == 0,
            f"stream length {len(stream)} is not a multiple of "
            f"{self.frame_bits}-bit frames",
        )
        frames = []
        for start in range(0, len(stream), self.frame_bits):
            chunk = stream[start : start + self.frame_bits]
            cursor = 0

            def take(width: int) -> int:
                nonlocal cursor
                value = bits_to_int(chunk[cursor : cursor + width])
                cursor += width
                return value

            frames.append(
                ScanFrame(
                    address=take(self.geometry.address_bits),
                    syndrome=take(self.geometry.bits),
                    step_index=take(STEP_FIELD_BITS),
                    op_index=take(OP_FIELD_BITS),
                )
            )
        return frames

    def scan_out_cycles(self, failure_count: int) -> int:
        """Shift cycles needed to scan out ``failure_count`` records."""
        require(failure_count >= 0, "failure_count must be non-negative")
        return failure_count * self.frame_bits
