"""Serial-to-Parallel Converter (SPC), Sec. 3.2 / Fig. 4 of the paper.

The controller's Data Background Generator serializes each pattern and
broadcasts it to every memory's SPC.  The *order* of serialization decides
whether heterogeneous widths work:

* **MSB-first** (the paper's design): the stream is ``DP[c-1], ..., DP[0]``
  and each SPC shifts bits in at stage 0, pushing earlier bits up.  A
  narrower SPC of width ``c' < c`` simply lets the ``c - c'`` leading bits
  fall off the far end, retaining exactly ``DP[c'-1:0]`` -- the correct
  pattern for a ``c'``-wide memory.
* **LSB-first** (the flawed alternative the paper analyzes): the narrower
  SPC ends up holding ``DP[c-1:c-c']`` -- the *top* of the pattern -- and
  diagnosis coverage is lost.

Both variants are implemented so the coverage-loss experiment (F4) can
demonstrate the difference.
"""

from __future__ import annotations

from typing import Iterable

from repro.serial.shift_register import ShiftDirection, ShiftRegister
from repro.util.validation import require, require_positive


class SerialToParallelConverter:
    """Per-memory SPC: serial pattern in, parallel pattern out."""

    def __init__(self, width: int, msb_first: bool = True) -> None:
        require_positive(width, "width")
        self.width = width
        self.msb_first = msb_first
        self._register = ShiftRegister(width)
        #: Serial cycles consumed by this SPC.
        self.cycles = 0

    @property
    def parallel_out(self) -> int:
        """The pattern currently presented to the memory's data inputs."""
        return self._register.value

    def shift_in(self, bit: int) -> None:
        """Accept one serial bit from the background generator.

        MSB-first SPCs take new bits at stage 0 (pushing old bits toward
        the MSB end); LSB-first SPCs mirror that.
        """
        direction = ShiftDirection.RIGHT if self.msb_first else ShiftDirection.LEFT
        self._register.shift(bit, direction)
        self.cycles += 1

    def load_stream(self, stream: Iterable[int]) -> None:
        """Shift a complete delivery stream through the converter."""
        for bit in stream:
            self.shift_in(bit)

    def expected_pattern(self, controller_word: int, controller_bits: int) -> int:
        """The pattern this SPC holds after a full delivery of ``controller_word``.

        Closed form of the shift behaviour, used by tests and by the
        comparator's expected-value generator:

        * MSB-first: the low ``width`` bits, ``DP[width-1:0]``;
        * LSB-first: the high bits ``DP[c-1:c-width]``, bit-reversed into
          place by the converter's opposite shift direction.
        """
        require(
            controller_bits >= self.width,
            "controller must be at least as wide as the memory",
        )
        if self.msb_first:
            return controller_word & ((1 << self.width) - 1)
        return controller_word >> (controller_bits - self.width)

    def __repr__(self) -> str:
        order = "msb-first" if self.msb_first else "lsb-first"
        return f"SerialToParallelConverter(width={self.width}, {order})"
