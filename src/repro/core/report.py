"""Diagnosis reports for the proposed scheme.

A report collects every failure the comparator array registered, exposes
the localized cells, and -- given the ground-truth injector -- scores
detection and localization per fault, which is what the evaluation
experiments (E5, E6) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecc.observer import EccMemorySummary
from repro.faults.injector import FaultInjector
from repro.march.simulator import FailureRecord
from repro.memory.geometry import CellRef
from repro.util.records import Record
from repro.util.units import format_duration_ns


@dataclass(frozen=True)
class FaultScore(Record):
    """Ground-truth outcome for one injected fault."""

    memory_name: str
    description: str
    fault_class: str
    detected: bool
    localized: bool


@dataclass
class ProposedReport(Record):
    """Outcome of one proposed-scheme diagnosis session."""

    algorithm_name: str
    controller_words: int
    controller_bits: int
    period_ns: float
    cycles: int = 0
    pause_ns: float = 0.0
    failures: dict[str, list[FailureRecord]] = field(default_factory=dict)
    deliveries: int = 0
    nwrc_ops: int = 0
    #: True when a go/no-go session stopped before running every element.
    aborted_early: bool = False
    #: Per-memory ECC decoder summaries; ``None`` when the session ran
    #: without an on-die ECC layer (failures are then raw observations).
    ecc: dict[str, EccMemorySummary] | None = None

    @property
    def time_ns(self) -> float:
        """Total diagnosis time (cycles x period + pauses)."""
        return self.cycles * self.period_ns + self.pause_ns

    @property
    def total_failures(self) -> int:
        """Mismatching reads across all memories."""
        return sum(len(f) for f in self.failures.values())

    @property
    def passed(self) -> bool:
        """True when no memory produced a mismatch."""
        return self.total_failures == 0

    def ecc_corrected_cells(self, memory_name: str) -> set[CellRef]:
        """Cells the ECC decoder corrected in one memory (empty w/o ECC)."""
        if not self.ecc or memory_name not in self.ecc:
            return set()
        return self.ecc[memory_name].corrected_cellrefs()

    @property
    def ecc_masked_reads(self) -> int:
        """Mismatching reads the ECC layer hid from the comparator."""
        if not self.ecc:
            return 0
        return sum(s.masked_reads for s in self.ecc.values())

    @property
    def ecc_corrected_reads(self) -> int:
        """Reads where the ECC decoder asserted its corrected flag."""
        if not self.ecc:
            return 0
        return sum(s.corrected_reads for s in self.ecc.values())

    @property
    def ecc_uncorrectable_reads(self) -> int:
        """Reads the ECC decoder flagged uncorrectable."""
        if not self.ecc:
            return 0
        return sum(s.uncorrectable_reads for s in self.ecc.values())

    def detected_cells(self, memory_name: str) -> set[CellRef]:
        """Cells implicated by failures in one memory."""
        cells: set[CellRef] = set()
        for failure in self.failures.get(memory_name, []):
            cells.update(failure.failing_cells())
        return cells

    def failing_memories(self) -> list[str]:
        """Names of memories with at least one failure."""
        return sorted(name for name, f in self.failures.items() if f)

    def score_against(self, injector: FaultInjector) -> list[FaultScore]:
        """Score every injected fault: detected? victim localized?

        A fault is *detected* when its memory produced any failure
        involving one of its victim cells, and *localized* under the same
        condition -- the proposed scheme's failure records carry exact
        (address, bit) coordinates, so detection and localization coincide
        (unlike the serial baselines).
        """
        scores = []
        for name in injector.memories():
            reported = self.detected_cells(name)
            for fault in injector.faults_for(name):
                hit = bool(reported & set(fault.victims))
                scores.append(
                    FaultScore(
                        memory_name=name,
                        description=fault.describe(),
                        fault_class=fault.fault_class.value,
                        detected=hit,
                        localized=hit,
                    )
                )
        return scores

    def localization_rate(self, injector: FaultInjector, fault_filter=None) -> float:
        """Fraction of injected faults whose victims were localized."""
        scores = self.score_against(injector)
        if fault_filter is not None:
            scores = [s for s in scores if fault_filter(s)]
        if not scores:
            return 1.0
        return sum(1 for s in scores if s.localized) / len(scores)

    def localized_cells(self, memory_name: str) -> list["LocalizedCell"]:
        """Per-cell localization evidence, strongest first.

        Aggregates the failure records of one memory into one entry per
        implicated cell with the count of failing reads and the first March
        element that exposed it -- the per-cell view repair and off-line
        analysis consume.
        """
        evidence: dict[CellRef, list[FailureRecord]] = {}
        for failure in self.failures.get(memory_name, []):
            for cell in failure.failing_cells():
                evidence.setdefault(cell, []).append(failure)
        cells = [
            LocalizedCell(
                memory_name=memory_name,
                cell=cell,
                failing_reads=len(records),
                first_step=records[0].step_label,
            )
            for cell, records in evidence.items()
        ]
        return sorted(cells, key=lambda c: (-c.failing_reads, c.cell))

    def summary_lines(self) -> list[str]:
        """Human-readable session summary for examples and logs."""
        lines = [
            f"algorithm        : {self.algorithm_name}",
            f"controller       : {self.controller_words} words x "
            f"{self.controller_bits} bits @ {self.period_ns} ns",
            f"cycles           : {self.cycles}",
            f"diagnosis time   : {format_duration_ns(self.time_ns)}",
            f"pattern deliveries: {self.deliveries}",
            f"NWRC operations  : {self.nwrc_ops}",
            f"total failures   : {self.total_failures}",
        ]
        for name in sorted(self.failures):
            cells = self.detected_cells(name)
            lines.append(f"  {name}: {len(self.failures[name])} failing reads, "
                         f"{len(cells)} distinct cells")
        return lines


@dataclass(frozen=True)
class LocalizedCell(Record):
    """One cell pinpointed by diagnosis, with its failing evidence."""

    memory_name: str
    cell: CellRef
    failing_reads: int
    first_step: str
