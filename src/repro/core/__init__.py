"""The paper's contribution: the fast diagnosis scheme (Fig. 3).

A single BISD controller serves many distributed small e-SRAMs:

* patterns are *serially delivered* (MSB first) and *applied in parallel*
  through a per-memory Serial-to-Parallel Converter (SPC, Sec. 3.2);
* responses are captured in parallel and *serially analyzed* through a
  per-memory Parallel-to-Serial Converter (PSC, Sec. 3.3) while the memory
  idles -- no data ever travels through memory cells, so there is no serial
  fault masking and every fault is localizable in a single March run;
* data-retention faults are screened by NWRTM (Sec. 3.4) with zero pause
  time, via the No-Write-Recovery elements merged into March CW;
* a comparator array checks responses bit by bit, tolerating the
  address-wrap-around of smaller memories using stored size information.
"""

from repro.core.address_gen import LocalAddressGenerator
from repro.core.address_trigger import AddressTrigger
from repro.core.background_gen import DataBackgroundGenerator
from repro.core.comparator import ComparatorArray
from repro.core.control_gen import ControlGenerator, GlobalWire
from repro.core.nwrtm import NwrtmController
from repro.core.protocol import ProtocolMonitor, ProtocolViolation
from repro.core.psc import ParallelToSerialConverter
from repro.core.repair import RepairController, RepairResult
from repro.core.report import ProposedReport
from repro.core.scanout import DiagnosisScanChain, ScanFrame
from repro.core.scheme import FastDiagnosisScheme
from repro.core.spc import SerialToParallelConverter
from repro.core.timing import (
    proposed_cycles,
    proposed_diagnosis_time_ns,
    proposed_drf_extra_ns,
    proposed_operation_cycles,
    reduction_factor,
    reduction_factor_with_drf,
)

__all__ = [
    "AddressTrigger",
    "ComparatorArray",
    "ControlGenerator",
    "DataBackgroundGenerator",
    "DiagnosisScanChain",
    "FastDiagnosisScheme",
    "GlobalWire",
    "LocalAddressGenerator",
    "NwrtmController",
    "ParallelToSerialConverter",
    "ProposedReport",
    "ProtocolMonitor",
    "ProtocolViolation",
    "ScanFrame",
    "RepairController",
    "RepairResult",
    "SerialToParallelConverter",
    "proposed_cycles",
    "proposed_diagnosis_time_ns",
    "proposed_drf_extra_ns",
    "proposed_operation_cycles",
    "reduction_factor",
    "reduction_factor_with_drf",
]
