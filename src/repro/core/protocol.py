"""Protocol monitor: the Sec. 3.3 at-speed sequencing rules, checked.

The paper's at-speed argument requires that between a March read and the
last PSC shift, the memory's write-enable and data inputs are *held*: the
only activity is the PSC serialization (with the memory idle or in
read-ignored mode).  The monitor receives the scheme's event stream and
flags any violation:

* a write or NWRC write issued while ``scan_en`` is asserted;
* an NWRC write issued without the NWRTM signal (or vice versa);
* a PSC capture attempted while ``scan_en`` is asserted;
* unbalanced ``scan_en`` windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.records import Record


@dataclass(frozen=True)
class ProtocolViolation(Record):
    """One sequencing-rule violation."""

    rule: str
    detail: str


@dataclass
class ProtocolMonitor:
    """Validates the controller's event stream against the hold rules."""

    violations: list[ProtocolViolation] = field(default_factory=list)
    events: int = 0
    _scan_en: bool = False
    _nwrtm: bool = False

    # ------------------------------------------------------------------ #
    # Event sinks (called by the scheme)                                 #
    # ------------------------------------------------------------------ #
    def on_scan_en(self, asserted: bool) -> None:
        """``scan_en`` edge."""
        self.events += 1
        if asserted and self._scan_en:
            self._flag("scan-en-balance", "scan_en asserted twice")
        if not asserted and not self._scan_en:
            self._flag("scan-en-balance", "scan_en deasserted twice")
        self._scan_en = asserted

    def on_nwrtm(self, asserted: bool) -> None:
        """NWRTM precharge-gate edge."""
        self.events += 1
        self._nwrtm = asserted

    def on_write(self, nwrc: bool) -> None:
        """A write (or NWRC write) cycle issued to the memories."""
        self.events += 1
        if self._scan_en:
            self._flag(
                "hold-during-shift",
                "write issued while the PSC is serializing (scan_en high)",
            )
        if nwrc and not self._nwrtm:
            self._flag("nwrtm-gating", "NWRC write without the NWRTM signal")
        if not nwrc and self._nwrtm:
            self._flag("nwrtm-gating", "normal write with NWRTM asserted")

    def on_capture(self) -> None:
        """A PSC parallel capture."""
        self.events += 1
        if not self._scan_en:
            # Captures happen at the read cycle, before the shift window
            # opens -- nothing to check; kept for event accounting.
            return

    def on_idle_shift(self) -> None:
        """One PSC shift cycle (memory idle / read-ignored)."""
        self.events += 1
        if not self._scan_en:
            self._flag("hold-during-shift", "PSC shift without scan_en")

    def on_session_end(self) -> None:
        """End of a diagnosis session."""
        self.events += 1
        if self._scan_en:
            self._flag("scan-en-balance", "session ended with scan_en high")
        if self._nwrtm:
            self._flag("nwrtm-gating", "session ended with NWRTM asserted")

    # ------------------------------------------------------------------ #
    # Results                                                            #
    # ------------------------------------------------------------------ #
    @property
    def clean(self) -> bool:
        """True when no rule was violated."""
        return not self.violations

    def _flag(self, rule: str, detail: str) -> None:
        self.violations.append(ProtocolViolation(rule, detail))

    def report(self) -> str:
        """Human-readable summary."""
        if self.clean:
            return f"protocol clean ({self.events} events checked)"
        lines = [f"{len(self.violations)} protocol violations:"]
        lines.extend(f"  [{v.rule}] {v.detail}" for v in self.violations)
        return "\n".join(lines)
