"""repro: a reproduction of "A Fast Diagnosis Scheme for Distributed Small
Embedded SRAMs" (Wang, Wu, Ivanov -- DATE 2005).

The package rebuilds the paper's complete system in pure Python:

* behavioural SRAMs with a functional fault universe
  (:mod:`repro.memory`, :mod:`repro.faults`),
* a switch-level 6T cell validating the NWRTM argument
  (:mod:`repro.electrical`),
* March algorithms and a RAMSES-style fault simulator (:mod:`repro.march`),
* the serial-interface baselines of [9, 10] and [7, 8]
  (:mod:`repro.serial`, :mod:`repro.baseline`),
* the proposed SPC/PSC + NWRTM diagnosis scheme (:mod:`repro.core`),
* the Section-4 evaluations (:mod:`repro.analysis`) and SoC context
  (:mod:`repro.soc`).

Quickstart::

    from repro import (
        FastDiagnosisScheme, FaultInjector, MemoryBank, SRAM,
        MemoryGeometry, sample_population,
    )

    memory = SRAM(MemoryGeometry(512, 100, "esram_0"))
    injector = FaultInjector()
    injector.inject(memory, sample_population(memory.geometry, 0.01).faults)
    report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
    print("\n".join(report.summary_lines()))
"""

from repro.baseline import HuangJoneScheme
from repro.core import (
    FastDiagnosisScheme,
    ParallelToSerialConverter,
    ProtocolMonitor,
    RepairController,
    SerialToParallelConverter,
    proposed_diagnosis_time_ns,
    reduction_factor,
    reduction_factor_with_drf,
)
from repro.core.campaign import CampaignReport, DiagnosisCampaign
from repro.core.redundancy import RedundancyBudget, allocate_redundancy
from repro.engine import (
    FleetReport,
    FleetSpec,
    get_backend,
    run_fleet,
    run_session,
)
from repro.faults import (
    DataRetentionFault,
    FaultClass,
    FaultInjector,
    StuckAtFault,
    TransitionFault,
    WeakCellDefect,
    sample_population,
)
from repro.march import (
    MarchSimulator,
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_nw,
)
from repro.memory import MemoryBank, MemoryGeometry, SRAM
from repro.scenarios import ScenarioSpec, run_scenario_fleet
from repro.soc import SoCConfig, case_study_bank, case_study_population

__version__ = "1.2.0"

__all__ = [
    "CampaignReport",
    "FleetReport",
    "FleetSpec",
    "get_backend",
    "run_fleet",
    "run_session",
    "DataRetentionFault",
    "DiagnosisCampaign",
    "FastDiagnosisScheme",
    "FaultClass",
    "FaultInjector",
    "HuangJoneScheme",
    "MarchSimulator",
    "ProtocolMonitor",
    "RedundancyBudget",
    "allocate_redundancy",
    "MemoryBank",
    "MemoryGeometry",
    "ParallelToSerialConverter",
    "RepairController",
    "SRAM",
    "ScenarioSpec",
    "SerialToParallelConverter",
    "SoCConfig",
    "StuckAtFault",
    "TransitionFault",
    "WeakCellDefect",
    "__version__",
    "case_study_bank",
    "case_study_population",
    "march_c_minus",
    "march_c_nw",
    "march_cw",
    "march_cw_nw",
    "proposed_diagnosis_time_ns",
    "reduction_factor",
    "reduction_factor_with_drf",
    "run_scenario_fleet",
]
