"""Area-overhead model (Sec. 4.3 of the paper).

The paper evaluates area as transistor counts normalized to 6T-cell
equivalents: "a D-flip-flop is equivalent to two 6T SRAM cells while a
latch is equivalent to one".  Under that budget:

* the [7, 8] bi-directional serial interface costs one latch + one 4:1 mux
  per IO bit;
* the proposed SPC + PSC pair costs two DFFs + two 2:1 muxes per IO bit
  (one mux selecting normal/test input, one inside each scan DFF);
* the difference is **three 6T cells per bit**, the paper's headline;
* the per-memory total -- interface + local address generator + control
  glue -- lands near the paper's "around 1.8 %" for the 512x100 benchmark
  (the exact figure depends on the mux/flop equivalences; a conservative
  standard-cell budget is provided to bracket it).

Wires: the proposed scheme adds exactly one global wire (PSC ``scan_en``)
over [7, 8], plus the NWRTM wire when DRF screening is enabled -- a
capability the baseline lacks altogether.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.control_gen import ControlGenerator, GlobalWire
from repro.memory.geometry import MemoryGeometry
from repro.util.records import Record
from repro.util.validation import require_positive

#: Transistors in one 6T SRAM cell (the normalization unit).
CELL_TRANSISTORS = 6


@dataclass(frozen=True)
class TransistorBudget(Record):
    """Transistor counts for the primitives of the diagnosis circuitry."""

    dff: int = 12  # two 6T cells -- the paper's equivalence
    latch: int = 6  # one 6T cell
    mux2: int = 6  # transmission-gate 2:1 mux + select inverter
    mux4: int = 12  # tree of 2:1 muxes sharing selects
    gate: int = 4  # generic control gate (NAND/NOR)
    counter_bit: int = 16  # DFF + increment logic per address-counter bit

    @classmethod
    def paper(cls) -> "TransistorBudget":
        """The equivalences stated in Sec. 4.3."""
        return cls()

    @classmethod
    def conservative(cls) -> "TransistorBudget":
        """Standard-cell-library counts (upper bracket for the overhead)."""
        return cls(dff=26, latch=12, mux2=10, mux4=22, gate=4, counter_bit=32)

    def cells(self, transistors: int) -> float:
        """Convert transistors to 6T-cell equivalents."""
        return transistors / CELL_TRANSISTORS


@dataclass(frozen=True)
class AreaBreakdown(Record):
    """Per-memory area numbers for one scheme."""

    scheme: str
    interface_per_bit_transistors: int
    interface_transistors: int
    address_generator_transistors: int
    glue_transistors: int

    @property
    def total_transistors(self) -> int:
        """Everything local to one memory."""
        return (
            self.interface_transistors
            + self.address_generator_transistors
            + self.glue_transistors
        )


class AreaModel:
    """Transistor-count area model for both schemes."""

    def __init__(self, budget: TransistorBudget | None = None) -> None:
        self.budget = budget or TransistorBudget.paper()

    # ------------------------------------------------------------------ #
    # Per-bit interface costs                                            #
    # ------------------------------------------------------------------ #
    def baseline_interface_per_bit(self) -> int:
        """[7, 8]: one latch + one 4:1 mux per IO bit (Fig. 2)."""
        return self.budget.latch + self.budget.mux4

    def proposed_interface_per_bit(self) -> int:
        """SPC DFF + input 2:1 mux, plus PSC scan DFF (DFF + scan mux)."""
        spc = self.budget.dff + self.budget.mux2
        psc = self.budget.dff + self.budget.mux2
        return spc + psc

    def extra_per_bit_cells(self) -> float:
        """The paper's headline: proposed minus baseline, in cell equivalents.

        >>> AreaModel().extra_per_bit_cells()
        3.0
        """
        extra = self.proposed_interface_per_bit() - self.baseline_interface_per_bit()
        return self.budget.cells(extra)

    # ------------------------------------------------------------------ #
    # Per-memory totals                                                  #
    # ------------------------------------------------------------------ #
    def _address_generator(self, geometry: MemoryGeometry) -> int:
        counter_bits = max(1, math.ceil(math.log2(geometry.words)))
        return counter_bits * self.budget.counter_bit

    def breakdown(self, geometry: MemoryGeometry, scheme: str) -> AreaBreakdown:
        """Itemized per-memory diagnosis area for ``scheme``.

        ``scheme`` is ``"baseline"`` or ``"proposed"``.  Glue logic: the
        element trigger latch and done flag for both schemes, plus the
        NWRTM precharge gate for the proposed scheme.
        """
        if scheme == "baseline":
            per_bit = self.baseline_interface_per_bit()
            glue = 2 * self.budget.latch + self.budget.gate
        elif scheme == "proposed":
            per_bit = self.proposed_interface_per_bit()
            glue = 2 * self.budget.latch + 2 * self.budget.gate
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        return AreaBreakdown(
            scheme=scheme,
            interface_per_bit_transistors=per_bit,
            interface_transistors=per_bit * geometry.bits,
            address_generator_transistors=self._address_generator(geometry),
            glue_transistors=glue,
        )

    def overhead_fraction(self, geometry: MemoryGeometry, scheme: str) -> float:
        """Diagnosis-circuitry area as a fraction of the cell-array area.

        >>> round(AreaModel().overhead_fraction(MemoryGeometry(512, 100), "proposed"), 4)
        0.0123
        """
        require_positive(geometry.cells, "geometry.cells")
        breakdown = self.breakdown(geometry, scheme)
        array_transistors = geometry.cells * CELL_TRANSISTORS
        return breakdown.total_transistors / array_transistors


def wire_comparison() -> dict[str, object]:
    """Global-wire inventory: baseline vs proposed (Sec. 4.3).

    >>> wire_comparison()["extra_without_drf"]
    1
    """
    baseline = ControlGenerator.baseline_wires()
    proposed_no_drf = ControlGenerator(drf_screening=False).wires()
    proposed_drf = ControlGenerator(drf_screening=True).wires()
    return {
        "baseline_count": baseline.count,
        "proposed_count": proposed_no_drf.count,
        "proposed_with_nwrtm_count": proposed_drf.count,
        "extra_without_drf": proposed_no_drf.count - baseline.count,
        "extra_wires": sorted(
            w.value for w in proposed_drf.extra_over(baseline)
        ),
        "scan_en_is_the_plus_one": GlobalWire.SCAN_EN
        in proposed_no_drf.extra_over(baseline),
    }
