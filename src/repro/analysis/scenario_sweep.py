"""Scenario sweep matrices: diagnosis quality vs. clustering/transients.

The closed-form model (Eqs. (1)-(4)) has no notion of spatial
correlation or intermittent upsets; the scenario engine does.  This
module sweeps the scenario axes the way :mod:`repro.analysis.simsweep`
sweeps the paper's X1-X3 matrices -- every row runs real multi-session
flows through the fleet scheduler -- and reports how the scenario-level
outcomes (escape rate, retest convergence, measured R under clustering)
move along each axis:

* **S1 -- cluster radius** (:func:`radius_matrix`): from near-point
  defects (tiny radius) to die-wide correlation (radius >> die);
* **S2 -- upset probability** (:func:`upset_matrix`): how hard the
  burn-in stage must look to catch intermittent mechanisms.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.engine.aggregate import FleetReport
from repro.scenarios.runner import run_scenario_fleet
from repro.scenarios.spec import ScenarioSpec
from repro.util.records import Record
from repro.util.validation import require


@dataclass(frozen=True)
class ScenarioSweepPoint(Record):
    """One cell of a scenario matrix: a label plus the fleet to run."""

    matrix: str
    label: str
    spec: ScenarioSpec


@dataclass(frozen=True)
class ScenarioSweepRow(Record):
    """Scenario outcomes of one sweep point."""

    matrix: str
    label: str
    campaigns: int
    total_faults: int
    assigned_rate_mean: float | None
    measured_r_mean: float | None
    escape_rate_mean: float | None
    retest_rounds_mean: float | None
    retest_convergence: float | None
    intermittent_detection_rate: float | None
    elapsed_s: float
    campaigns_per_sec: float

    def to_table_row(self) -> dict[str, object]:
        """Compact rendering for ``repro.util.records.format_table``."""

        def fmt(value: float | None, spec: str = ".1f") -> str:
            return "-" if value is None else format(value, spec)

        return {
            "point": self.label,
            "campaigns": self.campaigns,
            "faults": self.total_faults,
            "rate": fmt(self.assigned_rate_mean, ".4f"),
            "R meas": fmt(self.measured_r_mean),
            "escape": fmt(self.escape_rate_mean, ".3f"),
            "rounds": fmt(self.retest_rounds_mean),
            "converged": fmt(self.retest_convergence, ".2f"),
            "int. det": fmt(self.intermittent_detection_rate, ".2f"),
        }

    def to_json_dict(self) -> dict[str, object]:
        """JSON-friendly rendering (all fields, plain types)."""
        return dict(self.to_dict())


def summarize_scenario_point(
    point: ScenarioSweepPoint, report: FleetReport
) -> ScenarioSweepRow:
    """Fold one scenario fleet report into its sweep row."""

    def mean(stats) -> float | None:
        return stats.mean if stats.count else None

    return ScenarioSweepRow(
        matrix=point.matrix,
        label=point.label,
        campaigns=report.campaigns,
        total_faults=report.total_faults,
        assigned_rate_mean=mean(report.assigned_rate),
        measured_r_mean=mean(report.reduction),
        escape_rate_mean=mean(report.escape_rate),
        retest_rounds_mean=mean(report.retest_rounds),
        retest_convergence=report.retest_convergence,
        intermittent_detection_rate=report.intermittent_detection_rate,
        elapsed_s=report.elapsed_s,
        campaigns_per_sec=report.campaigns_per_sec,
    )


def run_scenario_sweep(
    points: Iterable[ScenarioSweepPoint],
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[ScenarioSweepRow]:
    """Run every sweep point's scenario fleet and summarize it."""
    materialized = list(points)
    rows = []
    for index, point in enumerate(materialized):
        report = run_scenario_fleet(
            point.spec, workers=workers, chunk_size=chunk_size
        )
        rows.append(summarize_scenario_point(point, report))
        if progress is not None:
            progress(index + 1, len(materialized))
    return rows


def radius_matrix(
    radii: Iterable[float], base: ScenarioSpec | None = None, **spec_kwargs
) -> list[ScenarioSweepPoint]:
    """S1: the cluster-radius axis over a common base spec."""
    radii = list(radii)
    require(bool(radii), "radius matrix needs at least one radius")
    base = base or ScenarioSpec(**spec_kwargs)
    return [
        ScenarioSweepPoint(
            matrix="S1-cluster-radius",
            label=f"r={radius:g}",
            spec=dataclasses.replace(base, cluster_radius=radius),
        )
        for radius in radii
    ]


def upset_matrix(
    probabilities: Iterable[float],
    base: ScenarioSpec | None = None,
    **spec_kwargs,
) -> list[ScenarioSweepPoint]:
    """S2: the per-access upset-probability axis over a common base."""
    probabilities = list(probabilities)
    require(bool(probabilities), "upset matrix needs at least one probability")
    base = base or ScenarioSpec(**spec_kwargs)
    return [
        ScenarioSweepPoint(
            matrix="S2-upset-probability",
            label=f"p={probability:g}",
            spec=dataclasses.replace(base, upset_probability=probability),
        )
        for probability in probabilities
    ]
