"""Reusable benchmark measurements behind ``repro bench``.

The benchmark scripts under ``benchmarks/`` are thin wrappers over this
module, so perf numbers are reproducible from the installed CLI without
invoking scripts by path::

    repro bench --quick --json
    repro bench --suite batched-fleet --out BENCH_fault_tables.json

The batched-fleet suite interleaves the compared configurations repeat
by repeat (numpy, batched, numpy, batched, ...) and keeps each side's
best time: slow drifts of a shared machine then hit both sides alike
instead of biasing whichever side happened to run second.  The engine
suite measures each backend's full campaign once (the reference run is
far too slow to repeat) and gates the full-size ratio at
:data:`ENGINE_SPEEDUP_TARGET`.

The headline suite (``batched-fleet``) times the proposed-scheme
diagnosis session of a 256-SRAM mixed-geometry campaign per defect
regime and asserts the reports bit-identical before reporting the
ratio.  All three regimes carry speedup targets: screening (>= 3x, the
amortization win), diagnostic (>= 2.5x, the dense-defect table win) and
heavy-diagnostic (>= 3x since the counter-based intermittent/retention
lowering emptied most of the behavioural replay lane).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.campaign import DiagnosisCampaign
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.fleet import FleetSpec, run_fleet
from repro.engine.session import run_session
from repro.soc.case_study import case_study_soc
from repro.telemetry.core import activate, deactivate
from repro.telemetry.report import TelemetryReport

#: (label, defect rate, batched-vs-numpy speedup target or None).
BATCHED_REGIMES: tuple[tuple[str, float, float | None], ...] = (
    ("screening", 0.0002, 3.0),
    ("diagnostic", 0.001, 2.5),
    ("heavy-diagnostic", 0.005, 3.0),
)

#: Full-run numpy-vs-reference campaign speedup floor (engine suite).
ENGINE_SPEEDUP_TARGET = 5.0

#: Suite names accepted by :func:`run_suites` / ``repro bench``.
SUITES = ("batched-fleet", "engine")


def _timed_session(soc, defect_rate: float, seed: int, backend: str):
    """One freshly-built session timed once (bank build untimed)."""
    campaign = DiagnosisCampaign(
        soc, defect_rate=defect_rate, seed=seed, backend=backend
    )
    bank, _ = campaign.faulty_bank()
    scheme = FastDiagnosisScheme(bank, period_ns=soc.period_ns)
    started = time.perf_counter()
    report = run_session(scheme, backend=backend)
    return time.perf_counter() - started, report


def measure_batched_fleet(
    memories: int = 256,
    repeats: int = 5,
    seed: int = 2026,
    warmup: bool = True,
    telemetry: bool = False,
    collector: "TelemetryReport | None" = None,
) -> dict:
    """Batched-vs-numpy session times per defect regime (interleaved).

    One untimed warmup session per backend precedes the timed repeats of
    each regime, so allocator and import cold-start effects never land in
    a timed region; best-of-``repeats`` suppresses shared-machine spikes.

    With ``telemetry=True`` each regime runs one *additional* batched
    session under an active tracer -- outside the timed loop, so the
    comparison numbers stay uninstrumented -- and its per-lane attribution
    (replay vs table vs clean share of march time and words) lands in the
    regime's row.  ``collector`` (optional) accumulates the raw spans and
    counters across regimes for trace export.
    """
    soc = case_study_soc(memories=memories)
    rows = []
    for label, defect_rate, target in BATCHED_REGIMES:
        best = {"numpy": float("inf"), "batched": float("inf")}
        reports = {}
        if warmup:
            for backend in ("numpy", "batched"):
                _timed_session(soc, defect_rate, seed, backend)
        for _ in range(repeats):
            for backend in ("numpy", "batched"):
                elapsed, reports[backend] = _timed_session(
                    soc, defect_rate, seed, backend
                )
                best[backend] = min(best[backend], elapsed)
        assert (
            reports["numpy"].failures == reports["batched"].failures
        ), f"backends diverged in the {label} regime"
        assert reports["numpy"].cycles == reports["batched"].cycles
        row = {
            "regime": label,
            "defect_rate": defect_rate,
            "gated": target is not None,
            "speedup_target": target,
            "numpy_s": best["numpy"],
            "batched_s": best["batched"],
            "speedup": best["numpy"] / best["batched"],
            "failing_reads": sum(
                len(records)
                for records in reports["numpy"].failures.values()
            ),
            "bit_identical": True,
        }
        if telemetry:
            tracer = activate()
            try:
                with tracer.span("bench.regime", "bench", regime=label):
                    _timed_session(soc, defect_rate, seed, "batched")
            finally:
                deactivate()
            regime_report = TelemetryReport()
            regime_report.merge_tracer(tracer)
            row["lane_attribution"] = regime_report.lane_attribution()
            if collector is not None:
                collector.merge_tracer(tracer)
        rows.append(row)
    return {
        "config": {
            "soc": "case-study",
            "memories": memories,
            "seed": seed,
            "repeats": repeats,
        },
        "rows": rows,
    }


def batched_fleet_gate_failures(results: dict) -> list[str]:
    """Human-readable misses of the per-regime speedup targets."""
    failures = []
    for row in results["rows"]:
        target = row.get("speedup_target")
        if row.get("gated") and target and row["speedup"] < target:
            failures.append(
                f"batched speedup {row['speedup']:.2f}x in the "
                f"{row['regime']} regime is below the {target:.1f}x target"
            )
    return failures


def engine_gate_failures(results: dict) -> list[str]:
    """Human-readable miss of the engine suite's speedup floor."""
    speedup = results["single_campaign"]["speedup"]
    if speedup < ENGINE_SPEEDUP_TARGET:
        return [
            f"numpy backend speedup {speedup:.1f}x is below the "
            f"{ENGINE_SPEEDUP_TARGET:.0f}x target"
        ]
    return []


def measure_engine_throughput(
    memories: int = 64,
    defect_rate: float = 0.005,
    fleet_campaigns: int = 16,
    workers: int | None = None,
    seed: int = 2005,
) -> dict:
    """Reference-vs-numpy campaign speedup plus fleet campaigns/sec.

    Unlike the batched-fleet suite, each backend's full campaign is
    measured once (the reference campaign alone takes tens of seconds at
    full size, so repeats would dominate the suite's runtime).
    """
    if workers is None:
        workers = max(1, (os.cpu_count() or 2) - 1)
    soc = case_study_soc(memories=memories)
    elapsed = {}
    reports = {}
    for backend in ("reference", "numpy"):
        campaign = DiagnosisCampaign(
            soc, defect_rate=defect_rate, seed=seed, backend=backend
        )
        started = time.perf_counter()
        reports[backend] = campaign.run(include_baseline=True, repair=True)
        elapsed[backend] = time.perf_counter() - started

    assert (
        reports["reference"].proposed.failures
        == reports["numpy"].proposed.failures
    ), "backends diverged: failure maps differ"
    assert (
        reports["reference"].localization_rate
        == reports["numpy"].localization_rate
    )
    assert (
        reports["reference"].reduction_factor
        == reports["numpy"].reduction_factor
    )

    spec = FleetSpec(
        soc="case-study",
        memories=memories,
        campaigns=fleet_campaigns,
        defect_rate=defect_rate,
        master_seed=seed,
        backend="numpy",
    )
    fleet_report = run_fleet(spec, workers=workers)
    return {
        "config": {
            "soc": "case-study",
            "memories": memories,
            "defect_rate": defect_rate,
            "seed": seed,
            "fleet_campaigns": fleet_campaigns,
            "fleet_workers": workers,
        },
        "single_campaign": {
            "reference_s": elapsed["reference"],
            "numpy_s": elapsed["numpy"],
            "speedup": elapsed["reference"] / elapsed["numpy"],
            "bit_identical": True,
            "injected_faults": reports["reference"].injected_faults,
            "localization_rate": reports["reference"].localization_rate,
        },
        "fleet": {
            "backend": "numpy",
            "campaigns": fleet_report.campaigns,
            "elapsed_s": fleet_report.elapsed_s,
            "campaigns_per_sec": fleet_report.campaigns_per_sec,
            "mean_reduction_factor": fleet_report.reduction.mean,
            "plan_cache_hit_rate": fleet_report.plan_cache_hit_rate,
        },
    }


def run_suites(
    suites,
    quick: bool = False,
    telemetry: bool = False,
    collector: "TelemetryReport | None" = None,
) -> tuple[dict, list[str]]:
    """Run the selected benchmark suites.

    Returns ``(payload, gate_failures)``; ``gate_failures`` is empty in
    quick mode (small configurations assert parity but are too short to
    gate on throughput).  With ``telemetry=True`` the batched-fleet rows
    gain per-lane attribution and the payload a merged ``telemetry``
    document; pass a :class:`~repro.telemetry.report.TelemetryReport` as
    ``collector`` to additionally keep the raw spans for trace export.
    """
    if telemetry and collector is None:
        collector = TelemetryReport()
    payload: dict = {"quick": quick, "suites": {}}
    failures: list[str] = []
    for suite in suites:
        if suite == "batched-fleet":
            results = (
                measure_batched_fleet(
                    memories=32,
                    repeats=1,
                    warmup=False,
                    telemetry=telemetry,
                    collector=collector,
                )
                if quick
                else measure_batched_fleet(telemetry=telemetry, collector=collector)
            )
            payload["suites"][suite] = results
            if not quick:
                failures.extend(batched_fleet_gate_failures(results))
        elif suite == "engine":
            results = (
                measure_engine_throughput(memories=8, fleet_campaigns=4)
                if quick
                else measure_engine_throughput()
            )
            payload["suites"][suite] = results
            if not quick:
                failures.extend(engine_gate_failures(results))
        else:
            raise ValueError(f"unknown bench suite {suite!r}; known: {SUITES}")
    if telemetry and collector is not None:
        payload["telemetry"] = collector.to_json_dict()
    return payload, failures


# --------------------------------------------------------------------- #
# Performance trajectory                                                 #
# --------------------------------------------------------------------- #
def git_revision(repo_root: "str | os.PathLike | None" = None) -> str | None:
    """The working tree's short commit hash, or ``None`` outside git."""
    import subprocess

    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, ValueError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def trajectory_entry(payload: dict, timestamp: str) -> dict:
    """Reduce one ``run_suites`` payload to a trajectory record.

    ``timestamp`` is passed in (not sampled here) so callers control the
    clock -- the CLI stamps wall time, tests stamp fixed strings.  Records
    the per-regime speedups and, when the run was telemetry-instrumented,
    the heavy-diagnostic replay-lane time share (the number the compiled
    kernel roadmap item is tracked by).  Outside a git checkout (or with
    a broken ``git``) the record degrades to ``git_rev: null`` rather
    than failing the bench run.
    """
    try:
        rev = git_revision()
    except Exception:  # pragma: no cover - belt and braces
        rev = None
    entry: dict = {
        "timestamp": timestamp,
        "git_rev": rev,
        "quick": bool(payload.get("quick")),
        "regimes": {},
    }
    batched = payload.get("suites", {}).get("batched-fleet")
    if batched:
        for row in batched["rows"]:
            regime: dict = {"speedup": row["speedup"]}
            attribution = row.get("lane_attribution")
            if attribution:
                regime["replay_time_share"] = attribution["lanes"]["replay"][
                    "time_share"
                ]
                regime["march_time_s"] = attribution["march_time_s"]
            entry["regimes"][row["regime"]] = regime
    engine = payload.get("suites", {}).get("engine")
    if engine:
        entry["engine_speedup"] = engine["single_campaign"]["speedup"]
    return entry


def append_trajectory(path: "str | os.PathLike", entry: dict) -> list[dict]:
    """Append one record to the append-only trajectory file.

    The file holds a JSON list of entries, oldest first.  A missing file
    starts a new trajectory; an unreadable one raises rather than
    silently truncating history.  Returns the full trajectory.
    """
    target = Path(path)
    if target.exists():
        history = json.loads(target.read_text(encoding="utf-8"))
        if not isinstance(history, list):
            raise ValueError(
                f"trajectory file {target} does not hold a JSON list"
            )
    else:
        history = []
    history.append(entry)
    temporary = target.with_suffix(".tmp")
    temporary.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(temporary, target)
    return history
