"""Repair-yield model: diagnosis quality translated into production yield.

The end of the paper's pipeline: memories whose localized failures fit the
redundancy budget are repairable; the *yield after repair* is the fraction
of sampled memories with a feasible allocation.  Because the baseline
scheme cannot localize data-retention faults, its effective yield is lower
-- undetected DRFs ship as field failures -- which is the economic reading
of the paper's coverage argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.redundancy import RedundancyBudget, allocate_redundancy
from repro.faults.base import M1_LOCALIZABLE_CLASSES
from repro.faults.population import sample_population
from repro.memory.geometry import MemoryGeometry
from repro.util.records import Record
from repro.util.validation import require


@dataclass(frozen=True)
class YieldPoint(Record):
    """Yield estimate for one (defect rate, budget) configuration."""

    defect_rate: float
    spare_rows: int
    spare_cols: int
    samples: int
    repairable: int
    #: Samples whose faults were all localized by the scheme under study
    #: (the proposed scheme localizes everything; the baseline misses DRFs).
    fully_diagnosed: int

    @property
    def repair_yield(self) -> float:
        """Fraction of memories with a feasible spare allocation."""
        return self.repairable / self.samples if self.samples else 0.0

    @property
    def shippable_yield(self) -> float:
        """Repairable *and* fully diagnosed (no latent field failures)."""
        return self.fully_diagnosed / self.samples if self.samples else 0.0


def yield_after_repair(
    geometry: MemoryGeometry,
    defect_rate: float,
    budget: RedundancyBudget,
    seeds,
    scheme: str = "proposed",
) -> YieldPoint:
    """Monte-Carlo yield over seeded populations.

    ``scheme`` selects the diagnosis capability: ``"proposed"`` localizes
    every cell fault (NWRTM included); ``"baseline"`` localizes only the
    M1 classes, so DRF-containing samples are never fully diagnosed and
    their allocation sees only a subset of the real failures.
    """
    require(scheme in ("proposed", "baseline"), f"unknown scheme {scheme!r}")
    repairable = 0
    fully_diagnosed = 0
    samples = 0
    for seed in seeds:
        samples += 1
        population = sample_population(geometry, defect_rate, rng=seed)
        all_cells = {fault.victims[0] for fault in population.faults}
        if scheme == "proposed":
            localized = all_cells
        else:
            localized = {
                fault.victims[0]
                for fault in population.faults
                if fault.fault_class in M1_LOCALIZABLE_CLASSES
            }
        plan = allocate_redundancy(localized, budget)
        # Repair feasibility is judged on what the scheme *saw*; the true
        # repair succeeds only if the unseen faults are also covered.
        truly_repaired = plan.feasible and all(
            plan.covers(cell) for cell in all_cells
        )
        if plan.feasible:
            repairable += 1
        if truly_repaired:
            fully_diagnosed += 1
    return YieldPoint(
        defect_rate=defect_rate,
        spare_rows=budget.spare_rows,
        spare_cols=budget.spare_cols,
        samples=samples,
        repairable=repairable,
        fully_diagnosed=fully_diagnosed,
    )


def yield_curve(
    geometry: MemoryGeometry,
    defect_rates,
    budget: RedundancyBudget,
    seeds,
    scheme: str = "proposed",
) -> list[YieldPoint]:
    """Yield vs defect rate for one budget."""
    return [
        yield_after_repair(geometry, rate, budget, seeds, scheme)
        for rate in defect_rates
    ]
