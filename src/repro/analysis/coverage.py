"""Scheme-level diagnosis-coverage comparison (Sec. 4.1 of the paper).

Section 4.1 argues qualitatively; this module quantifies it.  For every
fault class in the standard suite, both complete schemes run end to end
against single-fault memories:

* the **proposed** scheme (March CW + NWRTM through SPC/PSC),
* the **baseline** [7, 8] (bit-accurate serial DiagRSMarch kernel with
  iterate-repair localization; no DRF capability).

The output table is the paper's coverage claim made measurable: equal
logical coverage, plus DRFs and weak cells only on the proposed side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.scheme import HuangJoneScheme
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.march.coverage import FaultFactory, standard_fault_suite
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import Record


@dataclass
class SchemeCoverageRow(Record):
    """Detection/localization for one fault class under both schemes."""

    label: str
    instances: int
    proposed_detected: int
    proposed_localized: int
    baseline_detected: int
    baseline_localized: int

    def as_percentages(self) -> dict[str, str]:
        """Rendering helper for the benchmark table."""

        def pct(x: int) -> str:
            return f"{100.0 * x / self.instances:5.1f}%" if self.instances else "n/a"

        return {
            "fault class": self.label,
            "proposed det": pct(self.proposed_detected),
            "proposed loc": pct(self.proposed_localized),
            "baseline det": pct(self.baseline_detected),
            "baseline loc": pct(self.baseline_localized),
        }


def _run_proposed(geometry: MemoryGeometry, factory: FaultFactory):
    memory = SRAM(geometry)
    fault = factory()
    fault.attach(memory)
    scheme = FastDiagnosisScheme(MemoryBank([memory]))
    report = scheme.diagnose()
    return fault, report.detected_cells(memory.name)


def _run_baseline(geometry: MemoryGeometry, factory: FaultFactory):
    memory = SRAM(geometry)
    fault = factory()
    injector = FaultInjector()
    injector.inject(memory, fault)
    scheme = HuangJoneScheme(MemoryBank([memory]))
    report = scheme.diagnose(injector, bit_accurate=True, max_iterations=64)
    return fault, report.localized_cells(memory.name)


def compare_scheme_coverage(
    geometry: MemoryGeometry | None = None,
    suite=None,
) -> list[SchemeCoverageRow]:
    """Run both schemes over the standard single-fault suite.

    Uses a small geometry by default (bit-accurate baseline sweeps are
    O(n * c) serial cycles per probe).
    """
    geometry = geometry or MemoryGeometry(8, 4, "cov")
    if suite is None:
        suite = standard_fault_suite(geometry)
    rows = []
    for label, factories in suite:
        row = SchemeCoverageRow(label, len(factories), 0, 0, 0, 0)
        for factory in factories:
            fault, proposed_cells = _run_proposed(geometry, factory)
            if proposed_cells:
                row.proposed_detected += 1
                if proposed_cells & set(fault.victims):
                    row.proposed_localized += 1
            fault_b, baseline_cells = _run_baseline(geometry, factory)
            if baseline_cells:
                row.baseline_detected += 1
                if baseline_cells & set(fault_b.victims):
                    row.baseline_localized += 1
        rows.append(row)
    return rows
