"""Diagnosis resolution: classifying fault types from failure syndromes.

The scheme's failure records (address, bit, March element, operation,
background) are exactly what gets "scanned out for off-line analysis"
(Sec. 3.1).  This module implements that off-line analysis: a dictionary
built from single-fault simulations maps failure *signatures* to candidate
fault classes, giving the diagnosis resolution beyond raw localization.

A signature abstracts a failure set into:

* which (element label, operation) pairs failed,
* the spatial footprint: single cell, single row, single column, or
  scattered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.scheme import FastDiagnosisScheme
from repro.march.coverage import standard_fault_suite
from repro.march.simulator import FailureRecord
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import Record


@dataclass(frozen=True)
class Signature(Record):
    """Canonical failure signature used as the dictionary key."""

    failing_ops: frozenset[tuple[str, str]]
    footprint: str  # "cell" | "row" | "column" | "scattered"

    @classmethod
    def from_failures(cls, failures: Iterable[FailureRecord]) -> "Signature":
        """Abstract a failure list into a signature."""
        failures = list(failures)
        ops = frozenset((f.step_label, f.operation) for f in failures)
        cells = {(f.address, bit) for f in failures for bit in f.failing_bits()}
        addresses = {a for a, _ in cells}
        bits = {b for _, b in cells}
        if len(cells) <= 1:
            footprint = "cell"
        elif len(addresses) == 1:
            footprint = "row"
        elif len(bits) == 1:
            footprint = "column"
        else:
            footprint = "scattered"
        return cls(failing_ops=ops, footprint=footprint)


def _dense_single_cell_suite(geometry: MemoryGeometry):
    """Single-cell fault instances at every column (middle word)."""
    from repro.faults.retention_fault import DataRetentionFault
    from repro.faults.stuck_at import StuckAtFault
    from repro.faults.transition import TransitionFault
    from repro.faults.weak_cell import WeakCellDefect

    word = geometry.words // 2
    cells = [CellRef(word, bit) for bit in range(geometry.bits)]
    return [
        ("SAF0", [lambda c=c: StuckAtFault(c, 0) for c in cells]),
        ("SAF1", [lambda c=c: StuckAtFault(c, 1) for c in cells]),
        ("TF-up", [lambda c=c: TransitionFault(c, True) for c in cells]),
        ("TF-down", [lambda c=c: TransitionFault(c, False) for c in cells]),
        ("DRF0 (cannot hold 0)", [lambda c=c: DataRetentionFault(c, 0) for c in cells]),
        ("DRF1 (cannot hold 1)", [lambda c=c: DataRetentionFault(c, 1) for c in cells]),
        (
            "Weak cell (reliability-only)",
            [lambda c=c, v=v: WeakCellDefect(c, v) for c in cells for v in (0, 1)],
        ),
    ]


class DiagnosisDictionary:
    """Signature -> candidate-fault-class dictionary.

    Built by simulating every fault class of the standard suite at several
    positions through the full proposed scheme, then queried with observed
    failure sets.
    """

    def __init__(self) -> None:
        self._table: dict[Signature, set[str]] = {}
        self._footprint_table: dict[str, set[str]] = {}

    @classmethod
    def build(
        cls, geometry: MemoryGeometry | None = None, dense: bool = True
    ) -> "DiagnosisDictionary":
        """Populate the dictionary from single-fault simulations.

        With ``dense=True`` (the default) the single-cell classes are also
        simulated at *every column*: the March CW stripe backgrounds make
        failure signatures column-dependent, so per-column entries keep
        classification sharp across the whole word.
        """
        geometry = geometry or MemoryGeometry(8, 4, "dict")
        dictionary = cls()
        suite = list(standard_fault_suite(geometry))
        if dense:
            suite.extend(_dense_single_cell_suite(geometry))
        for label, factories in suite:
            for factory in factories:
                memory = SRAM(geometry)
                fault = factory()
                fault.attach(memory)
                scheme = FastDiagnosisScheme(MemoryBank([memory]))
                report = scheme.diagnose()
                failures = report.failures[memory.name]
                if not failures:
                    continue
                signature = Signature.from_failures(failures)
                dictionary._table.setdefault(signature, set()).add(label)
                dictionary._footprint_table.setdefault(
                    signature.footprint, set()
                ).add(label)
        return dictionary

    @property
    def size(self) -> int:
        """Number of distinct signatures learned."""
        return len(self._table)

    def classify(self, failures: Iterable[FailureRecord]) -> set[str]:
        """Candidate fault classes for an observed failure set.

        Falls back to footprint-level candidates for signatures never seen
        during dictionary construction; returns an empty set for a clean
        run.
        """
        failures = list(failures)
        if not failures:
            return set()
        signature = Signature.from_failures(failures)
        if signature in self._table:
            return set(self._table[signature])
        return set(self._footprint_table.get(signature.footprint, set()))

    def resolution_histogram(self) -> dict[int, int]:
        """How many signatures map to 1, 2, ... candidate classes."""
        histogram: dict[int, int] = {}
        for candidates in self._table.values():
            histogram[len(candidates)] = histogram.get(len(candidates), 0) + 1
        return histogram
