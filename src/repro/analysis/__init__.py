"""Evaluation layer: the analyses of Section 4 of the paper.

* :mod:`repro.analysis.timing_model` -- Eqs. (1)-(4), the case-study
  arithmetic, and rounding-sensitivity variants (Sec. 4.2);
* :mod:`repro.analysis.area` -- transistor/cell-equivalent area model and
  the global-wire inventory (Sec. 4.3);
* :mod:`repro.analysis.coverage` -- scheme-level diagnosis-coverage
  comparison over the full fault taxonomy (Sec. 4.1);
* :mod:`repro.analysis.resolution` -- syndrome -> fault-class diagnosis
  dictionary (the "off-line analysis" consumer of scanned-out records);
* :mod:`repro.analysis.sweeps` -- parameter sweeps for the extension
  benchmarks (defect rate, geometry, clock).
"""

from repro.analysis.area import (
    AreaModel,
    TransistorBudget,
    wire_comparison,
)
from repro.analysis.coverage import SchemeCoverageRow, compare_scheme_coverage
from repro.analysis.resolution import DiagnosisDictionary
from repro.analysis.sweeps import (
    sweep_defect_rate,
    sweep_geometry,
    sweep_iterations,
)
from repro.analysis.timing_model import (
    TimingComparison,
    case_study_comparison,
    compare_timing,
    paper_read_cost_variant,
)

__all__ = [
    "AreaModel",
    "DiagnosisDictionary",
    "SchemeCoverageRow",
    "TimingComparison",
    "TransistorBudget",
    "case_study_comparison",
    "compare_scheme_coverage",
    "compare_timing",
    "paper_read_cost_variant",
    "sweep_defect_rate",
    "sweep_geometry",
    "sweep_iterations",
    "wire_comparison",
]
