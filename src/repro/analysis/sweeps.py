"""Analytic-model parameter sweeps for the extension experiments (X1-X3).

Every R in these rows is a **closed-form model prediction**: the fault
count comes from :func:`repro.faults.population.expected_fault_count`, k
from the paper's minimum-iteration arithmetic and the times from
Eqs. (1)-(4) via :func:`repro.analysis.timing_model.compare_timing`.
Nothing here injects faults or runs a diagnosis session.  For the
simulation-backed counterpart -- the same matrices executed as real
campaigns through the fleet scheduler, with the measured R reported next
to these predictions -- see :mod:`repro.analysis.simsweep` and the
``repro sweep`` CLI subcommand.

Every sweep emits plain dict rows so benchmarks can feed them straight to
:func:`repro.util.records.format_table`.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.timing_model import compare_timing
from repro.baseline.diag_rsmarch import min_iterations
from repro.faults.population import expected_fault_count
from repro.memory.geometry import MemoryGeometry
from repro.util.units import format_duration_ns


def sweep_defect_rate(
    rates: Iterable[float],
    geometry: MemoryGeometry | None = None,
    period_ns: float = 10.0,
) -> list[dict[str, object]]:
    """Analytic R vs defect rate ("defect-rate-dependent diagnosis").

    The baseline's k grows linearly with the fault count while the
    proposed scheme's time is constant, so R grows linearly with the
    defect rate.  R here is the model's prediction, not a simulation
    measurement -- cross-check it against
    :func:`repro.analysis.simsweep.defect_rate_matrix`.
    """
    geometry = geometry or MemoryGeometry(512, 100, "case-study")
    rows = []
    for rate in rates:
        faults = expected_fault_count(geometry, rate)
        iterations = max(1, min_iterations(faults))
        row = compare_timing(geometry.words, geometry.bits, period_ns, iterations)
        rows.append(
            {
                "defect rate": f"{rate:.4%}",
                "faults": faults,
                "k": iterations,
                "T[7,8]": format_duration_ns(row.baseline_ns),
                "T_proposed": format_duration_ns(row.proposed_ns),
                "R": f"{row.reduction:.1f}",
                "R (DRF)": f"{row.reduction_with_drf:.1f}",
            }
        )
    return rows


def sweep_geometry(
    shapes: Iterable[tuple[int, int]],
    defect_rate: float = 0.01,
    period_ns: float = 10.0,
) -> list[dict[str, object]]:
    """Analytic R vs memory geometry at a fixed defect rate.

    Model prediction only; the simulated counterpart is
    :func:`repro.analysis.simsweep.geometry_matrix`.
    """
    rows = []
    for words, bits in shapes:
        geometry = MemoryGeometry(words, bits)
        faults = expected_fault_count(geometry, defect_rate)
        iterations = max(1, min_iterations(faults))
        row = compare_timing(words, bits, period_ns, iterations)
        rows.append(
            {
                "n x c": f"{words} x {bits}",
                "faults": faults,
                "k": iterations,
                "T[7,8]": format_duration_ns(row.baseline_ns),
                "T_proposed": format_duration_ns(row.proposed_ns),
                "R": f"{row.reduction:.1f}",
                "R (DRF)": f"{row.reduction_with_drf:.1f}",
            }
        )
    return rows


def sweep_iterations(
    iteration_counts: Iterable[int],
    words: int = 512,
    bits: int = 100,
    period_ns: float = 10.0,
) -> list[dict[str, object]]:
    """Analytic R vs k directly (Eq. (3): R > 1 for any practical k).

    k is swept as a free variable here, bypassing even the fault-count
    model; see :mod:`repro.analysis.simsweep` for k values measured from
    simulated iterate-repair sessions.
    """
    rows = []
    for iterations in iteration_counts:
        row = compare_timing(words, bits, period_ns, iterations)
        rows.append(
            {
                "k": iterations,
                "T[7,8]": format_duration_ns(row.baseline_ns),
                "T_proposed": format_duration_ns(row.proposed_ns),
                "R": f"{row.reduction:.2f}",
                "R (DRF)": f"{row.reduction_with_drf:.2f}",
            }
        )
    return rows
