"""Dependency-free ASCII figures for sweeps and distributions.

The examples and benchmarks print these instead of requiring a plotting
stack; the *shape* of each curve (linear growth of R with defect rate,
flat proposed time, and so on) is readable directly in a terminal or log.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.util.validation import require


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    title: str = "",
    log_y: bool = False,
) -> str:
    """Scatter/line plot of ``ys`` vs ``xs`` on a character grid."""
    require(len(xs) == len(ys), "xs and ys must have equal length")
    require(len(xs) >= 2, "need at least two points")
    require(width >= 10 and height >= 4, "plot area too small")

    values = [math.log10(y) for y in ys] if log_y else list(ys)
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(values), max(values)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, values):
        col = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        grid[row][col] = "*"

    y_top = f"{10 ** y_max:.3g}" if log_y else f"{y_max:.3g}"
    y_bottom = f"{10 ** y_min:.3g}" if log_y else f"{y_min:.3g}"
    label_width = max(len(y_top), len(y_bottom))
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = y_top.rjust(label_width)
        elif index == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_left = f"{x_min:.3g}"
    x_right = f"{x_max:.3g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (label_width + 2) + x_left + " " * max(1, padding) + x_right
    )
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart with one row per label."""
    require(len(labels) == len(values), "labels and values must match")
    require(len(labels) > 0, "need at least one bar")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value:.3g}{unit}"
        )
    return "\n".join(lines)
