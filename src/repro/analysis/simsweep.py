"""Simulation-backed sweep matrices: measured R next to the analytic model.

:mod:`repro.analysis.sweeps` evaluates the paper's closed-form equations --
fast, but every R it prints is a *model prediction*.  This module re-runs
the same X1-X3 parameter matrices as actual diagnosis campaigns through
the fleet scheduler (:mod:`repro.engine.fleet`): every row injects seeded
fault populations, executes the proposed-scheme session (and the baseline
iterate-repair loop) per campaign, and reports the **measured** reduction
factor ``R = T_baseline / T_proposed`` side by side with the analytic
prediction, so model/simulation discrepancies are visible per row.

The three matrices mirror the extension experiments:

* **X1** -- defect rate (:func:`defect_rate_matrix`),
* **X2** -- memory geometry (:func:`geometry_matrix`),
* **X3** -- defect-class mix (:func:`fault_mix_matrix`).

Rows are plain :class:`SimSweepRow` records with ``to_table_row`` /
``to_json_dict`` renderings consumed by the ``repro sweep`` CLI subcommand
and ``benchmarks/bench_simsweep_throughput.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.analysis.timing_model import TimingComparison, compare_timing
from repro.baseline.diag_rsmarch import min_iterations
from repro.engine.aggregate import FleetReport
from repro.engine.fleet import FleetSpec, run_fleet
from repro.faults.defects import DefectType
from repro.faults.population import expected_fault_count
from repro.util.records import Record
from repro.util.validation import require

#: Named defect-class mixes for the X3 matrix, one weight per
#: :class:`~repro.faults.defects.DefectType` in declaration order
#: (node-short, access-open, cell-bridge, pullup-open).
FAULT_MIX_PRESETS: dict[str, tuple[float, float, float, float]] = {
    "paper-equal": (1.0, 1.0, 1.0, 1.0),
    "logical-only": (1.0, 1.0, 1.0, 0.0),
    "stuck-at-heavy": (4.0, 1.0, 1.0, 1.0),
    "retention-heavy": (1.0, 1.0, 1.0, 3.0),
}


@dataclass(frozen=True)
class SimSweepPoint(Record):
    """One cell of a sweep matrix: a label plus the fleet to simulate."""

    matrix: str
    label: str
    spec: FleetSpec


@dataclass(frozen=True)
class SimSweepRow(Record):
    """Measured-vs-analytic outcome of one sweep point."""

    matrix: str
    label: str
    campaigns: int
    total_faults: int
    #: Measured reduction factor over the fleet (None when no campaign
    #: produced a baseline/proposed pair).
    measured_r_mean: float | None
    measured_r_std: float | None
    measured_r_min: float | None
    measured_r_max: float | None
    #: Measured baseline iteration count (k) across campaigns.
    measured_k_mean: float | None
    measured_baseline_ns_mean: float | None
    measured_proposed_ns_mean: float | None
    #: Analytic-model prediction for the same configuration (Eqs. (1)-(4)).
    analytic_k: int
    analytic_r: float
    analytic_r_drf: float
    #: Measured mean divided by the analytic DRF-mode prediction (the
    #: campaign baseline runs with DRF diagnosis on); 1.0 = perfect model.
    model_gap: float | None
    elapsed_s: float
    campaigns_per_sec: float

    def to_table_row(self) -> dict[str, object]:
        """Compact rendering for ``repro.util.records.format_table``."""

        def fmt(value: float | None, spec: str = ".1f") -> str:
            return "-" if value is None else format(value, spec)

        return {
            "point": self.label,
            "campaigns": self.campaigns,
            "faults": self.total_faults,
            "k meas": fmt(self.measured_k_mean),
            "k model": self.analytic_k,
            "R meas": fmt(self.measured_r_mean),
            "+/-": fmt(self.measured_r_std),
            "R model": f"{self.analytic_r:.1f}",
            "R model (DRF)": f"{self.analytic_r_drf:.1f}",
            "meas/model": fmt(self.model_gap, ".3f"),
        }

    def to_json_dict(self) -> dict[str, object]:
        """JSON-friendly rendering (all fields, plain types)."""
        return dict(self.to_dict())


def _profile_shares(
    weights: tuple[float, float, float, float] | None,
) -> tuple[float, float]:
    """``(logical_share, retention_share)`` of a defect-weight vector."""
    if weights is None:
        weights = (1.0, 1.0, 1.0, 1.0)
    total = sum(weights)
    retention = weights[list(DefectType).index(DefectType.PULLUP_OPEN)]
    return (total - retention) / total, retention / total


def analytic_comparison(spec: FleetSpec) -> tuple[int, TimingComparison]:
    """The closed-form model's prediction for one fleet configuration.

    Mirrors the arithmetic of :mod:`repro.analysis.sweeps` generalized to
    a bank: the controller is sized by the largest memory, and k is the
    worst memory's ``ceil(F * share / 2)`` -- where the share is the
    profile's M1-localizable fraction (DRF diagnosis localizes retention
    faults in parallel, so with DRF mode on the binding share is the
    larger of the logical and retention fractions).
    """
    soc = spec.build_soc()
    words = max(g.words for g in soc.geometries)
    bits = max(g.bits for g in soc.geometries)
    logical, retention = _profile_shares(spec.defect_weights)
    share = max(logical, retention)
    iterations = max(
        (
            min_iterations(
                expected_fault_count(g, spec.defect_rate), kernel_share=share
            )
            for g in soc.geometries
        ),
        default=0,
    )
    iterations = max(1, iterations)
    return iterations, compare_timing(words, bits, spec.period_ns, iterations)


def summarize_point(point: SimSweepPoint, report: FleetReport) -> SimSweepRow:
    """Fold one fleet report and its analytic prediction into a row."""
    analytic_k, timing = analytic_comparison(point.spec)
    reduction = report.reduction
    measured_mean = reduction.mean if reduction.count else None
    return SimSweepRow(
        matrix=point.matrix,
        label=point.label,
        campaigns=report.campaigns,
        total_faults=report.total_faults,
        measured_r_mean=measured_mean,
        measured_r_std=reduction.std if reduction.count else None,
        measured_r_min=reduction.minimum if reduction.count else None,
        measured_r_max=reduction.maximum if reduction.count else None,
        measured_k_mean=(
            report.baseline_iterations.mean
            if report.baseline_iterations.count
            else None
        ),
        measured_baseline_ns_mean=(
            report.baseline_time_ns.mean if report.baseline_time_ns.count else None
        ),
        measured_proposed_ns_mean=(
            report.proposed_time_ns.mean if report.proposed_time_ns.count else None
        ),
        analytic_k=analytic_k,
        analytic_r=timing.reduction,
        analytic_r_drf=timing.reduction_with_drf,
        model_gap=(
            measured_mean / timing.reduction_with_drf
            if measured_mean is not None
            else None
        ),
        elapsed_s=report.elapsed_s,
        campaigns_per_sec=report.campaigns_per_sec,
    )


def run_sim_sweep(
    points: Iterable[SimSweepPoint],
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[SimSweepRow]:
    """Simulate every sweep point and return its measured-vs-analytic row.

    ``progress`` (optional) is called with ``(done_points, total_points)``
    after each point's fleet completes.
    """
    materialized = list(points)
    rows = []
    for index, point in enumerate(materialized):
        report = run_fleet(point.spec, workers=workers, chunk_size=chunk_size)
        rows.append(summarize_point(point, report))
        if progress is not None:
            progress(index + 1, len(materialized))
    return rows


def _base_spec(defect_rate: float, **spec_kwargs) -> FleetSpec:
    """A sweep-friendly fleet spec: baseline on, repair/verify off."""
    spec_kwargs.setdefault("campaigns", 4)
    spec_kwargs.setdefault("memories", 4)
    spec_kwargs.setdefault("repair", False)
    return FleetSpec(
        defect_rate=defect_rate, include_baseline=True, **spec_kwargs
    )


def defect_rate_matrix(
    rates: Iterable[float], **spec_kwargs
) -> list[SimSweepPoint]:
    """X1: the defect-rate axis (the paper's Fig.-style R-vs-rate sweep)."""
    rates = list(rates)
    require(bool(rates), "defect-rate matrix needs at least one rate")
    return [
        SimSweepPoint(
            matrix="X1-defect-rate",
            label=f"{rate:.4%}",
            spec=_base_spec(rate, **spec_kwargs),
        )
        for rate in rates
    ]


def geometry_matrix(
    shapes: Iterable[tuple[int, int]],
    defect_rate: float = 0.01,
    **spec_kwargs,
) -> list[SimSweepPoint]:
    """X2: the memory-geometry axis (uniform ``words x bits`` fleets)."""
    shapes = [tuple(shape) for shape in shapes]
    require(bool(shapes), "geometry matrix needs at least one shape")
    return [
        SimSweepPoint(
            matrix="X2-geometry",
            label=f"{words}x{bits}",
            spec=_base_spec(defect_rate, geometry=(words, bits), **spec_kwargs),
        )
        for words, bits in shapes
    ]


def fault_mix_matrix(
    mixes: Mapping[str, tuple[float, float, float, float]] | None = None,
    defect_rate: float = 0.01,
    **spec_kwargs,
) -> list[SimSweepPoint]:
    """X3: the defect-class-mix axis (named weight presets)."""
    mixes = dict(mixes) if mixes is not None else dict(FAULT_MIX_PRESETS)
    require(bool(mixes), "fault-mix matrix needs at least one mix")
    return [
        SimSweepPoint(
            matrix="X3-fault-mix",
            label=label,
            spec=_base_spec(defect_rate, defect_weights=weights, **spec_kwargs),
        )
        for label, weights in mixes.items()
    ]
