"""Closed-form timing comparison: Eqs. (1)-(4) side by side (Sec. 4.2).

The paper's headline numbers for the [16] case study (n = 512, c = 100,
t = 10 ns, 1 % defects -> 256 faults -> k = 96):

* R >= 84 without DRF diagnosis (Eq. (3)),
* R >= 145 with DRF diagnosis (Eq. (4)).

Evaluating the paper's own equations literally gives 84.15 and 143.4; the
remaining ~1 % gap to "145" disappears if reads are charged ``c`` instead
of ``c + 1`` cycles (the :func:`paper_read_cost_variant`), so we report
both and record the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baseline.diag_rsmarch import min_iterations
from repro.baseline.timing import baseline_diagnosis_time_ns, baseline_drf_extra_ns
from repro.core.timing import (
    proposed_diagnosis_time_ns,
    proposed_drf_extra_ns,
)
from repro.util.records import Record
from repro.util.units import format_duration_ns
from repro.util.validation import require_positive


@dataclass(frozen=True)
class TimingComparison(Record):
    """One row of the diagnosis-time comparison."""

    words: int
    bits: int
    period_ns: float
    iterations: int
    baseline_ns: float
    proposed_ns: float
    baseline_drf_ns: float
    proposed_drf_ns: float

    @property
    def reduction(self) -> float:
        """Eq. (3): R without DRF diagnosis."""
        return self.baseline_ns / self.proposed_ns

    @property
    def reduction_with_drf(self) -> float:
        """Eq. (4): R with DRF diagnosis."""
        return self.baseline_drf_ns / self.proposed_drf_ns

    def pretty(self) -> str:
        """Multi-line human-readable rendering."""
        return "\n".join(
            [
                f"n={self.words} c={self.bits} t={self.period_ns} ns k={self.iterations}",
                f"  T[7,8]            = {format_duration_ns(self.baseline_ns)}",
                f"  T_proposed        = {format_duration_ns(self.proposed_ns)}",
                f"  R (no DRF)        = {self.reduction:.2f}",
                f"  T[7,8] + DRF      = {format_duration_ns(self.baseline_drf_ns)}",
                f"  T_proposed + NWRTM= {format_duration_ns(self.proposed_drf_ns)}",
                f"  R (with DRF)      = {self.reduction_with_drf:.2f}",
            ]
        )


def compare_timing(
    words: int, bits: int, period_ns: float, iterations: int
) -> TimingComparison:
    """Evaluate all four equations for one configuration."""
    baseline = baseline_diagnosis_time_ns(words, bits, period_ns, iterations)
    proposed = proposed_diagnosis_time_ns(words, bits, period_ns)
    return TimingComparison(
        words=words,
        bits=bits,
        period_ns=period_ns,
        iterations=iterations,
        baseline_ns=baseline,
        proposed_ns=proposed,
        baseline_drf_ns=baseline
        + baseline_drf_extra_ns(words, bits, period_ns, iterations),
        proposed_drf_ns=proposed + proposed_drf_extra_ns(words, bits, period_ns),
    )


def case_study_comparison(
    words: int = 512,
    bits: int = 100,
    period_ns: float = 10.0,
    fault_count: int = 256,
) -> TimingComparison:
    """The Sec. 4.2 case study with the paper's own k arithmetic.

    >>> row = case_study_comparison()
    >>> row.iterations
    96
    >>> round(row.reduction, 2)
    84.15
    >>> round(row.reduction_with_drf, 1)
    143.4
    """
    iterations = min_iterations(fault_count)
    return compare_timing(words, bits, period_ns, iterations)


def paper_read_cost_variant(
    words: int, bits: int, period_ns: float, iterations: int
) -> TimingComparison:
    """Eq. (2) with reads charged ``c`` cycles instead of ``c + 1``.

    This is the rounding the paper most plausibly applied to land on
    "R >= 145"; with it the case study yields R = 84.98 / 144.8.
    """
    require_positive(period_ns, "period_ns")
    n, c = words, bits
    backgrounds = math.ceil(math.log2(c)) if c > 1 else 0
    march_c_part = 5 * n + 5 * c + 5 * n * c
    extension_part = (3 * n + 3 * c + 2 * n * c) * backgrounds
    proposed = (march_c_part + extension_part) * period_ns
    baseline = baseline_diagnosis_time_ns(words, bits, period_ns, iterations)
    return TimingComparison(
        words=words,
        bits=bits,
        period_ns=period_ns,
        iterations=iterations,
        baseline_ns=baseline,
        proposed_ns=proposed,
        baseline_drf_ns=baseline
        + baseline_drf_extra_ns(words, bits, period_ns, iterations),
        proposed_drf_ns=proposed + proposed_drf_extra_ns(words, bits, period_ns),
    )
