"""Monte-Carlo experiments over seeded fault populations.

The paper's case study uses the *expected* defect-class mix (exactly 75 %
M1-localizable -> k = 96).  Real populations fluctuate; these experiments
quantify how tightly the emergent quantities concentrate around the
paper's arithmetic:

* the distribution of the baseline's emergent iteration count k,
* the distribution of the reduction factor R,
* the proposed scheme's localization rate (always 1.0 for populations
  drawn from the four defect classes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.scheme import HuangJoneScheme
from repro.baseline.timing import baseline_diagnosis_time_ns
from repro.core.timing import proposed_diagnosis_time_ns
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.records import Record
from repro.util.validation import require


@dataclass(frozen=True)
class Distribution(Record):
    """Summary statistics of one Monte-Carlo quantity."""

    samples: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values) -> "Distribution":
        """Summarize a sequence of numbers."""
        array = np.asarray(list(values), dtype=float)
        require(array.size > 0, "need at least one sample")
        return cls(
            samples=int(array.size),
            mean=float(array.mean()),
            std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
            minimum=float(array.min()),
            maximum=float(array.max()),
        )


def emergent_k_distribution(
    seeds: range | list[int],
    geometry: MemoryGeometry | None = None,
    defect_rate: float = 0.01,
) -> Distribution:
    """Distribution of the baseline's emergent iteration count.

    Each seed samples a fresh fault population, runs the effective-mode
    iterate-repair loop, and records the iterations needed.
    """
    geometry = geometry or MemoryGeometry(512, 100, "mc")
    iterations = []
    for seed in seeds:
        memory = SRAM(geometry)
        injector = FaultInjector()
        injector.inject(memory, sample_population(geometry, defect_rate, rng=seed).faults)
        report = HuangJoneScheme(MemoryBank([memory])).diagnose(injector)
        iterations.append(report.iterations)
    return Distribution.of(iterations)


def reduction_distribution(
    seeds: range | list[int],
    geometry: MemoryGeometry | None = None,
    defect_rate: float = 0.01,
    period_ns: float = 10.0,
) -> Distribution:
    """Distribution of the no-DRF reduction factor over sampled populations."""
    geometry = geometry or MemoryGeometry(512, 100, "mc")
    proposed_ns = proposed_diagnosis_time_ns(geometry.words, geometry.bits, period_ns)
    reductions = []
    for seed in seeds:
        memory = SRAM(geometry)
        injector = FaultInjector()
        injector.inject(memory, sample_population(geometry, defect_rate, rng=seed).faults)
        report = HuangJoneScheme(MemoryBank([memory])).diagnose(injector)
        baseline_ns = baseline_diagnosis_time_ns(
            geometry.words, geometry.bits, period_ns, report.iterations
        )
        reductions.append(baseline_ns / proposed_ns)
    return Distribution.of(reductions)
