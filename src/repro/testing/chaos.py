"""Deterministic chaos harness: seeded crashes, exceptions, hangs and
checkpoint corruption.

Chaos testing is only trustworthy when a failing scenario can be
replayed exactly, so every injection decision here is a pure function
of ``(chaos seed, chunk, attempt)`` through the repo's counter-based
splitmix64 discipline (:func:`repro.util.rng.mix_seed`) -- no
wall-clock entropy, no process-dependent state.  Running the same
:class:`ChaosSpec` against the same fleet kills the same workers at
the same chunks, every time, on every machine.

The central piece is :class:`ChaosChunkRunner`: a picklable wrapper
around any chunk runner (:func:`repro.engine.fleet.run_chunk` by
default) that consults the spec before delegating.  Faults are keyed
on the chunk's *first campaign index* -- stable across worker counts
and completion order -- and on the attempt number published by the
supervisor (:func:`repro.engine.supervisor.current_attempt`), so a
chunk that crashes on attempt 0 can deterministically succeed on its
retry.  With ``max_faults_per_chunk`` at its default of 1, a chaos run
under a retry policy with at least two attempts always completes, and
-- because chunks are pure functions of ``(spec, indices)`` -- its
:meth:`~repro.engine.aggregate.FleetReport.deterministic_dict` is
byte-identical to the undisturbed run's.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.engine.fleet import run_chunk
from repro.engine.supervisor import current_attempt
from repro.util.records import Record
from repro.util.rng import mix_seed
from repro.util.validation import require, require_in_range

__all__ = [
    "CHAOS_CRASH_EXIT_CODE",
    "ChaosChunkRunner",
    "ChaosError",
    "ChaosSpec",
    "corrupt_checkpoint_chunks",
    "parse_chaos_spec",
]

#: Exit code of an injected worker crash -- distinctive enough that a
#: genuine interpreter death (0, 1, signals) is never mistaken for one.
CHAOS_CRASH_EXIT_CODE = 113

#: Domain-separation labels for the chaos draw streams ("FALT"/"CORR").
_FAULT_LABEL = 0x46414C54
_CORRUPT_LABEL = 0x434F5252


class ChaosError(RuntimeError):
    """The exception kind raised by injected chunk failures."""


@dataclass(frozen=True)
class ChaosSpec(Record):
    """Seeded fault-injection plan for one fleet run.

    One uniform draw per ``(chunk, attempt)`` is partitioned into
    ``crash`` / ``exception`` / ``hang`` bands (in that order), so the
    three rates must sum to at most 1.  ``corrupt_rate`` drives the
    separate :func:`corrupt_checkpoint_chunks` stream.  A chunk stops
    faulting once it has faulted ``max_faults_per_chunk`` times, which
    bounds the attempts any chunk needs to ``max_faults_per_chunk + 1``.
    """

    seed: int = 0
    crash_rate: float = 0.0
    exception_rate: float = 0.0
    hang_rate: float = 0.0
    #: Injected hang duration; pair with a ``chunk_timeout_s`` well
    #: below it so the supervisor's deadline, not the sleep, ends it.
    hang_s: float = 3600.0
    corrupt_rate: float = 0.0
    max_faults_per_chunk: int = 1

    def __post_init__(self) -> None:
        require_in_range(self.crash_rate, 0.0, 1.0, "crash_rate")
        require_in_range(self.exception_rate, 0.0, 1.0, "exception_rate")
        require_in_range(self.hang_rate, 0.0, 1.0, "hang_rate")
        require_in_range(self.corrupt_rate, 0.0, 1.0, "corrupt_rate")
        require(
            self.crash_rate + self.exception_rate + self.hang_rate <= 1.0,
            "crash_rate + exception_rate + hang_rate must be <= 1",
        )
        require(self.hang_s > 0.0, "hang_s must be > 0")
        require(
            self.max_faults_per_chunk >= 0,
            "max_faults_per_chunk must be >= 0",
        )

    def _uniform(self, label: int, *path: int) -> float:
        return (mix_seed(self.seed, label, *path) >> 11) / float(1 << 53)

    def fault_for(self, chunk_key: int, attempt: int) -> str | None:
        """The fault injected into attempt ``attempt`` of a chunk.

        ``chunk_key`` is any stable chunk identity (the wrapper uses the
        first campaign index).  Returns ``"crash"``, ``"exception"``,
        ``"hang"`` or ``None``.
        """
        if attempt >= self.max_faults_per_chunk:
            return None
        unit = self._uniform(_FAULT_LABEL, chunk_key, attempt)
        if unit < self.crash_rate:
            return "crash"
        if unit < self.crash_rate + self.exception_rate:
            return "exception"
        if unit < self.crash_rate + self.exception_rate + self.hang_rate:
            return "hang"
        return None

    def corrupts_chunk(self, chunk_index: int) -> bool:
        """Whether the corruption stream selects this checkpoint chunk."""
        return self._uniform(_CORRUPT_LABEL, chunk_index) < self.corrupt_rate


def _first_index(indices) -> int:
    return int(indices[0]) if len(indices) else 0


@dataclass(frozen=True)
class ChaosChunkRunner:
    """Picklable chunk runner injecting the spec's faults, then delegating.

    Frozen-dataclass wrapper (pickles by field values plus the inner
    runner's module reference) so it rides through both fork and spawn
    worker start methods unchanged.
    """

    chaos: ChaosSpec
    inner: Callable = field(default=run_chunk)

    def __call__(self, spec, indices):
        fault = self.chaos.fault_for(_first_index(indices), current_attempt())
        if fault == "crash":
            # A hard death -- no exception, no atexit, no pipe message --
            # exactly like a segfault or an OOM kill.
            os._exit(CHAOS_CRASH_EXIT_CODE)
        if fault == "exception":
            raise ChaosError(
                f"injected failure in chunk starting at campaign "
                f"{_first_index(indices)} (attempt {current_attempt()})"
            )
        if fault == "hang":
            time.sleep(self.chaos.hang_s)
        return self.inner(spec, indices)


def corrupt_checkpoint_chunks(root, chaos: ChaosSpec) -> list[int]:
    """Deterministically damage the store's selected chunk files.

    For every persisted ``chunk_*.json`` that the spec's corruption
    stream selects, one byte (position drawn from the same stream) is
    XOR-flipped in place -- enough to break the JSON or trip the
    recorded checksum/digest, never enough to masquerade as a different
    valid chunk.  Returns the corrupted chunk indices.
    """
    corrupted = []
    for path in sorted(Path(root).glob("chunk_*.json")):
        index = int(path.stem.split("_")[1])
        if not chaos.corrupts_chunk(index):
            continue
        data = bytearray(path.read_bytes())
        position = mix_seed(chaos.seed, _CORRUPT_LABEL, index, 1) % len(data)
        # ^0x01 keeps the byte ASCII, so the damage is always a parse or
        # checksum failure rather than an undecodable file.
        data[position] ^= 0x01
        path.write_bytes(bytes(data))
        corrupted.append(index)
    return corrupted


#: ``--chaos`` key → ChaosSpec field (CLI spelling is the short form).
_CHAOS_KEYS = {
    "seed": ("seed", int),
    "crash": ("crash_rate", float),
    "exception": ("exception_rate", float),
    "hang": ("hang_rate", float),
    "hang_s": ("hang_s", float),
    "corrupt": ("corrupt_rate", float),
    "max_faults": ("max_faults_per_chunk", int),
}


def parse_chaos_spec(text: str) -> ChaosSpec:
    """Parse a CLI ``--chaos`` value like ``seed=7,crash=0.5,corrupt=0.3``."""
    kwargs = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        key, separator, value = token.partition("=")
        key = key.strip().replace("-", "_")
        if not separator or key not in _CHAOS_KEYS:
            known = ", ".join(sorted(_CHAOS_KEYS))
            raise ValueError(
                f"bad --chaos token {token!r}: expected key=value with "
                f"key one of {known}"
            )
        name, cast = _CHAOS_KEYS[key]
        try:
            kwargs[name] = cast(value.strip())
        except ValueError as error:
            raise ValueError(
                f"bad --chaos value for {key!r}: {error}"
            ) from error
    return ChaosSpec(**kwargs)
