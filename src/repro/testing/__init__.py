"""Deterministic fault-injection tooling for exercising the fleet's
fault-tolerant execution layer.

Everything here is *test infrastructure shipped as library code*: the
chaos harness must be importable by worker processes (a chunk runner
has to pickle by module reference) and by the CI chaos-smoke job, so it
lives in the package rather than under ``tests/``.
"""

from repro.testing.chaos import (
    CHAOS_CRASH_EXIT_CODE,
    ChaosChunkRunner,
    ChaosError,
    ChaosSpec,
    corrupt_checkpoint_chunks,
    parse_chaos_spec,
)

__all__ = [
    "CHAOS_CRASH_EXIT_CODE",
    "ChaosChunkRunner",
    "ChaosError",
    "ChaosSpec",
    "corrupt_checkpoint_chunks",
    "parse_chaos_spec",
]
