"""Tests for the generic March serializer (the [9, 10] execution mode)."""

import pytest

from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.march.algorithm import PauseStep
from repro.march.library import (
    march_c_minus,
    march_c_nw,
    march_with_retention_pauses,
    mats_plus,
)
from repro.march.serializer import SerialMarchRunner, serialize_algorithm
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM

GEOMETRY = MemoryGeometry(8, 8, "ser")


class TestSerialization:
    def test_sweep_count_matches_elements(self):
        sweeps = serialize_algorithm(march_c_minus(8))
        assert len(sweeps) == 6

    def test_patterns_follow_final_writes(self):
        sweeps = serialize_algorithm(march_c_minus(8))
        # M0 w0 -> zeros; M1 (r0,w1) -> ones; read-only M5 rewrites zeros.
        assert sweeps[0].pattern == 0x00
        assert sweeps[1].pattern == 0xFF
        assert sweeps[5].pattern == 0x00

    def test_expected_streams(self):
        sweeps = serialize_algorithm(march_c_minus(8))
        assert sweeps[0].expected is None  # pure write
        assert sweeps[1].expected == 0x00  # r0
        assert sweeps[2].expected == 0xFF  # r1

    def test_descending_elements_marked(self):
        sweeps = serialize_algorithm(march_c_minus(8))
        assert sweeps[3].ascending is False

    def test_nwrc_degradation_flagged(self):
        sweeps = serialize_algorithm(march_c_nw(8))
        assert any(getattr(s, "degraded_nwrc", False) for s in sweeps)

    def test_pauses_preserved(self):
        sweeps = serialize_algorithm(march_with_retention_pauses(8))
        assert sum(1 for s in sweeps if isinstance(s, PauseStep)) == 2


class TestSerialExecution:
    def test_fault_free_memory_passes(self):
        memory = SRAM(GEOMETRY)
        result = SerialMarchRunner(memory).run(march_c_minus(8))
        assert result.passed
        assert result.cycles == 6 * 8 * 8  # six sweeps x n x c

    def test_saf_detected(self):
        memory = SRAM(GEOMETRY)
        StuckAtFault(CellRef(3, 5), 1).attach(memory)
        result = SerialMarchRunner(memory).run(march_c_minus(8))
        assert not result.passed
        assert 3 in result.failing_addresses()

    def test_single_fault_attributed_correctly(self):
        """With one fault per word the naive attribution is exact."""
        memory = SRAM(GEOMETRY)
        StuckAtFault(CellRef(3, 5), 1).attach(memory)
        result = SerialMarchRunner(memory).run(march_c_minus(8))
        attributed = {m.attributed_bit for m in result.mismatches if m.address == 3}
        assert 5 in attributed

    def test_drf_escapes_serialized_nwrtm(self):
        """Serial baselines have no NWRTM gate: NWRC degrades, DRF escapes."""
        memory = SRAM(GEOMETRY)
        DataRetentionFault(CellRef(2, 2), 1).attach(memory)
        result = SerialMarchRunner(memory).run(march_c_nw(8))
        assert result.nwrc_degraded
        assert result.passed  # the whole point: the baseline cannot see it

    def test_drf_caught_with_real_pauses(self):
        memory = SRAM(GEOMETRY)
        DataRetentionFault(CellRef(2, 2), 1).attach(memory)
        result = SerialMarchRunner(memory).run(march_with_retention_pauses(8))
        assert not result.passed
        assert result.pause_ns == 200e6

    def test_width_mismatch_rejected(self):
        memory = SRAM(GEOMETRY)
        with pytest.raises(ValueError):
            SerialMarchRunner(memory).run(mats_plus(4))
