"""Static March-condition analysis, cross-validated against simulation.

For every algorithm in the library, the static verdicts (SAF/TF/AF
coverage) must agree with exhaustive single-fault simulation -- two
independent implementations of the same theory.
"""

import pytest

from repro.faults.address_fault import AddressRemapFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.march.conditions import analyze
from repro.march.element import AddressOrder
from repro.march.library import (
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_nw,
    march_ss,
    march_x,
    march_y,
    mats_plus,
    mats_plus_plus,
)
from repro.march.simulator import MarchSimulator
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM

ALL_ALGORITHMS = [
    mats_plus,
    mats_plus_plus,
    march_x,
    march_y,
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_nw,
    march_ss,
]

GEOMETRY = MemoryGeometry(8, 4, "cond")


def _simulated_detects(factory, fault_builder) -> bool:
    """Whether simulation detects the fault at every probe position."""
    simulator = MarchSimulator()
    positions = [CellRef(0, 0), CellRef(3, 2), CellRef(7, 3)]
    for cell in positions:
        memory = SRAM(GEOMETRY)
        fault_builder(cell).attach(memory)
        if simulator.run(memory, factory(GEOMETRY.bits)).passed:
            return False
    return True


class TestKnownVerdicts:
    def test_mats_plus(self):
        properties = analyze(mats_plus(4))
        assert properties.detects_saf
        assert properties.detects_af
        assert properties.detects_tf_up
        assert not properties.detects_tf_down  # the classical MATS+ gap

    def test_mats_plus_plus_closes_tf_down(self):
        assert analyze(mats_plus_plus(4)).detects_tf_down

    def test_march_c_minus_full_basic_coverage(self):
        properties = analyze(march_c_minus(4))
        assert properties.detects_saf
        assert properties.detects_tf_up and properties.detects_tf_down
        assert properties.detects_af

    def test_nwrtm_merge_preserves_static_properties(self):
        base = analyze(march_c_minus(4))
        merged = analyze(march_c_nw(4))
        assert merged.detects_saf == base.detects_saf
        assert merged.detects_tf_up == base.detects_tf_up
        assert merged.detects_tf_down == base.detects_tf_down
        assert merged.detects_af == base.detects_af


class TestInitialStateAssumption:
    def test_unknown_start_denies_first_element_credit(self):
        """Under the hardware-conservative assumption, an algorithm that
        relies on the power-on value loses its transition credit."""
        from repro.march.algorithm import MarchAlgorithm, MarchStep
        from repro.march.element import MarchElement
        from repro.march.ops import r1, w0, w1

        algorithm = MarchAlgorithm(
            "no-init",
            4,
            [
                MarchStep(
                    MarchElement(AddressOrder.UP, (w1(), r1())), 0b1111, "E0"
                ),
                MarchStep(MarchElement(AddressOrder.UP, (w0(),)), 0b1111, "E1"),
            ],
        )
        assert analyze(algorithm, initial_state=0).detects_tf_up
        assert not analyze(algorithm, initial_state=None).detects_tf_up

    def test_library_algorithms_insensitive_to_assumption(self):
        """Real Marches initialize first, so both assumptions agree."""
        for factory in ALL_ALGORITHMS:
            cleared = analyze(factory(4), initial_state=0)
            unknown = analyze(factory(4), initial_state=None)
            assert cleared.detects_saf == unknown.detects_saf
            assert cleared.detects_tf_up == unknown.detects_tf_up
            assert cleared.detects_tf_down == unknown.detects_tf_down
            assert cleared.detects_af == unknown.detects_af


class TestCrossValidation:
    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_saf_static_equals_dynamic(self, factory):
        static = analyze(factory(GEOMETRY.bits)).detects_saf
        dynamic = _simulated_detects(
            factory, lambda c: StuckAtFault(c, 0)
        ) and _simulated_detects(factory, lambda c: StuckAtFault(c, 1))
        assert static == dynamic, factory(GEOMETRY.bits).name

    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_tf_up_static_equals_dynamic(self, factory):
        static = analyze(factory(GEOMETRY.bits)).detects_tf_up
        dynamic = _simulated_detects(factory, lambda c: TransitionFault(c, True))
        assert static == dynamic, factory(GEOMETRY.bits).name

    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_tf_down_static_equals_dynamic(self, factory):
        static = analyze(factory(GEOMETRY.bits)).detects_tf_down
        dynamic = _simulated_detects(factory, lambda c: TransitionFault(c, False))
        assert static == dynamic, factory(GEOMETRY.bits).name

    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_af_static_implies_dynamic(self, factory):
        """Static AF coverage must be confirmed by remap-fault simulation.

        (The static condition is sufficient, not necessary, so only the
        positive direction is asserted.)
        """
        if analyze(factory(GEOMETRY.bits)).detects_af:
            assert _simulated_detects(
                factory, lambda c: AddressRemapFault(c.word, (c.word + 1) % 8, 4)
            ), factory(GEOMETRY.bits).name
