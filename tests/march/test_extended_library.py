"""Tests for the extended algorithm library and dynamic-fault coverage.

The headline differentiation: the deceptive read-destructive fault (DRDF)
escapes every single-read March -- including the paper's March CW-NW --
and is caught by March SS's double reads.
"""

import pytest

from repro.faults.dynamic import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
    WriteDisturbFault,
)
from repro.march.complexity import operation_counts
from repro.march.library import (
    march_c_minus,
    march_cw_nw,
    march_ss,
    march_x,
    march_y,
    mats_plus_plus,
)
from repro.march.simulator import MarchSimulator
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM

GEOMETRY = MemoryGeometry(16, 4, "ext")


def _detects(factory, fault) -> bool:
    memory = SRAM(GEOMETRY)
    fault.attach(memory)
    return not MarchSimulator().run(memory, factory(GEOMETRY.bits)).passed


class TestComplexities:
    def test_mats_plus_plus_6n(self):
        assert operation_counts(mats_plus_plus(4), 10).operations == 60

    def test_march_x_6n(self):
        assert operation_counts(march_x(4), 10).operations == 60

    def test_march_y_8n(self):
        assert operation_counts(march_y(4), 10).operations == 80

    def test_march_ss_22n(self):
        assert operation_counts(march_ss(4), 10).operations == 220


class TestFaultFree:
    @pytest.mark.parametrize(
        "factory", [mats_plus_plus, march_x, march_y, march_ss]
    )
    def test_clean_memory_passes(self, factory):
        memory = SRAM(GEOMETRY)
        assert MarchSimulator().run(memory, factory(GEOMETRY.bits)).passed


class TestDynamicFaultCoverage:
    def test_irf_caught_by_everything(self):
        for factory in (march_c_minus, march_cw_nw, march_ss):
            assert _detects(factory, IncorrectReadFault(CellRef(5, 1)))

    def test_rdf_caught_by_march_c(self):
        assert _detects(march_c_minus, ReadDestructiveFault(CellRef(5, 1)))

    def test_wdf_caught_by_march_c(self):
        assert _detects(march_c_minus, WriteDisturbFault(CellRef(5, 1)))

    def test_drdf_escapes_single_read_marches(self):
        """The classical escape: reads look correct, damage comes after."""
        assert not _detects(march_c_minus, DeceptiveReadDestructiveFault(CellRef(5, 1)))
        assert not _detects(march_cw_nw, DeceptiveReadDestructiveFault(CellRef(5, 1)))

    def test_drdf_caught_by_march_ss(self):
        """March SS's double reads expose the flipped cell."""
        memory = SRAM(GEOMETRY)
        fault = DeceptiveReadDestructiveFault(CellRef(5, 1))
        fault.attach(memory)
        result = MarchSimulator().run(memory, march_ss(GEOMETRY.bits))
        assert not result.passed
        assert CellRef(5, 1) in result.detected_cells()

    def test_march_ss_superset_on_static_classes(self):
        from repro.faults.stuck_at import StuckAtFault
        from repro.faults.transition import TransitionFault

        assert _detects(march_ss, StuckAtFault(CellRef(3, 3), 0))
        assert _detects(march_ss, StuckAtFault(CellRef(3, 3), 1))
        assert _detects(march_ss, TransitionFault(CellRef(3, 3), True))
        assert _detects(march_ss, TransitionFault(CellRef(3, 3), False))


class TestSchemeWithMarchSS:
    def test_scheme_runs_march_ss_and_finds_drdf(self):
        """The architecture is algorithm-agnostic: swap in March SS."""
        from repro.core.scheme import FastDiagnosisScheme
        from repro.memory.bank import MemoryBank

        memory = SRAM(GEOMETRY)
        DeceptiveReadDestructiveFault(CellRef(7, 2)).attach(memory)
        scheme = FastDiagnosisScheme(
            MemoryBank([memory]), algorithm_factory=march_ss
        )
        report = scheme.diagnose()
        assert CellRef(7, 2) in report.detected_cells("ext")
