"""The algorithm-level coverage matrix: the paper's Sec. 4.1 hierarchy.

March C- < March CW < March CW-NW, with the separations exactly where the
paper places them:

* March CW adds the background-sensitive classes (intra-word state
  coupling, column-decoder faults),
* NWRTM adds the retention classes (DRFs) and the reliability-only weak
  cells,
* the delay-based variant adds DRFs but *not* weak cells, at a 200 ms cost.
"""

import pytest

from repro.march.coverage import algorithm_runner, evaluate_coverage
from repro.march.library import (
    march_c_minus,
    march_cw,
    march_cw_nw,
    march_with_retention_pauses,
)
from repro.memory.geometry import MemoryGeometry


@pytest.fixture(scope="module")
def geometry():
    return MemoryGeometry(16, 4, "cov")


def _coverage(factory, geometry):
    rows = evaluate_coverage(algorithm_runner(factory), geometry)
    return {row.label: row for row in rows}


@pytest.fixture(scope="module")
def march_c_cov(geometry):
    return _coverage(march_c_minus, geometry)


@pytest.fixture(scope="module")
def march_cw_cov(geometry):
    return _coverage(march_cw, geometry)


@pytest.fixture(scope="module")
def march_cw_nw_cov(geometry):
    return _coverage(march_cw_nw, geometry)


@pytest.fixture(scope="module")
def retention_cov(geometry):
    return _coverage(march_with_retention_pauses, geometry)


LOGICAL_CLASSES = [
    "SAF0",
    "SAF1",
    "TF-up",
    "TF-down",
    "CFin (inter-word)",
    "CFid (inter-word)",
    "CFst (inter-word)",
    "CFst (intra-word, write-hold)",
    "AF type-A (open address)",
    "AF type-B/D (remapped address)",
    "AF type-C/D (multi-access)",
]

BG_SENSITIVE_CLASSES = [
    "CFst (intra-word, bg-sensitive)",
    "CDF (column swap, bg-sensitive)",
    "CDF (column bridge, bg-sensitive)",
]

RETENTION_CLASSES = ["DRF0 (cannot hold 0)", "DRF1 (cannot hold 1)"]


class TestMarchCMinus:
    @pytest.mark.parametrize("label", LOGICAL_CLASSES)
    def test_full_logical_coverage(self, march_c_cov, label):
        row = march_c_cov[label]
        assert row.detected == row.instances
        assert row.localized == row.instances

    @pytest.mark.parametrize("label", BG_SENSITIVE_CLASSES)
    def test_misses_bg_sensitive(self, march_c_cov, label):
        assert march_c_cov[label].detected == 0

    @pytest.mark.parametrize("label", RETENTION_CLASSES)
    def test_misses_retention(self, march_c_cov, label):
        assert march_c_cov[label].detected == 0

    def test_misses_weak_cells(self, march_c_cov):
        assert march_c_cov["Weak cell (reliability-only)"].detected == 0


class TestMarchCW:
    @pytest.mark.parametrize("label", LOGICAL_CLASSES + BG_SENSITIVE_CLASSES)
    def test_adds_bg_sensitive(self, march_cw_cov, label):
        row = march_cw_cov[label]
        assert row.detected == row.instances

    @pytest.mark.parametrize("label", RETENTION_CLASSES)
    def test_still_misses_retention(self, march_cw_cov, label):
        assert march_cw_cov[label].detected == 0


class TestMarchCWNW:
    @pytest.mark.parametrize(
        "label",
        LOGICAL_CLASSES
        + BG_SENSITIVE_CLASSES
        + RETENTION_CLASSES
        + ["Weak cell (reliability-only)"],
    )
    def test_full_coverage(self, march_cw_nw_cov, label):
        row = march_cw_nw_cov[label]
        assert row.detected == row.instances, label
        assert row.localized == row.instances, label


class TestRetentionPauses:
    @pytest.mark.parametrize("label", RETENTION_CLASSES)
    def test_detects_drfs(self, retention_cov, label):
        row = retention_cov[label]
        assert row.detected == row.instances

    def test_misses_weak_cells(self, retention_cov):
        """Delay testing cannot see weak cells; only NWRTM can (Sec. 4.1)."""
        assert retention_cov["Weak cell (reliability-only)"].detected == 0


class TestMonotonicity:
    def test_cw_nw_dominates_everything(
        self, march_c_cov, march_cw_cov, march_cw_nw_cov
    ):
        for label in march_c_cov:
            assert (
                march_cw_nw_cov[label].detected
                >= march_cw_cov[label].detected
                >= march_c_cov[label].detected
            )
