"""The reduced March CW extension's intra-word CFid polarity gap.

A reproduction finding (documented in DESIGN.md / EXPERIMENTS.md): the
paper's Eq. (2) charges 3 writes + 2 reads per address per extension
background, so each per-background set necessarily leaves its final write
unverified.  For a bit pair that differs in exactly one background (e.g.
logically adjacent even/odd bits, which only background 0 separates), one
polarity of intra-word idempotent coupling is activated only by that
unverified write and escapes.

The full-March-C--per-background variant (``march_cw_full``) closes the
gap at roughly twice the extension cost -- the trade-off quantified in the
X3 ablation benchmark.
"""

import pytest

from repro.core.timing import proposed_cycles
from repro.faults.coupling import IdempotentCouplingFault
from repro.march.library import march_cw, march_cw_full, march_cw_nw
from repro.march.simulator import MarchSimulator
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM

GEOMETRY = MemoryGeometry(8, 4, "gap")


def _run(algorithm, fault):
    memory = SRAM(GEOMETRY)
    fault.attach(memory)
    return MarchSimulator().run(memory, algorithm)


def _intra_cfid(trigger_rising, forced):
    """Victim at odd bit 3, aggressor at even bit 2 (differ in bg0 only).

    With the victim on the odd (background-1) column, the only write that
    both activates a falling aggressor and leaves the forced-0 victim
    observable is each set's final, unverified one -- the escape parity.
    """
    return IdempotentCouplingFault(
        CellRef(4, 2), CellRef(4, 3), trigger_rising=trigger_rising,
        forced_value=forced,
    )


class TestTheGap:
    def test_three_polarities_caught_by_reduced_cw(self):
        for trigger_rising, forced in [(True, 0), (False, 1), (True, 1)]:
            result = _run(march_cw(4), _intra_cfid(trigger_rising, forced))
            assert not result.passed, (trigger_rising, forced)

    def test_falling_forced0_escapes_reduced_cw(self):
        """The one polarity the Eq. (2) budget cannot verify."""
        result = _run(march_cw(4), _intra_cfid(False, 0))
        assert result.passed

    def test_full_backgrounds_close_the_gap(self):
        result = _run(march_cw_full(4), _intra_cfid(False, 0))
        assert not result.passed
        assert CellRef(4, 3) in result.detected_cells()  # the victim cell

    def test_all_four_polarities_caught_by_full_cw(self):
        for trigger_rising in (True, False):
            for forced in (0, 1):
                result = _run(
                    march_cw_full(4), _intra_cfid(trigger_rising, forced)
                )
                assert not result.passed, (trigger_rising, forced)


class TestTheCost:
    def test_full_variant_costs_more(self):
        n, c = 512, 100
        reduced = proposed_cycles(march_cw(c), n, c)
        full = proposed_cycles(march_cw_full(c), n, c)
        assert full > reduced
        # The extension part roughly doubles; the total stays same order.
        assert full < 3 * reduced

    def test_full_variant_keeps_everything_reduced_catches(self):
        for trigger_rising, forced in [(True, 0), (False, 1), (True, 1)]:
            result = _run(march_cw_full(4), _intra_cfid(trigger_rising, forced))
            assert not result.passed
