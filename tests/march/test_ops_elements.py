"""Unit tests for March operations, elements and backgrounds."""

import pytest

from repro.march.backgrounds import (
    all_backgrounds_cw,
    checkerboard_background,
    log2_backgrounds,
    solid_background,
)
from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import OpKind, Operation, nw0, nw1, r0, r1, w0, w1


class TestOperations:
    def test_notation(self):
        assert r0().notation() == "r0"
        assert w1().notation() == "w1"
        assert nw1().notation() == "Nw1"

    def test_predicates(self):
        assert r0().is_read and not r0().is_write
        assert w1().is_write and not w1().is_read
        assert nw0().is_write and nw0().is_nwrc

    def test_word_expansion_solid(self):
        assert w1().word_for(0b1111, 4) == 0b1111
        assert w0().word_for(0b1111, 4) == 0b0000

    def test_word_expansion_stripe(self):
        assert w1().word_for(0b1010, 4) == 0b1010
        assert w0().word_for(0b1010, 4) == 0b0101

    def test_bad_data_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ, 2)


class TestAddressOrder:
    def test_up(self):
        assert list(AddressOrder.UP.addresses(3)) == [0, 1, 2]

    def test_down(self):
        assert list(AddressOrder.DOWN.addresses(3)) == [2, 1, 0]

    def test_any_defaults_up(self):
        assert list(AddressOrder.ANY.addresses(3)) == [0, 1, 2]


class TestMarchElement:
    def test_counts(self):
        element = MarchElement(AddressOrder.UP, (r0(), w1()))
        assert element.op_count == 2
        assert element.read_count == 1
        assert element.write_count == 1
        assert element.writes_anything

    def test_read_only_element(self):
        element = MarchElement(AddressOrder.ANY, (r0(),))
        assert not element.writes_anything
        assert element.final_data() is None

    def test_final_data(self):
        element = MarchElement(AddressOrder.UP, (r0(), w1()))
        assert element.final_data() == 1
        element = MarchElement(AddressOrder.UP, (r0(), nw0()))
        assert element.final_data() == 0

    def test_notation(self):
        element = MarchElement(AddressOrder.DOWN, (r1(), w0()))
        assert element.notation() == "down(r1,w0)"

    def test_empty_element_rejected(self):
        with pytest.raises(ValueError):
            MarchElement(AddressOrder.UP, ())


class TestBackgrounds:
    def test_solid(self):
        assert solid_background(4) == 0b1111

    def test_checkerboard(self):
        assert checkerboard_background(4, 1) == 0b1010

    def test_log2_count(self):
        assert len(log2_backgrounds(4)) == 2
        assert len(log2_backgrounds(100)) == 7
        assert len(log2_backgrounds(1)) == 0

    def test_log2_values(self):
        assert [f"{b:04b}" for b in log2_backgrounds(4)] == ["1010", "1100"]

    def test_log2_distinguishes_all_column_pairs(self):
        """The defining property: any two columns differ in some background."""
        bits = 13
        backgrounds = log2_backgrounds(bits)
        for i in range(bits):
            for j in range(i + 1, bits):
                assert any(
                    ((bg >> i) & 1) != ((bg >> j) & 1) for bg in backgrounds
                ), f"columns {i} and {j} never differ"

    def test_cw_set_starts_solid(self):
        backgrounds = all_backgrounds_cw(8)
        assert backgrounds[0] == 0xFF
        assert len(backgrounds) == 4
