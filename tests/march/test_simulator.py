"""Unit tests for the March fault simulator."""

import pytest

from repro.faults.address_fault import AddressOpenFault, AddressRemapFault
from repro.faults.coupling import InversionCouplingFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.march.library import march_c_minus, march_cw, mats_plus
from repro.march.simulator import MarchSimulator
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


@pytest.fixture
def geometry():
    return MemoryGeometry(16, 4, "m")


@pytest.fixture
def simulator():
    return MarchSimulator()


class TestFaultFree:
    @pytest.mark.parametrize("factory", [mats_plus, march_c_minus, march_cw])
    def test_clean_memory_passes(self, geometry, simulator, factory):
        memory = SRAM(geometry)
        result = simulator.run(memory, factory(geometry.bits))
        assert result.passed
        assert result.failure_count == 0

    def test_cycles_counted(self, geometry, simulator):
        memory = SRAM(geometry)
        result = simulator.run(memory, march_c_minus(4))
        assert result.cycles == 10 * 16  # 10n single-cycle ops
        assert result.elapsed_ns == result.cycles * 10.0


class TestDetection:
    def test_saf_detected_and_localized(self, geometry, simulator):
        memory = SRAM(geometry)
        StuckAtFault(CellRef(7, 2), 1).attach(memory)
        result = simulator.run(memory, march_c_minus(4))
        assert not result.passed
        assert CellRef(7, 2) in result.detected_cells()

    def test_failure_record_contents(self, geometry, simulator):
        memory = SRAM(geometry)
        StuckAtFault(CellRef(7, 2), 1).attach(memory)
        result = simulator.run(memory, march_c_minus(4))
        failure = result.failures[0]
        assert failure.address == 7
        assert failure.syndrome == 0b0100
        assert failure.failing_bits() == [2]
        assert failure.operation.startswith("r")
        assert failure.memory_name == "m"

    def test_tf_detected_by_march_c(self, geometry, simulator):
        memory = SRAM(geometry)
        TransitionFault(CellRef(3, 1), rising=True).attach(memory)
        result = simulator.run(memory, march_c_minus(4))
        assert CellRef(3, 1) in result.detected_cells()

    def test_tf_down_missed_by_mats_plus(self, geometry, simulator):
        """MATS+ cannot catch falling transition faults -- March C- can."""
        memory = SRAM(geometry)
        TransitionFault(CellRef(3, 1), rising=False).attach(memory)
        assert simulator.run(memory, mats_plus(4)).passed
        memory2 = SRAM(geometry)
        TransitionFault(CellRef(3, 1), rising=False).attach(memory2)
        assert not simulator.run(memory2, march_c_minus(4)).passed

    def test_coupling_detected(self, geometry, simulator):
        memory = SRAM(geometry)
        InversionCouplingFault(CellRef(4, 1), CellRef(3, 1)).attach(memory)
        result = simulator.run(memory, march_c_minus(4))
        assert CellRef(3, 1) in result.detected_cells()

    def test_af_open_detected(self, geometry, simulator):
        memory = SRAM(geometry)
        AddressOpenFault(5, geometry.bits).attach(memory)
        result = simulator.run(memory, march_c_minus(4))
        assert 5 in result.failing_addresses()

    def test_af_remap_detected(self, geometry, simulator):
        memory = SRAM(geometry)
        AddressRemapFault(5, 6, geometry.bits).attach(memory)
        result = simulator.run(memory, march_c_minus(4))
        assert not result.passed


class TestStopOnFirstFailure:
    def test_stops_early(self, geometry):
        memory = SRAM(geometry)
        StuckAtFault(CellRef(0, 0), 1).attach(memory)
        StuckAtFault(CellRef(15, 0), 1).attach(memory)
        eager = MarchSimulator(stop_on_first_failure=True)
        result = eager.run(memory, march_c_minus(4))
        assert result.failure_count == 1


class TestWidthMismatch:
    def test_rejected(self, geometry, simulator):
        memory = SRAM(geometry)
        with pytest.raises(ValueError):
            simulator.run(memory, march_c_minus(8))


class TestMultipleFaults:
    def test_all_single_cell_faults_localized(self, geometry, simulator):
        memory = SRAM(geometry)
        cells = [CellRef(1, 0), CellRef(8, 3), CellRef(15, 2)]
        for cell in cells:
            StuckAtFault(cell, 1).attach(memory)
        result = simulator.run(memory, march_c_minus(4))
        assert set(cells) <= result.detected_cells()
