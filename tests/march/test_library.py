"""Unit tests for the March algorithm library: structure and op counts."""

import pytest

from repro.march.complexity import operation_counts
from repro.march.library import (
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_nw,
    march_with_retention_pauses,
    mats_plus,
)


class TestMatsPlus:
    def test_5n_complexity(self):
        counts = operation_counts(mats_plus(4), 10)
        assert counts.operations == 5 * 10


class TestMarchCMinus:
    def test_10n_complexity(self):
        counts = operation_counts(march_c_minus(4), 10)
        assert counts.operations == 10 * 10
        assert counts.reads == 5 * 10
        assert counts.writes == 5 * 10
        assert counts.nwrc_writes == 0

    def test_six_elements(self):
        assert len(march_c_minus(4).march_steps) == 6

    def test_five_writing_elements(self):
        assert march_c_minus(4).writing_elements() == 5

    def test_single_solid_background(self):
        assert march_c_minus(4).backgrounds_used() == [0b1111]


class TestMarchCNW:
    def test_same_cost_as_march_c_minus(self):
        """The replacement merge adds zero operations (DESIGN.md)."""
        base = operation_counts(march_c_minus(4), 10)
        merged = operation_counts(march_c_nw(4), 10)
        assert merged.operations == base.operations
        assert merged.reads == base.reads
        assert merged.writes + merged.nwrc_writes == base.writes

    def test_has_two_nwrc_passes(self):
        counts = operation_counts(march_c_nw(4), 10)
        assert counts.nwrc_writes == 2 * 10

    def test_element_structure_preserved(self):
        """Every March C- element survives with its order and read ops."""
        base = [s.element.order for s in march_c_minus(4).march_steps]
        merged = [s.element.order for s in march_c_nw(4).march_steps]
        assert merged == base


class TestMarchCW:
    def test_element_count(self):
        algorithm = march_cw(4)  # log2(4) = 2 extra backgrounds
        assert len(algorithm.march_steps) == 6 + 3 * 2

    def test_backgrounds(self):
        algorithm = march_cw(4)
        assert algorithm.backgrounds_used() == [0b1111, 0b1010, 0b1100]

    def test_extension_cost_per_background(self):
        """Each extension set: 3n writes + 2n reads (Eq. (2) term 2)."""
        cw = operation_counts(march_cw(4), 10)
        base = operation_counts(march_c_minus(4), 10)
        extra_writes = cw.writes - base.writes
        extra_reads = cw.reads - base.reads
        assert extra_writes == 3 * 10 * 2  # 2 backgrounds for c=4
        assert extra_reads == 2 * 10 * 2


class TestMarchCWNW:
    def test_combines_nw_and_cw(self):
        counts = operation_counts(march_cw_nw(8), 10)
        cw = operation_counts(march_cw(8), 10)
        assert counts.operations == cw.operations
        assert counts.nwrc_writes == 2 * 10

    def test_wide_width(self):
        algorithm = march_cw_nw(100)
        assert len(algorithm.march_steps) == 6 + 3 * 7


class TestRetentionVariant:
    def test_contains_two_pauses(self):
        algorithm = march_with_retention_pauses(4)
        assert len(algorithm.pause_steps) == 2
        assert algorithm.total_pause_ns == 200.0 * 1e6

    def test_custom_pause(self):
        algorithm = march_with_retention_pauses(4, pause_ns=5.0)
        assert algorithm.total_pause_ns == 10.0


class TestAlgorithmAccessors:
    def test_repr_mentions_name(self):
        assert "March CW" in repr(march_cw(4))

    def test_notation_lines(self):
        text = march_c_minus(4).notation()
        assert "up(r0,w1)" in text
        assert len(text.splitlines()) == 6

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            march_c_minus(0)
