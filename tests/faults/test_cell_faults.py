"""Unit tests for the cell-level fault models (SAF, TF, coupling)."""

import pytest

from repro.faults.base import FaultClass
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


@pytest.fixture
def memory():
    return SRAM(MemoryGeometry(8, 4, "m"))


class TestStuckAt:
    def test_saf0_reads_zero(self, memory):
        StuckAtFault(CellRef(1, 2), 0).attach(memory)
        memory.write(1, 0b1111)
        assert memory.read(1) == 0b1011

    def test_saf1_reads_one(self, memory):
        StuckAtFault(CellRef(1, 2), 1).attach(memory)
        memory.write(1, 0b0000)
        assert memory.read(1) == 0b0100

    def test_nwrc_write_also_stuck(self, memory):
        StuckAtFault(CellRef(1, 2), 0).attach(memory)
        memory.nwrc_write(1, 0b1111)
        assert memory.read(1) == 0b1011

    def test_fault_class(self):
        assert StuckAtFault(CellRef(0, 0), 0).fault_class is FaultClass.SAF0
        assert StuckAtFault(CellRef(0, 0), 1).fault_class is FaultClass.SAF1

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            StuckAtFault(CellRef(0, 0), 2)


class TestTransition:
    def test_rising_fault_blocks_up_transition(self, memory):
        TransitionFault(CellRef(2, 0), rising=True).attach(memory)
        memory.write(2, 0b0001)
        assert memory.read(2) == 0b0000

    def test_rising_fault_allows_down_transition(self, memory):
        TransitionFault(CellRef(2, 0), rising=True).attach(memory)
        memory.force_stored_bit(2, 0, 1)
        memory.write(2, 0b0000)
        assert memory.read(2) == 0b0000

    def test_falling_fault_blocks_down_transition(self, memory):
        TransitionFault(CellRef(2, 0), rising=False).attach(memory)
        memory.force_stored_bit(2, 0, 1)
        memory.write(2, 0b0000)
        assert memory.read(2) == 0b0001

    def test_same_value_write_unaffected(self, memory):
        TransitionFault(CellRef(2, 0), rising=True).attach(memory)
        memory.write(2, 0b0000)
        assert memory.read(2) == 0b0000

    def test_fault_classes(self):
        assert TransitionFault(CellRef(0, 0), True).fault_class is FaultClass.TF_UP
        assert TransitionFault(CellRef(0, 0), False).fault_class is FaultClass.TF_DOWN


class TestInversionCoupling:
    def test_rising_aggressor_inverts_victim(self, memory):
        InversionCouplingFault(CellRef(1, 0), CellRef(2, 0), True).attach(memory)
        memory.write(1, 0b0001)  # aggressor 0 -> 1
        assert memory.stored_bit(2, 0) == 1

    def test_falling_trigger_ignores_rise(self, memory):
        InversionCouplingFault(CellRef(1, 0), CellRef(2, 0), False).attach(memory)
        memory.write(1, 0b0001)
        assert memory.stored_bit(2, 0) == 0

    def test_double_inversion_cancels(self, memory):
        InversionCouplingFault(CellRef(1, 0), CellRef(2, 0), True).attach(memory)
        memory.write(1, 0b0001)
        memory.write(1, 0b0000)
        memory.write(1, 0b0001)
        assert memory.stored_bit(2, 0) == 0

    def test_same_cell_rejected(self):
        with pytest.raises(ValueError):
            InversionCouplingFault(CellRef(0, 0), CellRef(0, 0))


class TestIdempotentCoupling:
    def test_forces_victim_value(self, memory):
        IdempotentCouplingFault(
            CellRef(1, 0), CellRef(2, 0), trigger_rising=True, forced_value=1
        ).attach(memory)
        memory.write(1, 0b0001)
        assert memory.stored_bit(2, 0) == 1

    def test_idempotent_on_repeat(self, memory):
        IdempotentCouplingFault(
            CellRef(1, 0), CellRef(2, 0), trigger_rising=True, forced_value=1
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.write(1, 0b0000)
        memory.write(1, 0b0001)
        assert memory.stored_bit(2, 0) == 1

    def test_intra_word_coupling(self, memory):
        """Aggressor and victim in the same word interact within one write."""
        IdempotentCouplingFault(
            CellRef(3, 1), CellRef(3, 0), trigger_rising=True, forced_value=0
        ).attach(memory)
        memory.write(3, 0b0011)  # victim written 1, aggressor rises
        assert memory.read(3) == 0b0010


class TestStateCoupling:
    def test_read_forced_while_active(self, memory):
        StateCouplingFault(
            CellRef(1, 0), CellRef(2, 0), aggressor_state=1, forced_value=0
        ).attach(memory)
        memory.write(2, 0b0001)
        assert memory.read(2) == 0b0001  # aggressor 0: inactive
        memory.write(1, 0b0001)  # activate
        assert memory.read(2) == 0b0000

    def test_write_held_while_active(self, memory):
        StateCouplingFault(
            CellRef(1, 0), CellRef(2, 0), aggressor_state=1, forced_value=0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.write(2, 0b0001)
        memory.write(1, 0b0000)  # deactivate: stored value was held at 0
        assert memory.read(2) == 0b0000

    def test_read_disturb_variant_does_not_hold_writes(self, memory):
        StateCouplingFault(
            CellRef(1, 0),
            CellRef(2, 0),
            aggressor_state=1,
            forced_value=0,
            affects_write=False,
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.write(2, 0b0001)  # lands despite active aggressor
        memory.write(1, 0b0000)  # deactivate
        assert memory.read(2) == 0b0001
