"""Unit tests for the dynamic (read/write-disturb) fault models."""

import pytest

from repro.faults.base import FaultClass
from repro.faults.dynamic import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
    WriteDisturbFault,
)
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


@pytest.fixture
def memory():
    return SRAM(MemoryGeometry(8, 4, "dyn"))


class TestIncorrectRead:
    def test_read_returns_complement(self, memory):
        IncorrectReadFault(CellRef(1, 0)).attach(memory)
        memory.write(1, 0b0001)
        assert memory.read(1) == 0b0000

    def test_stored_value_untouched(self, memory):
        IncorrectReadFault(CellRef(1, 0)).attach(memory)
        memory.write(1, 0b0001)
        memory.read(1)
        assert memory.stored_bit(1, 0) == 1

    def test_class(self):
        assert IncorrectReadFault(CellRef(0, 0)).fault_class is FaultClass.IRF


class TestReadDestructive:
    def test_read_flips_and_returns_flipped(self, memory):
        ReadDestructiveFault(CellRef(2, 1)).attach(memory)
        memory.write(2, 0b0000)
        assert memory.read(2) == 0b0010  # flipped and observed flipped
        assert memory.stored_bit(2, 1) == 1

    def test_second_read_flips_back(self, memory):
        ReadDestructiveFault(CellRef(2, 1)).attach(memory)
        memory.write(2, 0b0000)
        memory.read(2)
        assert memory.read(2) == 0b0000


class TestDeceptiveReadDestructive:
    def test_read_returns_correct_value(self, memory):
        DeceptiveReadDestructiveFault(CellRef(3, 2)).attach(memory)
        memory.write(3, 0b0000)
        assert memory.read(3) == 0b0000  # looks fine...

    def test_but_cell_flipped(self, memory):
        DeceptiveReadDestructiveFault(CellRef(3, 2)).attach(memory)
        memory.write(3, 0b0000)
        memory.read(3)
        assert memory.stored_bit(3, 2) == 1  # ...yet the charge is gone

    def test_second_read_reveals(self, memory):
        DeceptiveReadDestructiveFault(CellRef(3, 2)).attach(memory)
        memory.write(3, 0b0000)
        memory.read(3)
        assert memory.read(3) == 0b0100


class TestWriteDisturb:
    def test_non_transition_write_flips(self, memory):
        WriteDisturbFault(CellRef(4, 0)).attach(memory)
        memory.write(4, 0b0000)  # writing 0 over 0: disturb
        assert memory.stored_bit(4, 0) == 1

    def test_transition_write_lands(self, memory):
        WriteDisturbFault(CellRef(4, 0)).attach(memory)
        memory.force_stored_bit(4, 0, 1)
        memory.write(4, 0b0000)  # 1 -> 0 transition: fine
        assert memory.stored_bit(4, 0) == 0

    def test_polarity_restriction(self, memory):
        WriteDisturbFault(CellRef(4, 0), polarity=1).attach(memory)
        memory.write(4, 0b0000)  # w0 over 0 -- not the disturbed polarity
        assert memory.stored_bit(4, 0) == 0
        memory.write(4, 0b0001)  # 0 -> 1 transition: fine
        memory.write(4, 0b0001)  # w1 over 1: disturb
        assert memory.stored_bit(4, 0) == 0

    def test_bad_polarity_rejected(self):
        with pytest.raises(ValueError):
            WriteDisturbFault(CellRef(0, 0), polarity=2)
