"""Intermittent/soft-error fault models and their deterministic streams."""

from __future__ import annotations

import pytest

from repro.faults.base import FaultClass
from repro.faults.intermittent import (
    IntermittentReadFault,
    SoftErrorUpsetFault,
    sample_intermittent_population,
)
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.rng import SplitMix64Stream, counter_bernoulli, mix_seed


class TestStreams:
    def test_stream_is_deterministic(self):
        a = SplitMix64Stream(42)
        b = SplitMix64Stream(42)
        assert [a.next_u64() for _ in range(8)] == [b.next_u64() for _ in range(8)]

    def test_distinct_seeds_diverge(self):
        a = SplitMix64Stream(1)
        b = SplitMix64Stream(2)
        assert [a.next_u64() for _ in range(4)] != [b.next_u64() for _ in range(4)]

    def test_floats_in_unit_interval(self):
        stream = SplitMix64Stream(7)
        values = [stream.next_float() for _ in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 190  # essentially no collisions

    def test_mix_seed_stable_and_path_sensitive(self):
        assert mix_seed(3, 1, 2) == mix_seed(3, 1, 2)
        assert mix_seed(3, 1, 2) != mix_seed(3, 2, 1)
        assert mix_seed(3, 1) != mix_seed(4, 1)


class TestIntermittentReadFault:
    def test_always_upsets_at_probability_one(self):
        memory = SRAM(MemoryGeometry(4, 4, "ir"))
        IntermittentReadFault(CellRef(2, 1), 1.0, seed=5).attach(memory)
        for _ in range(6):
            assert memory.read(2) == 0b0010
        # Transient: the stored value was never corrupted.
        assert memory.stored_bit(2, 1) == 0

    def test_never_upsets_at_probability_zero(self):
        memory = SRAM(MemoryGeometry(4, 4, "ir0"))
        IntermittentReadFault(CellRef(2, 1), 0.0, seed=5).attach(memory)
        assert all(memory.read(2) == 0 for _ in range(6))

    def test_upset_sequence_is_reproducible(self):
        def observe():
            memory = SRAM(MemoryGeometry(4, 4, "irr"))
            IntermittentReadFault(CellRef(1, 0), 0.5, seed=77).attach(memory)
            return [memory.read(1) for _ in range(32)]

        assert observe() == observe()

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            IntermittentReadFault(CellRef(0, 0), 1.5)

    def test_describe_mentions_probability(self):
        fault = IntermittentReadFault(CellRef(0, 0), 0.25)
        assert "p=0.25" in fault.describe()
        assert fault.fault_class is FaultClass.INT_READ
        assert fault.fault_class.is_intermittent


class TestCounterStream:
    def test_draws_match_the_scalar_helper(self):
        # The k-th decision is the pure function counter_bernoulli(seed,
        # k, p) -- the contract the compiled fault table's vectorized
        # evaluation relies on.
        memory = SRAM(MemoryGeometry(4, 4, "ctr"))
        fault = IntermittentReadFault(CellRef(1, 0), 0.5, seed=123)
        fault.attach(memory)
        observed = [memory.read(1) & 1 for _ in range(64)]
        expected = [
            int(counter_bernoulli(123, k, 0.5)) for k in range(64)
        ]
        assert observed == expected

    def test_counter_resumes_after_partial_consumption(self):
        # A fresh fault fast-forwarded to draw k agrees with a fault that
        # consumed k draws live -- the property that lets the table lane
        # hand counters back to the behavioural objects between sessions.
        a = SoftErrorUpsetFault(CellRef(0, 0), 0.5, seed=9)
        for _ in range(10):
            a._upset()
        b = SoftErrorUpsetFault(CellRef(0, 0), 0.5, seed=9)
        b._draws = 10
        assert [a._upset() for _ in range(20)] == [b._upset() for _ in range(20)]

    def test_legacy_stream_restores_sequential_draws(self):
        fault = IntermittentReadFault(
            CellRef(0, 0), 0.5, seed=77, legacy_stream=True
        )
        stream = SplitMix64Stream(77)
        expected = [stream.next_float() < 0.5 for _ in range(32)]
        assert [fault._upset() for _ in range(32)] == expected

    def test_legacy_and_counter_modes_differ(self):
        legacy = IntermittentReadFault(
            CellRef(0, 0), 0.5, seed=4, legacy_stream=True
        )
        counter = IntermittentReadFault(CellRef(0, 0), 0.5, seed=4)
        assert [legacy._upset() for _ in range(64)] != [
            counter._upset() for _ in range(64)
        ]


class TestSoftErrorUpsetFault:
    def test_upset_corrupts_stored_state(self):
        memory = SRAM(MemoryGeometry(4, 4, "seu"))
        SoftErrorUpsetFault(CellRef(2, 1), 1.0, seed=5).attach(memory)
        assert memory.read(2) == 0b0010
        # Persistent until rewritten: the stored bit really flipped.
        assert memory.stored_bit(2, 1) == 1
        # A write refreshes the cell...
        memory.write(2, 0)
        assert memory.stored_bit(2, 1) == 0
        # ...and the next read strikes again.
        assert memory.read(2) == 0b0010

    def test_no_upset_reads_clean(self):
        memory = SRAM(MemoryGeometry(4, 4, "seu0"))
        SoftErrorUpsetFault(CellRef(2, 1), 0.0, seed=5).attach(memory)
        assert memory.read(2) == 0
        assert memory.stored_bit(2, 1) == 0
        assert FaultClass.SEU.is_intermittent


class TestSampling:
    GEOMETRY = MemoryGeometry(16, 8, "pop")

    def test_count_follows_rate(self):
        population = sample_intermittent_population(self.GEOMETRY, 0.05, 0.3, seed=1)
        assert len(population) == round(self.GEOMETRY.cells * 0.05)

    def test_zero_rate_is_empty(self):
        assert sample_intermittent_population(self.GEOMETRY, 0.0, 0.3) == []

    def test_victims_are_distinct_and_in_range(self):
        population = sample_intermittent_population(self.GEOMETRY, 0.2, 0.3, seed=3)
        victims = [fault.victims[0] for fault in population]
        assert len(set(victims)) == len(victims)
        for cell in victims:
            assert 0 <= cell.word < self.GEOMETRY.words
            assert 0 <= cell.bit < self.GEOMETRY.bits

    def test_deterministic_per_seed(self):
        def fingerprint(seed):
            return [
                (type(f).__name__, f.victims[0], f.seed)
                for f in sample_intermittent_population(
                    self.GEOMETRY, 0.1, 0.3, seed=seed
                )
            ]

        assert fingerprint(9) == fingerprint(9)
        assert fingerprint(9) != fingerprint(10)

    def test_mixes_both_classes(self):
        population = sample_intermittent_population(self.GEOMETRY, 0.5, 0.3, seed=2)
        classes = {type(fault).__name__ for fault in population}
        assert classes == {"IntermittentReadFault", "SoftErrorUpsetFault"}

    def test_class_mix_is_roughly_balanced(self):
        # The class of each fault is a seeded per-cell selection
        # (mix_seed(seed, 0x5E0, cell_index) % 2), which over a large
        # population lands roughly half-and-half -- the distribution the
        # docstring promises.
        geometry = MemoryGeometry(128, 8, "dist")  # 1024 cells
        population = sample_intermittent_population(geometry, 1.0, 0.3, seed=11)
        assert len(population) == geometry.cells
        seu = sum(
            1 for f in population if type(f).__name__ == "SoftErrorUpsetFault"
        )
        share = seu / len(population)
        assert 0.4 < share < 0.6

    def test_class_choice_depends_only_on_seed_and_cell(self):
        # Same seed, different rates: the faults present in both
        # populations carry the same class and per-fault seed (selection
        # is per cell index, not per list position).
        small = {
            f.victims[0]: (type(f).__name__, f.seed)
            for f in sample_intermittent_population(self.GEOMETRY, 0.1, 0.3, seed=5)
        }
        large = {
            f.victims[0]: (type(f).__name__, f.seed)
            for f in sample_intermittent_population(self.GEOMETRY, 0.3, 0.3, seed=5)
        }
        for cell, identity in small.items():
            assert large[cell] == identity

    def test_exact_half_population_rounds_up(self):
        # 16*8 cells * rate -> 2.5 faults: banker's rounding would give 2,
        # the explicit shared half-up rule gives 3.
        assert round(2.5) == 2  # the trap this pins against
        population = sample_intermittent_population(
            self.GEOMETRY, 2.5 / self.GEOMETRY.cells, 0.3, seed=1
        )
        assert len(population) == 3

    def test_legacy_flag_threads_through_sampling(self):
        population = sample_intermittent_population(
            self.GEOMETRY, 0.1, 0.3, seed=3, legacy_stream=True
        )
        assert population
        assert all(f.legacy_stream for f in population)
        assert not any(f.vector_lowerable() for f in population)
        default = sample_intermittent_population(self.GEOMETRY, 0.1, 0.3, seed=3)
        assert all(not f.legacy_stream for f in default)
        assert all(f.vector_lowerable() for f in default)

    def test_works_without_numpy(self):
        # The intermittent layer must not require the [fast] extra.
        from tests.test_optional_numpy import run_without_numpy

        result = run_without_numpy(
            "from repro.faults.intermittent import sample_intermittent_population\n"
            "from repro.memory.geometry import MemoryGeometry\n"
            "population = sample_intermittent_population("
            "MemoryGeometry(8, 4, 'np_free'), 0.25, 0.5, seed=3)\n"
            "print(len(population))\n"
        )
        assert result.returncode == 0, result.stderr
        assert int(result.stdout.strip()) == 8

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            sample_intermittent_population(self.GEOMETRY, 2.0, 0.5)
