"""Unit tests for DRFs and weak cells: the time/NWRC-dependent classes."""

import pytest

from repro.faults.retention_fault import DataRetentionFault
from repro.faults.weak_cell import WeakCellDefect
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


@pytest.fixture
def memory():
    return SRAM(MemoryGeometry(8, 4, "m"))


class TestDataRetentionFault:
    def test_normal_write_succeeds_transiently(self, memory):
        DataRetentionFault(CellRef(1, 0), fragile_value=1).attach(memory)
        memory.write(1, 0b0001)
        assert memory.read(1) == 0b0001  # immediately after: still there

    def test_value_decays_after_retention_time(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(2_000.0)
        assert memory.read(1) == 0b0000

    def test_decay_persists_in_stored_state(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(2_000.0)
        memory.read(1)
        assert memory.stored_bit(1, 0) == 0

    def test_short_pause_no_decay(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(1_000.0)
        assert memory.read(1) == 0b0001

    def test_opposite_value_retained_forever(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0000)
        memory.pause(1e12)
        assert memory.read(1) == 0b0000

    def test_nwrc_write_fails_immediately(self, memory):
        DataRetentionFault(CellRef(1, 0), fragile_value=1).attach(memory)
        memory.nwrc_write(1, 0b0001)
        assert memory.read(1) == 0b0000  # no pause needed

    def test_nwrc_write_of_safe_value_succeeds(self, memory):
        DataRetentionFault(CellRef(1, 0), fragile_value=1).attach(memory)
        memory.write(1, 0b0001)
        memory.nwrc_write(1, 0b0000)
        assert memory.read(1) == 0b0000

    def test_rewrite_restarts_decay_clock(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(800.0)
        memory.write(1, 0b0001)  # refresh
        memory.pause(800.0)
        assert memory.read(1) == 0b0001  # neither interval alone exceeded

    def test_nwrc_rewrite_cannot_refresh_decay_clock(self, memory):
        # Regression: an NWRC rewrite of the already-stored fragile value
        # leaves the fragile-side bitline floating, so it cannot recharge
        # the leaking node -- the decay clock must keep running from the
        # original (normal) write, and the read after the retention time
        # still sees the decayed value.
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(800.0)
        memory.nwrc_write(1, 0b0001)  # floating bitline: no recharge
        memory.pause(800.0)  # 1600 ns since the only real write
        assert memory.read(1) == 0b0000

    def test_read_exactly_at_retention_time_decays(self, memory):
        # The decay comparison is >=: elapsed exactly equal to the
        # retention time already loses the bit.  Accesses tick 10 ns each
        # (write at t=10 sets the clock, the read itself ticks to
        # t=1010), so a 990 ns pause lands the read at elapsed == 1000.
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(990.0)
        assert memory.read(1) == 0b0000

    def test_retention_one_ulp_above_elapsed_survives(self, memory):
        # Same schedule, retention one float step larger than the exact
        # 1000 ns elapsed: were the comparison a strict >, the previous
        # test would pass for the wrong reason -- this pair pins >=.
        import math

        DataRetentionFault(
            CellRef(1, 0),
            fragile_value=1,
            retention_ns=math.nextafter(1_000.0, math.inf),
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(990.0)
        assert memory.read(1) == 0b0001

    def test_drf0_polarity(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=0, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.write(1, 0b0000)
        memory.pause(2_000.0)
        assert memory.read(1) == 0b0001  # decayed 0 -> 1

    def test_nwrc_drf0_fails_to_clear(self, memory):
        DataRetentionFault(CellRef(1, 0), fragile_value=0).attach(memory)
        memory.write(1, 0b0001)
        memory.nwrc_write(1, 0b0000)
        assert memory.read(1) == 0b0001


class TestWeakCell:
    def test_logically_invisible(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=1).attach(memory)
        memory.write(2, 0b0010)
        assert memory.read(2) == 0b0010

    def test_retention_is_fine(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=1).attach(memory)
        memory.write(2, 0b0010)
        memory.pause(1e12)
        assert memory.read(2) == 0b0010

    def test_nwrc_write_fails(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=1).attach(memory)
        memory.nwrc_write(2, 0b0010)
        assert memory.read(2) == 0b0000

    def test_nwrc_same_value_is_fine(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=1).attach(memory)
        memory.write(2, 0b0010)
        memory.nwrc_write(2, 0b0010)  # no flip required
        assert memory.read(2) == 0b0010

    def test_weak_zero_polarity(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=0).attach(memory)
        memory.write(2, 0b0010)
        memory.nwrc_write(2, 0b0000)
        assert memory.read(2) == 0b0010  # failed to clear
