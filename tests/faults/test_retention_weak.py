"""Unit tests for DRFs and weak cells: the time/NWRC-dependent classes."""

import pytest

from repro.faults.retention_fault import DataRetentionFault
from repro.faults.weak_cell import WeakCellDefect
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


@pytest.fixture
def memory():
    return SRAM(MemoryGeometry(8, 4, "m"))


class TestDataRetentionFault:
    def test_normal_write_succeeds_transiently(self, memory):
        DataRetentionFault(CellRef(1, 0), fragile_value=1).attach(memory)
        memory.write(1, 0b0001)
        assert memory.read(1) == 0b0001  # immediately after: still there

    def test_value_decays_after_retention_time(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(2_000.0)
        assert memory.read(1) == 0b0000

    def test_decay_persists_in_stored_state(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(2_000.0)
        memory.read(1)
        assert memory.stored_bit(1, 0) == 0

    def test_short_pause_no_decay(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(1_000.0)
        assert memory.read(1) == 0b0001

    def test_opposite_value_retained_forever(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0000)
        memory.pause(1e12)
        assert memory.read(1) == 0b0000

    def test_nwrc_write_fails_immediately(self, memory):
        DataRetentionFault(CellRef(1, 0), fragile_value=1).attach(memory)
        memory.nwrc_write(1, 0b0001)
        assert memory.read(1) == 0b0000  # no pause needed

    def test_nwrc_write_of_safe_value_succeeds(self, memory):
        DataRetentionFault(CellRef(1, 0), fragile_value=1).attach(memory)
        memory.write(1, 0b0001)
        memory.nwrc_write(1, 0b0000)
        assert memory.read(1) == 0b0000

    def test_rewrite_restarts_decay_clock(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=1, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.pause(800.0)
        memory.write(1, 0b0001)  # refresh
        memory.pause(800.0)
        assert memory.read(1) == 0b0001  # neither interval alone exceeded

    def test_drf0_polarity(self, memory):
        DataRetentionFault(
            CellRef(1, 0), fragile_value=0, retention_ns=1_000.0
        ).attach(memory)
        memory.write(1, 0b0001)
        memory.write(1, 0b0000)
        memory.pause(2_000.0)
        assert memory.read(1) == 0b0001  # decayed 0 -> 1

    def test_nwrc_drf0_fails_to_clear(self, memory):
        DataRetentionFault(CellRef(1, 0), fragile_value=0).attach(memory)
        memory.write(1, 0b0001)
        memory.nwrc_write(1, 0b0000)
        assert memory.read(1) == 0b0001


class TestWeakCell:
    def test_logically_invisible(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=1).attach(memory)
        memory.write(2, 0b0010)
        assert memory.read(2) == 0b0010

    def test_retention_is_fine(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=1).attach(memory)
        memory.write(2, 0b0010)
        memory.pause(1e12)
        assert memory.read(2) == 0b0010

    def test_nwrc_write_fails(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=1).attach(memory)
        memory.nwrc_write(2, 0b0010)
        assert memory.read(2) == 0b0000

    def test_nwrc_same_value_is_fine(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=1).attach(memory)
        memory.write(2, 0b0010)
        memory.nwrc_write(2, 0b0010)  # no flip required
        assert memory.read(2) == 0b0010

    def test_weak_zero_polarity(self, memory):
        WeakCellDefect(CellRef(2, 1), weak_value=0).attach(memory)
        memory.write(2, 0b0010)
        memory.nwrc_write(2, 0b0000)
        assert memory.read(2) == 0b0010  # failed to clear
