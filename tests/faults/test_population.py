"""Unit tests for defect profiles, populations and the injector."""

import pytest

from repro.faults.base import FaultClass, M1_LOCALIZABLE_CLASSES
from repro.faults.defects import DefectProfile, DefectType, fault_for_defect
from repro.faults.injector import FaultInjector
from repro.faults.population import expected_fault_count, sample_population
from repro.faults.stuck_at import StuckAtFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.rng import make_rng


class TestExpectedFaultCount:
    def test_case_study_arithmetic(self):
        assert expected_fault_count(MemoryGeometry(512, 100), 0.01) == 256

    def test_zero_rate(self):
        assert expected_fault_count(MemoryGeometry(512, 100), 0.0) == 0

    def test_scales_linearly(self):
        geometry = MemoryGeometry(512, 100)
        assert expected_fault_count(geometry, 0.02) == 512

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            expected_fault_count(MemoryGeometry(4, 4), 1.5)


class TestDefectProfile:
    def test_default_is_uniform(self):
        profile = DefectProfile()
        probabilities = dict(profile.normalized())
        assert all(abs(p - 0.25) < 1e-12 for p in probabilities.values())

    def test_zero_weight_excluded(self):
        profile = DefectProfile(weights={DefectType.NODE_SHORT: 1.0, DefectType.PULLUP_OPEN: 0.0})
        types = [t for t, _ in profile.normalized()]
        assert types == [DefectType.NODE_SHORT]

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            DefectProfile(weights={DefectType.NODE_SHORT: 0.0})

    def test_sampling_respects_support(self):
        profile = DefectProfile(weights={DefectType.CELL_BRIDGE: 1.0})
        rng = make_rng(0)
        assert all(profile.sample_type(rng) is DefectType.CELL_BRIDGE for _ in range(16))


class TestFaultForDefect:
    def test_mapping_classes(self):
        geometry = MemoryGeometry(8, 8)
        rng = make_rng(0)
        cell = CellRef(3, 3)
        assert fault_for_defect(DefectType.NODE_SHORT, cell, geometry, rng).fault_class in (
            FaultClass.SAF0,
            FaultClass.SAF1,
        )
        assert fault_for_defect(DefectType.ACCESS_OPEN, cell, geometry, rng).fault_class in (
            FaultClass.TF_UP,
            FaultClass.TF_DOWN,
        )
        assert fault_for_defect(DefectType.PULLUP_OPEN, cell, geometry, rng).fault_class in (
            FaultClass.DRF0,
            FaultClass.DRF1,
        )
        assert fault_for_defect(DefectType.CELL_BRIDGE, cell, geometry, rng).fault_class in (
            FaultClass.CF_IN,
            FaultClass.CF_ID,
            FaultClass.CF_ST,
        )

    def test_bridge_aggressor_is_neighbor(self):
        geometry = MemoryGeometry(8, 8)
        rng = make_rng(1)
        cell = CellRef(3, 3)
        fault = fault_for_defect(DefectType.CELL_BRIDGE, cell, geometry, rng)
        assert fault.aggressors[0] in geometry.neighbors(cell)


class TestSamplePopulation:
    def test_case_study_size(self):
        population = sample_population(MemoryGeometry(512, 100), 0.01, rng=7)
        assert population.size == 256

    def test_deterministic_with_seed(self):
        a = sample_population(MemoryGeometry(64, 16), 0.02, rng=3)
        b = sample_population(MemoryGeometry(64, 16), 0.02, rng=3)
        assert [f.describe() for f in a.faults] == [f.describe() for f in b.faults]

    def test_victims_are_distinct(self):
        population = sample_population(MemoryGeometry(64, 16), 0.05, rng=5)
        victims = [f.victims[0] for f in population.faults]
        assert len(victims) == len(set(victims))

    def test_m1_share_near_75_percent(self):
        population = sample_population(MemoryGeometry(512, 100), 0.01, rng=11)
        share = population.m1_localizable / population.size
        assert 0.6 < share < 0.9

    def test_retention_share_near_25_percent(self):
        population = sample_population(MemoryGeometry(512, 100), 0.01, rng=11)
        share = population.retention_faults / population.size
        assert 0.1 < share < 0.4

    def test_zero_rate_empty(self):
        population = sample_population(MemoryGeometry(64, 16), 0.0)
        assert population.size == 0

    def test_attach_all(self):
        population = sample_population(MemoryGeometry(16, 8), 0.05, rng=2)
        memory = SRAM(MemoryGeometry(16, 8))
        population.attach_all(memory)
        assert len(memory.cell_faults) == population.size

    def test_class_histogram_sums_to_size(self):
        population = sample_population(MemoryGeometry(64, 16), 0.05, rng=9)
        assert sum(population.class_histogram().values()) == population.size


class TestInjector:
    def test_registry(self):
        memory = SRAM(MemoryGeometry(8, 4, "m0"))
        injector = FaultInjector()
        fault = StuckAtFault(CellRef(1, 1), 0)
        injector.inject(memory, fault)
        assert injector.faults_for("m0") == [fault]
        assert injector.total == 1
        assert injector.memories() == ["m0"]

    def test_inject_list(self):
        memory = SRAM(MemoryGeometry(8, 4, "m0"))
        injector = FaultInjector()
        injector.inject(memory, [StuckAtFault(CellRef(1, 1), 0), StuckAtFault(CellRef(2, 2), 1)])
        assert injector.total == 2

    def test_histogram(self):
        memory = SRAM(MemoryGeometry(8, 4, "m0"))
        injector = FaultInjector()
        injector.inject(memory, [StuckAtFault(CellRef(1, 1), 0), StuckAtFault(CellRef(2, 2), 0)])
        assert injector.class_histogram() == {FaultClass.SAF0: 2}

    def test_unknown_memory_empty(self):
        assert FaultInjector().faults_for("nope") == []


class TestM1LocalizableClasses:
    def test_logical_classes_included(self):
        assert FaultClass.SAF0 in M1_LOCALIZABLE_CLASSES
        assert FaultClass.TF_UP in M1_LOCALIZABLE_CLASSES
        assert FaultClass.CF_ID in M1_LOCALIZABLE_CLASSES

    def test_retention_excluded(self):
        assert FaultClass.DRF0 not in M1_LOCALIZABLE_CLASSES
        assert FaultClass.DRF1 not in M1_LOCALIZABLE_CLASSES

    def test_peripheral_excluded(self):
        assert FaultClass.AF not in M1_LOCALIZABLE_CLASSES
        assert FaultClass.WEAK not in M1_LOCALIZABLE_CLASSES
