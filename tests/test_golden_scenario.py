"""Golden-file regression for the scenario engine, plus CLI contract.

One canonical clustered-defect scenario flow -- small explicit bank,
two cluster centers, an intermittent burn-in layer -- is executed end to
end and its full :class:`~repro.scenarios.flow.ScenarioCampaignReport`
serialization compared field-for-field against
``tests/golden/scenario_clustered.json``.  Any behavioural drift in the
cluster sampler, flow staging, repair/retest loop, escape accounting or
intermittent detection shows up as a readable JSON diff.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_scenario.py --update-golden

The CLI contract tests pin the ``repro scenario`` exit code and JSON
shape (spec echo plus the scenario aggregate block) on both backends.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.scenarios import ScenarioSpec, run_scenario_campaign

GOLDEN_PATH = Path(__file__).parent / "golden" / "scenario_clustered.json"

#: The canonical clustered scenario.  Fixed seeds + the numpy backend
#: keep every field deterministic; reference-vs-numpy parity itself is
#: covered by the differential suite and the parity test below.
CANONICAL = ScenarioSpec(
    name="golden-clustered",
    shapes=((16, 8, "gc_wide"), (12, 6, "gc_narrow"), (10, 4, "gc_tiny")),
    campaigns=1,
    master_seed=9,
    base_defect_rate=0.02,
    cluster_count=2,
    cluster_radius=30.0,
    cluster_peak_rate=0.08,
    intermittent_rate=0.02,
    upset_probability=0.6,
    spares_per_memory=8,
    backend="numpy",
)


def scenario_to_json(report) -> dict:
    """Stable, human-diffable JSON rendering of a scenario flow."""
    proposed = report.proposed
    baseline = report.baseline
    return {
        "scenario": report.scenario,
        "soc_name": report.soc_name,
        "seed": report.seed,
        "assigned_rates": {
            name: round(rate, 12)
            for name, rate in sorted(report.assigned_rates.items())
        },
        "injected_faults": report.injected_faults,
        "stages": [stage.to_dict() for stage in report.stages],
        "retest_rounds": report.retest_rounds,
        "retest_converged": report.retest_converged,
        "escaped_faults": report.escaped_faults,
        "escape_rate": report.escape_rate,
        "localization_rate": report.localization_rate,
        "reduction_factor": report.reduction_factor,
        "intermittent_faults": report.intermittent_faults,
        "intermittent_detected": report.intermittent_detected,
        "proposed": {
            "cycles": proposed.cycles,
            "time_ns": proposed.time_ns,
            "failures": {
                name: [record.to_dict() for record in records]
                for name, records in sorted(proposed.failures.items())
            },
        },
        "baseline": {
            "iterations": baseline.iterations,
            "time_ns": baseline.time_ns,
            "localized": [
                {
                    "memory_name": fault.memory_name,
                    "cell": [fault.cell.word, fault.cell.bit],
                    "iteration": fault.iteration,
                    "direction": fault.direction,
                    "fault_class": fault.fault_class,
                }
                for fault in baseline.localized
            ],
            "missed": [
                [name, fault.describe()] for name, fault in baseline.missed
            ],
        },
    }


def test_scenario_matches_golden(update_golden):
    actual = scenario_to_json(run_scenario_campaign(CANONICAL, 0))
    if update_golden:
        GOLDEN_PATH.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.skip(f"golden fixture {GOLDEN_PATH.name} rewritten")
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; run pytest with --update-golden"
    )
    expected = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert actual == expected


def test_golden_scenario_is_nontrivial(update_golden):
    # Guard against a vacuous fixture: the canonical flow must exercise
    # clustering spread, repair rounds, burn-in and escape accounting.
    if update_golden:
        pytest.skip("fixture being rewritten")
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    rates = golden["assigned_rates"]
    assert len(set(rates.values())) > 1, "clustering assigned uniform rates"
    assert golden["injected_faults"] > 0
    assert golden["retest_rounds"] >= 1
    assert golden["intermittent_faults"] > 0
    assert any(stage["stage"] == "burn-in" for stage in golden["stages"])
    assert golden["reduction_factor"] > 1.0


def test_golden_scenario_backend_parity():
    import dataclasses

    reference = run_scenario_campaign(
        dataclasses.replace(CANONICAL, backend="reference"), 0
    )
    fast = scenario_to_json(run_scenario_campaign(CANONICAL, 0))
    assert scenario_to_json(reference) == fast


class TestScenarioCli:
    ARGS = [
        "scenario",
        "--soc", "buffer-cluster",
        "--campaigns", "1",
        "--workers", "1",
        "--base-defect-rate", "0.002",
        "--clusters", "1",
        "--cluster-peak-rate", "0.01",
        "--intermittent-rate", "0.005",
        "--upset-probability", "0.5",
    ]

    @pytest.mark.parametrize("backend", ["reference", "numpy"])
    def test_json_exit_code_and_shape(self, capsys, backend):
        assert main([*self.ARGS, "--backend", backend, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["backend"] == backend
        assert payload["campaigns"] == 1
        scenario = payload["scenario"]
        assert scenario["campaigns"] == 1
        for key in (
            "escape_rate",
            "assigned_defect_rate",
            "retest_rounds",
            "retest_convergence",
            "intermittent_injected",
            "intermittent_detected",
            "intermittent_detection_rate",
        ):
            assert key in scenario
        assert scenario["intermittent_injected"] > 0
        # Measured R under clustering rides along in the fleet block.
        assert payload["reduction_factor"]["mean"] > 1.0

    def test_backends_agree_on_localization_payload(self, capsys):
        payloads = []
        for backend in ("reference", "numpy"):
            assert main([*self.ARGS, "--backend", backend, "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            payload.pop("elapsed_s")
            payload.pop("campaigns_per_sec")
            payload["spec"].pop("backend")
            payloads.append(payload)
        assert payloads[0] == payloads[1]

    def test_text_mode_prints_scenario_lines(self, capsys):
        assert main([*self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "scenario flows" in out
        assert "escape rate" in out
        assert "intermittent" in out

    def test_radius_sweep_table(self, capsys):
        assert main([*self.ARGS, "--sweep-radii", "5,40"]) == 0
        out = capsys.readouterr().out
        assert "scenario radius sweep" in out
        assert "r=5" in out and "r=40" in out
        assert "escape" in out and "converged" in out

    def test_radius_sweep_json(self, capsys):
        assert main(
            [*self.ARGS, "--json", "--sweep-radii", "5,40"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matrix"] == "S1-cluster-radius"
        assert [row["label"] for row in payload["rows"]] == ["r=5", "r=40"]
        for row in payload["rows"]:
            assert "escape_rate_mean" in row and "retest_convergence" in row

    @pytest.mark.parametrize(
        "preset", ["intermittent-only", "burn-in-soft-error"]
    )
    def test_preset_values_survive_unpassed_flags(self, capsys, preset):
        from repro.scenarios import SCENARIO_PRESETS

        assert main(
            ["scenario", "--preset", preset, "--soc", "buffer-cluster",
             "--campaigns", "1", "--workers", "1", "--json"]
        ) == 0
        spec = json.loads(capsys.readouterr().out)["spec"]
        for key, value in SCENARIO_PRESETS[preset].items():
            assert spec[key] == value, f"preset field {key} clobbered"

    def test_explicit_flags_override_preset(self, capsys):
        assert main(
            ["scenario", "--preset", "burn-in-soft-error", "--soc",
             "buffer-cluster", "--campaigns", "1", "--workers", "1",
             "--clusters", "3", "--cluster-radius", "12.5", "--json"]
        ) == 0
        spec = json.loads(capsys.readouterr().out)["spec"]
        assert spec["cluster_count"] == 3
        assert spec["cluster_radius"] == 12.5
        # Unpassed preset fields still win over the spec defaults.
        assert spec["base_defect_rate"] == 0.001

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "--preset", "nonsense"])
        assert excinfo.value.code == 2


class TestEccBisrCli:
    ARGS = [
        "scenario",
        "--soc", "buffer-cluster",
        "--campaigns", "1",
        "--workers", "1",
        "--base-defect-rate", "0.01",
        "--clusters", "1",
        "--cluster-peak-rate", "0.02",
        "--intermittent-rate", "0.0",
        "--no-burn-in",
        "--ecc", "secded",
        "--spare-rows", "4",
        "--spare-cols", "2",
    ]

    def test_json_carries_ecc_and_repair_aggregates(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["ecc"] == "secded"
        assert payload["spec"]["spare_rows"] == 4
        assert payload["spec"]["spare_cols"] == 2
        scenario = payload["scenario"]
        ecc = scenario["ecc"]
        assert ecc["campaigns"] == 1
        assert ecc["corrected_reads"] > 0
        assert ecc["masked_escape_rate"]["count"] == 1
        assert 0.0 <= ecc["masked_escape_rate"]["mean"] <= 1.0
        assert "repair_yield" in scenario
        assert scenario["repaired_rows"] + scenario["repaired_cols"] > 0

    def test_raw_run_omits_the_ecc_block(self, capsys):
        args = [a for a in self.ARGS if a not in ("--ecc", "secded")]
        assert main([*args, "--json"]) == 0
        scenario = json.loads(capsys.readouterr().out)["scenario"]
        assert "ecc" not in scenario

    def test_text_mode_prints_the_diagnosis_gap(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "masked escapes" in out
        assert "bisr yield" in out

    def test_backends_agree_behind_ecc(self, capsys):
        payloads = []
        for backend in ("reference", "numpy", "batched"):
            assert main([*self.ARGS, "--backend", backend, "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            payload.pop("elapsed_s")
            payload.pop("campaigns_per_sec")
            payload["spec"].pop("backend")
            payloads.append(payload)
        assert payloads[0] == payloads[1] == payloads[2]
